"""Figure extractors: paper curves straight out of a SweepResult.

Each extractor turns the generic per-point table of a
:class:`~repro.sweeps.result.SweepResult` into one figure's data series,
matching the axes of the stock sweep presets (:mod:`repro.sweeps.presets`):

* :func:`figure10_curves` — diameter vs measured latency (in Δ units)
  per protocol, the paper's headline Figure 10;
* :func:`table1_series` — measured swap-level throughput per protocol,
  the engine-side counterpart of Table 1's min() rule;
* :func:`crash_matrix` — crash-onset × protocol decision/atomicity
  cells, the Section 1 motivation table;
* :func:`arrival_rate_series` — the congestion sweep: arrival rate vs
  commit/priced-out split by fee-budget class.

Extractors are pure functions of the artifact, so they work equally on
a fresh :class:`SweepResult` and on one re-loaded from its JSON export.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from .result import PointResult, SweepResult


def _delta_of(point: PointResult) -> float:
    """Δ for one point's world: confirmation depth × block interval."""
    chains = point.spec["chains"]
    return chains["confirmation_depth"] * chains["block_interval"]


@dataclass(frozen=True)
class Figure10Point:
    """One measured Figure 10 sample: a diameter-D swap's latency."""

    protocol: str
    diameter: int
    latency_seconds: float
    latency_deltas: float
    decision: str


def figure10_curves(sweep: SweepResult) -> dict[str, list[Figure10Point]]:
    """Diameter-vs-latency series per protocol, diameters ascending.

    Expects the ``figure10`` sweep axes (``protocol`` × ``diameter``);
    each point is a single measured swap.
    """
    curves: dict[str, list[Figure10Point]] = {}
    for point in sweep.points:
        (outcome,) = point.outcomes
        delta = _delta_of(point)
        latency = outcome["latency"]
        sample = Figure10Point(
            protocol=str(point.coords["protocol"]),
            diameter=int(point.coords["diameter"]),
            latency_seconds=latency,
            latency_deltas=latency / delta if delta > 0 else 0.0,
            decision=outcome["decision"],
        )
        curves.setdefault(sample.protocol, []).append(sample)
    for series in curves.values():
        series.sort(key=lambda s: s.diameter)
    return curves


@dataclass(frozen=True)
class ThroughputRow:
    """One protocol's measured engine throughput (a Table 1 analogue)."""

    protocol: str
    total: int
    commit_rate: float
    swaps_per_second: float
    p50_latency: float
    p99_latency: float
    max_in_flight: int


def table1_series(sweep: SweepResult) -> list[ThroughputRow]:
    """Measured swap-level throughput per protocol, axis order.

    Expects the ``table1`` sweep (a ``protocol`` axis over the stock
    40-swap open-loop workload).
    """
    rows = []
    for point in sweep.points:
        m = point.metrics
        rows.append(
            ThroughputRow(
                protocol=str(point.coords["protocol"]),
                total=m["total"],
                commit_rate=m["commit_rate"],
                swaps_per_second=m["swaps_per_second"],
                p50_latency=m["p50_latency"],
                p99_latency=m["p99_latency"],
                max_in_flight=m["max_in_flight"],
            )
        )
    return rows


@dataclass(frozen=True)
class CrashCell:
    """One crash-matrix cell: what a protocol did under one crash onset."""

    protocol: str
    onset: float
    decision: str
    atomic: bool


def crash_matrix(sweep: SweepResult) -> dict[float, dict[str, CrashCell]]:
    """Crash-onset → protocol → cell, onsets ascending.

    Expects the ``crash-matrix`` sweep (``protocol`` × ``onset`` over
    single-swap runs with a deterministic crash plan).
    """
    matrix: dict[float, dict[str, CrashCell]] = {}
    for point in sweep.points:
        (outcome,) = point.outcomes
        onset = float(point.coords["onset"])
        protocol = str(point.coords["protocol"])
        matrix.setdefault(onset, {})[protocol] = CrashCell(
            protocol=protocol,
            onset=onset,
            decision=outcome["decision"],
            atomic=outcome["atomic"],
        )
    return dict(sorted(matrix.items()))


@dataclass(frozen=True)
class ArrivalRatePoint:
    """One congestion sample: a fee market under one arrival rate."""

    rate: float
    total: int
    commit_rate: float
    priced_out: int
    evictions: int
    fee_bumps: int
    fee_per_commit: float
    low_commit_rate: float
    high_commit_rate: float
    atomicity_violations: int


def _class_commit_rate(outcomes: list[dict], low: bool, low_cap: int) -> float:
    slice_ = [
        o
        for o in outcomes
        if o["fee_cap"] is not None and (o["fee_cap"] <= low_cap) == low
    ]
    if not slice_:
        return 0.0
    return sum(1 for o in slice_ if o["decision"] == "commit") / len(slice_)


def arrival_rate_series(
    sweep: SweepResult, low_cap: int | None = None
) -> list[ArrivalRatePoint]:
    """The congestion arrival-rate sweep, rates in axis order.

    ``low_cap`` is the boundary between the LOW and HIGH fee-budget
    classes (default: the stock LOW budget's cap).
    """
    if low_cap is None:
        from ..workloads.scenarios import LOW_FEE_BUDGET

        low_cap = LOW_FEE_BUDGET.cap
    series = []
    for point in sweep.points:
        m = point.metrics
        series.append(
            ArrivalRatePoint(
                rate=float(point.coords["rate"]),
                total=m["total"],
                commit_rate=m["commit_rate"],
                priced_out=m["priced_out"],
                evictions=m["evictions"],
                fee_bumps=m["fee_bumps"],
                fee_per_commit=m["fee_per_commit"],
                low_commit_rate=_class_commit_rate(point.outcomes, True, low_cap),
                high_commit_rate=_class_commit_rate(point.outcomes, False, low_cap),
                atomicity_violations=m["atomicity_violations"],
            )
        )
    return series


@dataclass(frozen=True)
class ViolationSurfacePoint:
    """One security-matrix cell: a protocol at one (depth, hashpower).

    ``required_depth`` / ``model_safe`` come from the analytic Section
    6.3 cost model echoed in the point's spec, so the extractor pairs
    every measured cell with its analytic prediction.
    """

    protocol: str
    depth: int
    hashpower: float
    total: int
    violations: int
    violation_rate: float
    commit_rate: float
    attacks_launched: int
    reorgs_won: int
    reorgs_lost: int
    attack_cost: float
    value_at_risk: float
    required_depth: int
    model_safe: bool


def violation_rate_surface(sweep: SweepResult) -> list[ViolationSurfacePoint]:
    """The empirical Section 6.3 trade-off, one cell per sweep point.

    Expects the ``security-matrix`` axes (``depth`` x ``hashpower`` x
    ``protocol``); cells come back in expansion order, so the surface
    is deterministic and groupable by any coordinate.
    """
    from ..analysis.security import required_depth

    surface = []
    for point in sweep.points:
        m = point.metrics
        reorg = point.spec["adversary"]["reorg"]
        bound = required_depth(
            reorg["value_at_risk"],
            reorg["hourly_cost"],
            reorg["blocks_per_hour"],
        )
        depth = int(point.coords["depth"])
        surface.append(
            ViolationSurfacePoint(
                protocol=str(point.coords["protocol"]),
                depth=depth,
                hashpower=float(point.coords["hashpower"]),
                total=m["total"],
                violations=m["atomicity_violations"],
                violation_rate=(
                    m["atomicity_violations"] / m["total"] if m["total"] else 0.0
                ),
                commit_rate=m["commit_rate"],
                attacks_launched=m["attacks_launched"],
                reorgs_won=m["reorgs_won"],
                reorgs_lost=m["reorgs_lost"],
                attack_cost=m["attack_cost"],
                value_at_risk=reorg["value_at_risk"],
                required_depth=bound,
                model_safe=depth >= bound,
            )
        )
    return surface


def rows_by_axis(sweep: SweepResult, axis: str) -> dict[Any, list[dict]]:
    """Generic helper: summary rows grouped by one axis coordinate."""
    grouped: dict[Any, list[dict]] = {}
    for point in sweep.points:
        grouped.setdefault(point.coords[axis], []).append(point.row())
    return grouped
