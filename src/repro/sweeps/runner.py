"""Sweep execution: fan experiment points out across worker processes.

The execution contract keeps process boundaries dumb and deterministic:
workers receive a *serialized* :class:`~repro.experiment.ExperimentSpec`
(JSON) and return a *serialized* :class:`~repro.experiment.ExperimentResult`
artifact (JSON) — no simulator state, driver object, or chain ever
crosses a process boundary.  Because every experiment is a pure function
of its spec (the PR 3 invariant) and aggregation sorts by point index,
the joined :class:`~repro.sweeps.result.SweepResult` is byte-identical
whatever the worker count or completion order.

``workers=1`` is a pure in-process path: no ``multiprocessing`` import,
no pickling — the debugging mode, and the reference the parallel path
is pinned against.  Worker processes are forked where the platform
allows it, so plug-in protocols and traffic generators registered by
the parent are visible to the children.

Campaigns archive to exactly one of two durable backends, with the
same per-point resume semantics: ``resume_dir`` (one ``point-NNNNN.json``
file per point) or ``store`` (a :class:`~repro.store.CampaignStore`
SQLite database, which additionally indexes every point's metrics for
``repro query`` / ``repro compare``).  Both validate the stored spec
echo before reusing a point, so editing the sweep invalidates exactly
the stale points either way.
"""

from __future__ import annotations

import json
import os
import time
from typing import TYPE_CHECKING, Callable

from ..errors import SpecError
from ..experiment.runner import run_experiment
from ..experiment.spec import ExperimentSpec
from .result import PointResult, SweepResult
from .spec import SweepPoint, SweepSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..store import CampaignStore


def run_point_payload(payload: tuple[int, str]) -> tuple[int, str, dict]:
    """Execute one serialized point; the worker-side entry point.

    ``payload`` is ``(index, spec_json)``; returns ``(index,
    result_json, heartbeat)`` where ``heartbeat`` carries the worker's
    wall-clock seconds and pid — pure telemetry for live progress
    rendering, never part of the artifact (which stays byte-identical
    across worker counts).  Top-level so it pickles under every start
    method.
    """
    index, spec_json = payload
    started = time.perf_counter()
    spec = ExperimentSpec.from_json(spec_json)
    result = run_experiment(spec)
    heartbeat = {"wall": time.perf_counter() - started, "pid": os.getpid()}
    return index, result.to_json(indent=None), heartbeat


class SweepRunner:
    """Executes a :class:`~repro.sweeps.spec.SweepSpec` campaign.

    Args:
        spec: the sweep to run.
        workers: worker processes; 1 (the default) runs every point
            in-process, N > 1 fans points out over a ``multiprocessing``
            pool (one point per task, so stragglers load-balance).
        on_point: optional progress callback, invoked in *completion*
            order with each finished :class:`PointResult`.
        on_progress: optional live-progress callback, invoked in
            completion order with ``(point, heartbeat)`` where
            ``heartbeat`` is a dict of ``wall`` (worker seconds, None
            for resumed points), ``pid`` (executing worker, None for
            resumed points), ``completed``, ``total``, and ``running``
            (points still in flight, capped by the worker count) — what
            ``repro sweep --progress`` renders as completed/ETA/
            per-worker throughput lines.
        resume_dir: per-point artifact directory for resumable
            campaigns.  Every executed point writes its serialized
            ``ExperimentResult`` to ``point-NNNNN.json`` there; on a
            re-run, points whose artifact already exists (and whose
            stored spec echo still matches the expanded point) are
            loaded from disk instead of executed — the merged
            :class:`SweepResult` is byte-identical to a fresh run
            because the stored bytes *are* the worker payloads.
        store: path to (or an open) :class:`~repro.store.CampaignStore`
            campaign database — the SQLite sibling of ``resume_dir``,
            with identical resume semantics (stored artifacts reused
            only when their spec echo matches the freshly expanded
            point) plus indexed metrics for ``repro query`` and
            ``repro compare``.  Mutually exclusive with ``resume_dir``.
    """

    def __init__(
        self,
        spec: SweepSpec,
        workers: int = 1,
        on_point: Callable[[PointResult], None] | None = None,
        on_progress: "Callable[[PointResult, dict], None] | None" = None,
        resume_dir: str | None = None,
        store: "str | CampaignStore | None" = None,
    ) -> None:
        if workers < 1:
            raise SpecError(f"workers must be at least 1, got {workers}")
        if resume_dir is not None and store is not None:
            raise SpecError(
                "--resume DIR and --store DB are mutually exclusive: both "
                "archive the campaign's per-point artifacts, so pick one "
                "backend (ingest the directory with 'repro store ingest' "
                "to migrate it into a database)"
            )
        self.spec = spec
        self.workers = workers
        self.on_point = on_point
        self.on_progress = on_progress
        self.resume_dir = resume_dir
        self.store = store
        #: Point indices loaded from the archive on the last run.
        self.resumed: list[int] = []

    def run(self) -> SweepResult:
        """Expand, execute every point, and join the artifacts.

        Points complete in whatever order the pool produces them; the
        join re-sorts by expansion index, which is what keeps the
        aggregate byte-identical across worker counts and schedules.
        """
        expansion = self.spec.expand()
        by_index = {point.index: point for point in expansion.points}
        finished: dict[int, PointResult] = {}
        self.resumed = []
        resumed_set: set[int] = set()
        store, campaign_id, own_store = self._open_store()
        try:
            if store is not None:
                for skip in expansion.skipped:
                    store.append_point(
                        campaign_id,
                        skip.index,
                        status="skipped",
                        coords=dict(skip.coords),
                        skip_reason=skip.reason,
                    )

            total = len(expansion.points)

            def collect(item: tuple[int, str, dict | None]) -> None:
                index, result_json, heartbeat = item
                if index not in resumed_set:
                    if self.resume_dir is not None:
                        self._store_artifact(index, result_json)
                    if store is not None:
                        self._store_point(
                            store, campaign_id, by_index[index], result_json
                        )
                joined = self._join(by_index[index], result_json)
                finished[index] = joined
                if self.on_point is not None:
                    self.on_point(joined)
                if self.on_progress is not None:
                    completed = len(finished)
                    beat = dict(heartbeat) if heartbeat else {"wall": None, "pid": None}
                    beat.update(
                        completed=completed,
                        total=total,
                        running=min(self.workers, total - completed),
                    )
                    self.on_progress(joined, beat)

            payloads = []
            for point in expansion.points:
                spec_json = point.spec.to_json(indent=None)
                if store is not None:
                    cached = store.stored_artifact(
                        campaign_id, point.index, point.spec.to_dict()
                    )
                else:
                    cached = self._load_artifact(point)
                if cached is not None:
                    self.resumed.append(point.index)
                    resumed_set.add(point.index)
                    collect((point.index, cached, None))
                else:
                    payloads.append((point.index, spec_json))

            if self.workers == 1 or len(payloads) <= 1:
                for payload in payloads:
                    collect(run_point_payload(payload))
            else:
                import multiprocessing

                try:
                    context = multiprocessing.get_context("fork")
                except ValueError:  # pragma: no cover - non-POSIX platforms
                    context = multiprocessing.get_context("spawn")
                workers = min(self.workers, len(payloads))
                with context.Pool(processes=workers) as pool:
                    for item in pool.imap_unordered(
                        run_point_payload, payloads, chunksize=1
                    ):
                        collect(item)
        finally:
            if own_store and store is not None:
                store.close()
        points = [finished[point.index] for point in expansion.points]
        return SweepResult(
            spec=self.spec, points=points, skipped=list(expansion.skipped)
        )

    # -- store-backed campaigns --------------------------------------------

    def _open_store(self):
        """(store, campaign_id, owned) — the campaign database, if any.

        Accepts either a path (opened here, closed by ``run``) or an
        already-open :class:`~repro.store.CampaignStore` (left open for
        the caller).  The campaign identity is the sweep's name, so
        re-running the same sweep resumes its points; the sweep-spec
        echo stored on the campaign is refreshed every run.
        """
        if self.store is None:
            return None, None, False
        from ..store import CampaignStore

        if isinstance(self.store, CampaignStore):
            store, owned = self.store, False
        else:
            store, owned = CampaignStore(self.store), True
        campaign_id = store.ensure_campaign(
            self.spec.name,
            kind="sweep",
            spec_json=self.spec.to_json(indent=None),
        )
        return store, campaign_id, owned

    def _store_point(
        self,
        store: "CampaignStore",
        campaign_id: int,
        point: SweepPoint,
        result_json: str,
    ) -> None:
        """File one executed point: identity, indexed row, exact bytes.

        Points that armed the metrics registry additionally index their
        final snapshot (``reports.metrics`` in the artifact) as flat
        metric rows — queryable alongside the row metrics without ever
        widening the pinned ``row_json`` contract.
        """
        joined = self._join(point, result_json)
        store.append_point(
            campaign_id,
            point.index,
            name=point.name,
            coords=dict(point.coords),
            seed=point.spec.seed,
            spec=point.spec.to_dict(),
            row=joined.row(),
            artifact=result_json,
            extra_metrics=self._registry_metrics(joined.artifact),
        )

    @staticmethod
    def _registry_metrics(artifact: dict) -> dict | None:
        snapshot = (artifact.get("reports") or {}).get("metrics")
        if snapshot is None:
            return None
        from ..obs import MetricsRegistry

        return dict(MetricsRegistry.from_dict(snapshot).scalar_items())

    # -- resumable campaigns -----------------------------------------------

    def _artifact_path(self, index: int) -> str:
        return os.path.join(self.resume_dir, f"point-{index:05d}.json")

    def _load_artifact(self, point: SweepPoint) -> str | None:
        """The stored result bytes for ``point``, or None to execute it.

        A stored artifact is only trusted when its spec echo matches
        the freshly expanded point — editing the sweep (axes, seeds,
        base) invalidates stale points individually instead of
        poisoning the merge.
        """
        if self.resume_dir is None:
            return None
        path = self._artifact_path(point.index)
        try:
            with open(path, encoding="utf-8") as handle:
                text = handle.read()
            stored_spec = json.loads(text).get("spec")
        except (OSError, json.JSONDecodeError):
            return None
        if stored_spec != point.spec.to_dict():
            return None
        return text

    def _store_artifact(self, index: int, result_json: str) -> None:
        os.makedirs(self.resume_dir, exist_ok=True)
        path = self._artifact_path(index)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(result_json)

    def _join(self, point: SweepPoint, result_json: str) -> PointResult:
        return PointResult(
            index=point.index,
            name=point.name,
            coords=dict(point.coords),
            overrides=dict(point.overrides),
            seed=point.spec.seed,
            artifact=json.loads(result_json),
        )


def run_sweep(
    spec: SweepSpec,
    workers: int = 1,
    on_point: Callable[[PointResult], None] | None = None,
    on_progress: "Callable[[PointResult, dict], None] | None" = None,
    resume_dir: str | None = None,
    store: "str | CampaignStore | None" = None,
) -> SweepResult:
    """Convenience wrapper: ``SweepRunner(spec, workers).run()``."""
    return SweepRunner(
        spec,
        workers=workers,
        on_point=on_point,
        on_progress=on_progress,
        resume_dir=resume_dir,
        store=store,
    ).run()
