"""Sweep execution: fan experiment points out across worker processes.

The execution contract keeps process boundaries dumb and deterministic:
workers receive a *serialized* :class:`~repro.experiment.ExperimentSpec`
(JSON) and return a *serialized* :class:`~repro.experiment.ExperimentResult`
artifact (JSON) — no simulator state, driver object, or chain ever
crosses a process boundary.  Because every experiment is a pure function
of its spec (the PR 3 invariant) and aggregation sorts by point index,
the joined :class:`~repro.sweeps.result.SweepResult` is byte-identical
whatever the worker count or completion order.

``workers=1`` is a pure in-process path: no ``multiprocessing`` import,
no pickling — the debugging mode, and the reference the parallel path
is pinned against.  Worker processes are forked where the platform
allows it, so plug-in protocols and traffic generators registered by
the parent are visible to the children.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import SpecError
from ..experiment.runner import run_experiment
from ..experiment.spec import ExperimentSpec
from .result import PointResult, SweepResult
from .spec import SweepPoint, SweepSpec


def run_point_payload(payload: tuple[int, str]) -> tuple[int, str]:
    """Execute one serialized point; the worker-side entry point.

    ``payload`` is ``(index, spec_json)``; returns ``(index,
    result_json)``.  Top-level so it pickles under every start method.
    """
    index, spec_json = payload
    spec = ExperimentSpec.from_json(spec_json)
    result = run_experiment(spec)
    return index, result.to_json(indent=None)


class SweepRunner:
    """Executes a :class:`~repro.sweeps.spec.SweepSpec` campaign.

    Args:
        spec: the sweep to run.
        workers: worker processes; 1 (the default) runs every point
            in-process, N > 1 fans points out over a ``multiprocessing``
            pool (one point per task, so stragglers load-balance).
        on_point: optional progress callback, invoked in *completion*
            order with each finished :class:`PointResult`.
    """

    def __init__(
        self,
        spec: SweepSpec,
        workers: int = 1,
        on_point: Callable[[PointResult], None] | None = None,
    ) -> None:
        if workers < 1:
            raise SpecError(f"workers must be at least 1, got {workers}")
        self.spec = spec
        self.workers = workers
        self.on_point = on_point

    def run(self) -> SweepResult:
        """Expand, execute every point, and join the artifacts.

        Points complete in whatever order the pool produces them; the
        join re-sorts by expansion index, which is what keeps the
        aggregate byte-identical across worker counts and schedules.
        """
        expansion = self.spec.expand()
        by_index = {point.index: point for point in expansion.points}
        payloads = [
            (point.index, point.spec.to_json(indent=None))
            for point in expansion.points
        ]
        finished: dict[int, PointResult] = {}

        def collect(item: tuple[int, str]) -> None:
            index, result_json = item
            joined = self._join(by_index[index], result_json)
            finished[index] = joined
            if self.on_point is not None:
                self.on_point(joined)

        if self.workers == 1 or len(payloads) <= 1:
            for payload in payloads:
                collect(run_point_payload(payload))
        else:
            import multiprocessing

            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                context = multiprocessing.get_context("spawn")
            workers = min(self.workers, len(payloads))
            with context.Pool(processes=workers) as pool:
                for item in pool.imap_unordered(
                    run_point_payload, payloads, chunksize=1
                ):
                    collect(item)
        points = [finished[point.index] for point in expansion.points]
        return SweepResult(
            spec=self.spec, points=points, skipped=list(expansion.skipped)
        )

    def _join(self, point: SweepPoint, result_json: str) -> PointResult:
        import json

        return PointResult(
            index=point.index,
            name=point.name,
            coords=dict(point.coords),
            overrides=dict(point.overrides),
            seed=point.spec.seed,
            artifact=json.loads(result_json),
        )


def run_sweep(
    spec: SweepSpec,
    workers: int = 1,
    on_point: Callable[[PointResult], None] | None = None,
) -> SweepResult:
    """Convenience wrapper: ``SweepRunner(spec, workers).run()``."""
    return SweepRunner(spec, workers=workers, on_point=on_point).run()
