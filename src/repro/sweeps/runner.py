"""Sweep execution: fan experiment points out across worker processes.

The execution contract keeps process boundaries dumb and deterministic:
workers receive a *serialized* :class:`~repro.experiment.ExperimentSpec`
(JSON) and return a *serialized* :class:`~repro.experiment.ExperimentResult`
artifact (JSON) — no simulator state, driver object, or chain ever
crosses a process boundary.  Because every experiment is a pure function
of its spec (the PR 3 invariant) and aggregation sorts by point index,
the joined :class:`~repro.sweeps.result.SweepResult` is byte-identical
whatever the worker count or completion order.

``workers=1`` is a pure in-process path: no ``multiprocessing`` import,
no pickling — the debugging mode, and the reference the parallel path
is pinned against.  Worker processes are forked where the platform
allows it, so plug-in protocols and traffic generators registered by
the parent are visible to the children.
"""

from __future__ import annotations

import json
import os
from typing import Callable

from ..errors import SpecError
from ..experiment.runner import run_experiment
from ..experiment.spec import ExperimentSpec
from .result import PointResult, SweepResult
from .spec import SweepPoint, SweepSpec


def run_point_payload(payload: tuple[int, str]) -> tuple[int, str]:
    """Execute one serialized point; the worker-side entry point.

    ``payload`` is ``(index, spec_json)``; returns ``(index,
    result_json)``.  Top-level so it pickles under every start method.
    """
    index, spec_json = payload
    spec = ExperimentSpec.from_json(spec_json)
    result = run_experiment(spec)
    return index, result.to_json(indent=None)


class SweepRunner:
    """Executes a :class:`~repro.sweeps.spec.SweepSpec` campaign.

    Args:
        spec: the sweep to run.
        workers: worker processes; 1 (the default) runs every point
            in-process, N > 1 fans points out over a ``multiprocessing``
            pool (one point per task, so stragglers load-balance).
        on_point: optional progress callback, invoked in *completion*
            order with each finished :class:`PointResult`.
        resume_dir: per-point artifact directory for resumable
            campaigns.  Every executed point writes its serialized
            ``ExperimentResult`` to ``point-NNNNN.json`` there; on a
            re-run, points whose artifact already exists (and whose
            stored spec echo still matches the expanded point) are
            loaded from disk instead of executed — the merged
            :class:`SweepResult` is byte-identical to a fresh run
            because the stored bytes *are* the worker payloads.
    """

    def __init__(
        self,
        spec: SweepSpec,
        workers: int = 1,
        on_point: Callable[[PointResult], None] | None = None,
        resume_dir: str | None = None,
    ) -> None:
        if workers < 1:
            raise SpecError(f"workers must be at least 1, got {workers}")
        self.spec = spec
        self.workers = workers
        self.on_point = on_point
        self.resume_dir = resume_dir
        #: Point indices loaded from ``resume_dir`` on the last run.
        self.resumed: list[int] = []

    def run(self) -> SweepResult:
        """Expand, execute every point, and join the artifacts.

        Points complete in whatever order the pool produces them; the
        join re-sorts by expansion index, which is what keeps the
        aggregate byte-identical across worker counts and schedules.
        """
        expansion = self.spec.expand()
        by_index = {point.index: point for point in expansion.points}
        finished: dict[int, PointResult] = {}
        self.resumed = []
        resumed_set: set[int] = set()

        def collect(item: tuple[int, str]) -> None:
            index, result_json = item
            if self.resume_dir is not None and index not in resumed_set:
                self._store_artifact(index, result_json)
            joined = self._join(by_index[index], result_json)
            finished[index] = joined
            if self.on_point is not None:
                self.on_point(joined)

        payloads = []
        for point in expansion.points:
            spec_json = point.spec.to_json(indent=None)
            cached = self._load_artifact(point)
            if cached is not None:
                self.resumed.append(point.index)
                resumed_set.add(point.index)
                collect((point.index, cached))
            else:
                payloads.append((point.index, spec_json))

        if self.workers == 1 or len(payloads) <= 1:
            for payload in payloads:
                collect(run_point_payload(payload))
        else:
            import multiprocessing

            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                context = multiprocessing.get_context("spawn")
            workers = min(self.workers, len(payloads))
            with context.Pool(processes=workers) as pool:
                for item in pool.imap_unordered(
                    run_point_payload, payloads, chunksize=1
                ):
                    collect(item)
        points = [finished[point.index] for point in expansion.points]
        return SweepResult(
            spec=self.spec, points=points, skipped=list(expansion.skipped)
        )

    # -- resumable campaigns -----------------------------------------------

    def _artifact_path(self, index: int) -> str:
        return os.path.join(self.resume_dir, f"point-{index:05d}.json")

    def _load_artifact(self, point: SweepPoint) -> str | None:
        """The stored result bytes for ``point``, or None to execute it.

        A stored artifact is only trusted when its spec echo matches
        the freshly expanded point — editing the sweep (axes, seeds,
        base) invalidates stale points individually instead of
        poisoning the merge.
        """
        if self.resume_dir is None:
            return None
        path = self._artifact_path(point.index)
        try:
            with open(path, encoding="utf-8") as handle:
                text = handle.read()
            stored_spec = json.loads(text).get("spec")
        except (OSError, json.JSONDecodeError):
            return None
        if stored_spec != point.spec.to_dict():
            return None
        return text

    def _store_artifact(self, index: int, result_json: str) -> None:
        os.makedirs(self.resume_dir, exist_ok=True)
        path = self._artifact_path(index)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(result_json)

    def _join(self, point: SweepPoint, result_json: str) -> PointResult:
        return PointResult(
            index=point.index,
            name=point.name,
            coords=dict(point.coords),
            overrides=dict(point.overrides),
            seed=point.spec.seed,
            artifact=json.loads(result_json),
        )


def run_sweep(
    spec: SweepSpec,
    workers: int = 1,
    on_point: Callable[[PointResult], None] | None = None,
    resume_dir: str | None = None,
) -> SweepResult:
    """Convenience wrapper: ``SweepRunner(spec, workers).run()``."""
    return SweepRunner(
        spec, workers=workers, on_point=on_point, resume_dir=resume_dir
    ).run()
