"""Sweep aggregation: per-point artifacts joined into one table.

A :class:`SweepResult` holds, for every executed point, the full
serialized :class:`~repro.experiment.ExperimentResult` artifact plus a
flat summary row, and exports the whole campaign as JSON (artifact of
record) or CSV (the figure-plotting table).  Aggregation is a pure
function of the per-point artifacts sorted by point index, so the
export is byte-identical regardless of how many workers produced the
points or in which order they finished.
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass, field
from typing import Any

from .spec import SkippedPoint, SweepSpec

#: The flat metric columns every summary row carries, CSV order.
ROW_METRICS = (
    "total",
    "committed",
    "aborted",
    "mixed",
    "undecided",
    "commit_rate",
    "atomicity_violations",
    "mean_latency",
    "p50_latency",
    "p99_latency",
    "swaps_per_second",
    "makespan",
    "max_in_flight",
    "total_fees",
    "fee_per_commit",
    "priced_out",
    "evictions",
    "fee_bumps",
    "injected_crashes",
    "attacked",
    "attacks_launched",
    "reorgs_won",
    "reorgs_lost",
    "attack_cost",
)


@dataclass(frozen=True)
class PointResult:
    """One executed sweep point: identity, coordinates, and artifact."""

    index: int
    name: str
    coords: dict[str, Any]
    overrides: dict[str, Any]
    seed: int
    #: The point's full ExperimentResult artifact (a plain dict — it
    #: crossed a process boundary as JSON).
    artifact: dict

    @property
    def metrics(self) -> dict:
        return self.artifact["metrics"]

    @property
    def outcomes(self) -> list[dict]:
        return self.artifact["outcomes"]

    @property
    def spec(self) -> dict:
        return self.artifact["spec"]

    def row(self) -> dict:
        """The flat summary row: identity + coords + headline metrics."""
        row: dict[str, Any] = {"index": self.index, "name": self.name}
        row.update(self.coords)
        row["seed"] = self.seed
        for key in ROW_METRICS:
            row[key] = self.metrics[key]
        return row


@dataclass
class SweepResult:
    """Everything one sweep campaign produced, as one artifact.

    Attributes:
        spec: the sweep spec that ran (echoed, so the artifact is
            reproducible from itself).
        points: executed points in index order.
        skipped: combinations dropped by ``drop_invalid``.
    """

    spec: SweepSpec
    points: list[PointResult]
    skipped: list[SkippedPoint] = field(default_factory=list)

    # -- joins -------------------------------------------------------------

    def rows(self) -> list[dict]:
        """The summary table, one flat dict per point, index order."""
        return [point.row() for point in self.points]

    def point_at(self, **coords) -> PointResult | None:
        """The first point whose coordinates include every given pair."""
        for point in self.points:
            if all(point.coords.get(k) == v for k, v in coords.items()):
                return point
        return None

    def series(self, x_axis: str, y_metric: str, **where) -> list[tuple]:
        """``(x, y)`` pairs along one axis, filtered by other coords.

        ``y_metric`` names a :data:`ROW_METRICS` column.  Points are
        returned in index order (the deterministic expansion order).
        """
        out = []
        for point in self.points:
            if all(point.coords.get(k) == v for k, v in where.items()):
                out.append((point.coords[x_axis], point.metrics[y_metric]))
        return out

    @property
    def atomicity_violations(self) -> int:
        """Total violations across every point — the CI gate."""
        return sum(point.metrics["atomicity_violations"] for point in self.points)

    # -- exports -----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "sweep": self.spec.to_dict(),
            "rows": self.rows(),
            "skipped": [
                {"index": s.index, "coords": s.coords, "reason": s.reason}
                for s in self.skipped
            ],
            "points": [
                {
                    "index": p.index,
                    "name": p.name,
                    "coords": p.coords,
                    "overrides": p.overrides,
                    "seed": p.seed,
                    "result": p.artifact,
                }
                for p in self.points
            ],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")

    def csv_columns(self) -> list[str]:
        """The pinned CSV header, in order: ``index``, ``name``,
        ``status``, one column per axis (declaration order), ``seed``,
        the :data:`ROW_METRICS` in their declared order, and
        ``skip_reason``.

        The order is part of the artifact contract — it depends only on
        the sweep spec (never on dict iteration, locale, or Python
        version), so ``repro compare --csv`` diffs and CI ``cmp`` checks
        stay stable across runs and interpreter upgrades.
        """
        return (
            ["index", "name", "status"]
            + [axis.name for axis in self.spec.axes]
            + ["seed"]
            + list(ROW_METRICS)
            + ["skip_reason"]
        )

    def to_csv(self) -> str:
        """The summary table as CSV (deterministic: executed *and*
        skipped points merged in index order, the pinned
        :meth:`csv_columns` order, repr-style floats).

        Skipped combinations appear as ``status=skipped`` rows carrying
        their coordinates and reason with empty metric cells, so the
        table covers every enumerated grid cell and coverage gaps are
        visible in the export itself.
        """
        buffer = io.StringIO()
        columns = self.csv_columns()
        buffer.write(",".join(columns) + "\n")
        merged: list[dict] = [dict(row, status="ok") for row in self.rows()]
        merged += [
            {
                "index": skip.index,
                "status": "skipped",
                **skip.coords,
                "skip_reason": skip.reason,
            }
            for skip in self.skipped
        ]
        for row in sorted(merged, key=lambda r: r["index"]):
            cells = []
            for column in columns:
                value = row.get(column, "")
                if isinstance(value, float):
                    cells.append(repr(value))
                else:
                    cells.append(self._csv_escape(str(value)))
            buffer.write(",".join(cells) + "\n")
        return buffer.getvalue()

    @staticmethod
    def _csv_escape(cell: str) -> str:
        if any(ch in cell for ch in ',"\n'):
            return '"' + cell.replace('"', '""') + '"'
        return cell

    def save_csv(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_csv())
