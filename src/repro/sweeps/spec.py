"""The sweep schema: one serializable spec describing N experiments.

A :class:`SweepSpec` is a base :class:`~repro.experiment.ExperimentSpec`
plus named *axes* of dotted-path overrides.  Expansion is deterministic:
``grid`` mode takes the cartesian product of the axes (first axis
outermost), ``zip`` mode pairs them position-wise, and every expanded
point gets a derived seed (``base.seed + index * seed_stride`` unless an
axis sets ``seed`` explicitly).  The expansion is a pure function of the
sweep spec, so the same spec always yields the identical point list —
the invariant that makes multi-process execution byte-reproducible.

Axes come in two shapes:

* **scalar axes** — ``path`` names one dotted spec field and ``values``
  lists its settings (``SweepAxis(name="rate", path="traffic.rate",
  values=(6.0, 12.0))``);
* **override axes** — ``path`` is empty and every value is a dict of
  dotted-path overrides applied together, for coordinates that touch
  several fields at once (a Figure 10 "diameter" moves ``chains.ids``
  and ``traffic.participants_per_swap`` in lockstep).

Unknown paths and ill-typed values are rejected through the same strict
serde as the experiment layer, naming the full dotted path.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field, replace
from typing import Any

from ..errors import SpecError
from ..experiment.spec import (
    ExperimentSpec,
    apply_overrides,
    spec_from_dict,
    spec_to_dict,
)

SWEEP_MODES = ("grid", "zip")


@dataclass(frozen=True)
class SweepAxis:
    """One named dimension of a sweep (see module docstring).

    Attributes:
        name: the axis label used in point names, coordinates, and CSV
            columns.
        path: dotted spec path for scalar axes; empty for override axes.
        values: the settings along the axis — scalars for a scalar axis,
            dicts of ``{dotted.path: value}`` for an override axis.
        labels: optional display labels, parallel to ``values`` (an
            override axis without labels falls back to compact JSON).
    """

    name: str
    path: str = ""
    values: tuple[Any, ...] = ()
    labels: tuple[str, ...] = ()

    def coordinate(self, index: int) -> Any:
        """The coordinate recorded for ``values[index]`` (label first)."""
        if self.labels:
            return self.labels[index]
        if self.path:
            return self.values[index]
        return json.dumps(self.values[index], sort_keys=True)

    def overrides_at(self, index: int) -> dict:
        """The dotted-path overrides ``values[index]`` contributes."""
        value = self.values[index]
        if self.path:
            return {self.path: value}
        return dict(value)


@dataclass(frozen=True)
class SweepPoint:
    """One expanded experiment of a sweep (a runtime artifact, not serde)."""

    index: int
    name: str
    coords: dict[str, Any]
    overrides: dict[str, Any]
    spec: ExperimentSpec


@dataclass(frozen=True)
class SkippedPoint:
    """A grid combination dropped by ``drop_invalid`` (e.g. Nolan at
    diameter > 2), kept in the artifact so coverage gaps are explicit."""

    index: int
    coords: dict[str, Any]
    reason: str


@dataclass(frozen=True)
class SweepExpansion:
    """The deterministic result of :meth:`SweepSpec.expand`."""

    points: tuple[SweepPoint, ...]
    skipped: tuple[SkippedPoint, ...]


@dataclass(frozen=True)
class SweepSpec:
    """A campaign: one base experiment swept along named axes.

    Attributes:
        name: campaign name (echoed into artifacts and point names).
        base: the experiment every point starts from.
        axes: the sweep dimensions, outermost first.
        mode: ``"grid"`` (cartesian product) or ``"zip"`` (position-wise,
            all axes the same length).
        derive_seeds: give each point seed ``base.seed + index *
            seed_stride`` unless one of its axes overrides ``seed``.
        seed_stride: spacing between derived per-point seeds.
        drop_invalid: silently skip combinations whose spec fails
            semantic validation (recorded as :class:`SkippedPoint`);
            when False the first invalid point raises.
    """

    name: str = "sweep"
    base: ExperimentSpec = field(default_factory=ExperimentSpec)
    axes: tuple[SweepAxis, ...] = ()
    mode: str = "grid"
    derive_seeds: bool = True
    seed_stride: int = 1
    drop_invalid: bool = False

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        return spec_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SweepSpec":
        return spec_from_dict(cls, data)

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"sweep spec is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    # -- validation --------------------------------------------------------

    def validate(self) -> "SweepSpec":
        """Check the sweep's own structure; returns self for chaining.

        Point-level semantic validity is checked during :meth:`expand`
        (so ``drop_invalid`` can skip, not fail); this method rejects
        everything that would make the expansion itself ill-defined.
        """

        def fail(message: str) -> None:
            raise SpecError(f"invalid sweep {self.name!r}: {message}")

        if self.mode not in SWEEP_MODES:
            fail(f"mode must be one of {SWEEP_MODES}, got {self.mode!r}")
        if not self.axes:
            fail("a sweep needs at least one axis")
        names = [axis.name for axis in self.axes]
        if len(set(names)) != len(names):
            fail(f"axis names must be unique, got {names}")
        # Axis names become row/CSV columns; colliding with the fixed
        # identity or metric columns would silently clobber coordinates.
        # The one self-consistent case: an axis literally sweeping the
        # spec's seed (name == path == "seed") matches its row column.
        from .result import ROW_METRICS

        reserved = {"index", "name", "seed", "status", "skip_reason"} | set(
            ROW_METRICS
        )
        for axis in self.axes:
            if axis.name in reserved and not (
                axis.name == "seed" and axis.path == "seed"
            ):
                fail(
                    f"axis name {axis.name!r} collides with a reserved "
                    f"result column; pick another label"
                )
        for axis in self.axes:
            if not axis.name:
                fail("every axis needs a name")
            if not axis.values:
                fail(f"axis {axis.name!r} has no values")
            if axis.labels and len(axis.labels) != len(axis.values):
                fail(
                    f"axis {axis.name!r} has {len(axis.labels)} labels for "
                    f"{len(axis.values)} values"
                )
            if not axis.path:
                for i, value in enumerate(axis.values):
                    if not isinstance(value, dict):
                        fail(
                            f"axis {axis.name!r} has no path, so values must "
                            f"be override dicts; values[{i}] is "
                            f"{type(value).__name__}"
                        )
        if self.mode == "zip":
            lengths = {len(axis.values) for axis in self.axes}
            if len(lengths) > 1:
                fail(
                    f"zip mode needs equal-length axes, got "
                    f"{[len(a.values) for a in self.axes]}"
                )
        paths: dict[str, str] = {}
        for axis in self.axes:
            for path in self._axis_paths(axis):
                if path in paths:
                    fail(
                        f"axes {paths[path]!r} and {axis.name!r} both "
                        f"override {path!r}"
                    )
                paths[path] = axis.name
        if self.seed_stride < 1:
            fail("seed_stride must be at least 1")
        return self

    @staticmethod
    def _axis_paths(axis: SweepAxis) -> set[str]:
        if axis.path:
            return {axis.path}
        paths: set[str] = set()
        for value in axis.values:
            if isinstance(value, dict):
                paths.update(str(key) for key in value)
        return paths

    # -- expansion ---------------------------------------------------------

    def num_points(self) -> int:
        """Points the expansion will enumerate (before drop_invalid)."""
        if self.mode == "zip":
            return len(self.axes[0].values) if self.axes else 0
        count = 1
        for axis in self.axes:
            count *= len(axis.values)
        return count

    def _combinations(self):
        """Per-axis value indices of every point, expansion order."""
        if self.mode == "zip":
            return (
                tuple([i] * len(self.axes))
                for i in range(len(self.axes[0].values))
            )
        return itertools.product(*(range(len(a.values)) for a in self.axes))

    def expand(self) -> SweepExpansion:
        """Deterministically expand into concrete experiment points.

        Unknown override paths and ill-typed values raise
        :class:`~repro.errors.SpecError` naming the full dotted path;
        semantically invalid combinations raise too, unless
        ``drop_invalid`` turns them into :class:`SkippedPoint` records.
        Skipping never renumbers the surviving points, so per-point
        derived seeds are stable under catalog changes.
        """
        self.validate()
        points: list[SweepPoint] = []
        skipped: list[SkippedPoint] = []
        for index, picks in enumerate(self._combinations()):
            coords = {
                axis.name: axis.coordinate(pick)
                for axis, pick in zip(self.axes, picks)
            }
            overrides: dict[str, Any] = {}
            for axis, pick in zip(self.axes, picks):
                overrides.update(axis.overrides_at(pick))
            spec = apply_overrides(self.base, overrides)
            if self.derive_seeds and "seed" not in overrides:
                spec = replace(spec, seed=self.base.seed + index * self.seed_stride)
            label = ",".join(f"{k}={coords[k]}" for k in coords)
            spec = replace(spec, name=f"{self.name}[{index:03d}] {label}")
            try:
                spec.validate()
            except SpecError as exc:
                if not self.drop_invalid:
                    raise SpecError(
                        f"sweep {self.name!r} point {index} ({label}): {exc}"
                    ) from exc
                skipped.append(
                    SkippedPoint(index=index, coords=coords, reason=str(exc))
                )
                continue
            points.append(
                SweepPoint(
                    index=index,
                    name=spec.name,
                    coords=coords,
                    overrides=overrides,
                    spec=spec,
                )
            )
        return SweepExpansion(points=tuple(points), skipped=tuple(skipped))
