"""The named sweep catalog: every paper figure as one campaign spec.

Mirrors the experiment preset registry: a sweep preset is a zero-arg
factory returning a fresh :class:`~repro.sweeps.spec.SweepSpec`, so the
CLI (``repro sweep --preset NAME``), the benchmarks, and CI all
regenerate the same figures from the same declarative descriptions.
Register project-specific campaigns with :func:`register_sweep`.
"""

from __future__ import annotations

from typing import Callable

from ..errors import SpecError
from ..experiment.presets import preset_spec
from .spec import SweepAxis, SweepSpec

SweepFactory = Callable[[], SweepSpec]

_SWEEPS: dict[str, tuple[SweepFactory, str]] = {}


def register_sweep(
    name: str, factory: SweepFactory, description: str = "", replace: bool = False
) -> None:
    """Register a named sweep (a zero-arg factory returning a SweepSpec)."""
    if name in _SWEEPS and not replace:
        raise SpecError(f"sweep {name!r} is already registered")
    _SWEEPS[name] = (factory, description)


def unregister_sweep(name: str) -> None:
    """Remove a plug-in sweep from the catalog."""
    _SWEEPS.pop(name, None)


def sweep_names() -> tuple[str, ...]:
    return tuple(sorted(_SWEEPS))


def sweep_description(name: str) -> str:
    return _SWEEPS[name][1] if name in _SWEEPS else ""


def sweep_spec(name: str) -> SweepSpec:
    """A fresh spec for a named sweep."""
    if name not in _SWEEPS:
        raise SpecError(
            f"unknown sweep {name!r}; available: {', '.join(sweep_names())}"
        )
    return _SWEEPS[name][0]()


# ---------------------------------------------------------------------------
# Stock campaigns — the paper's figures
# ---------------------------------------------------------------------------

FIGURE10_DIAMETERS = (2, 3, 4, 5, 6)
CRASH_ONSETS = (0.0, 2.0, 3.0, 4.5, 12.0)
CONGESTION_RATES = (6.0, 8.0, 10.0, 12.0, 14.0, 16.0)
SECURITY_DEPTHS = (1, 2, 3, 4)
SECURITY_HASHPOWERS = (2.0, 6.0)


def _figure10() -> SweepSpec:
    """Figure 10, measured: latency vs swap diameter for every protocol.

    The diameter axis moves the chain set and the participants-per-swap
    together (a diameter-D ring over D chains); the protocol axis covers
    all four drivers.  Nolan is strictly two-party, so its diameter > 2
    cells are dropped by ``drop_invalid`` — visible in the artifact's
    ``skipped`` list rather than silently absent.
    """
    return SweepSpec(
        name="figure10",
        base=preset_spec("figure10"),
        axes=(
            SweepAxis(
                name="protocol",
                path="protocol",
                values=("nolan", "herlihy", "ac3tw", "ac3wn"),
            ),
            SweepAxis(
                name="diameter",
                values=tuple(
                    {
                        "chains.ids": [f"c{i}" for i in range(d)],
                        "traffic.participants_per_swap": d,
                    }
                    for d in FIGURE10_DIAMETERS
                ),
                labels=tuple(str(d) for d in FIGURE10_DIAMETERS),
            ),
        ),
        mode="grid",
        drop_invalid=True,
    )


def _table1() -> SweepSpec:
    """Table 1, measured: engine swap-level throughput per protocol
    (40 open-loop AC2Ts at 8/s over three shared chains each)."""
    return SweepSpec(
        name="table1",
        base=preset_spec("table1"),
        axes=(
            SweepAxis(
                name="protocol",
                path="protocol",
                values=("nolan", "herlihy", "ac3tw", "ac3wn"),
            ),
        ),
        # One workload measured under four protocols: same seed (and so
        # the same arrival schedule) for every point.
        derive_seeds=False,
    )


def _crash_matrix() -> SweepSpec:
    """Section 1's crash comparison: Bob crashes at each onset, under
    Nolan (HTLC) and AC3WN.

    Seeds ride on the onset axis (one seed per onset, shared by both
    protocols) to reproduce the CLI crash-sweep's re-baselined cells:
    onsets 2.0/3.0 land in the HTLC vulnerability window and settle
    non-atomically; AC3WN aborts or commits cleanly everywhere.
    """
    return SweepSpec(
        name="crash-matrix",
        base=preset_spec("swap"),
        axes=(
            SweepAxis(
                name="onset",
                values=tuple(
                    {
                        "traffic.crash.participant": "b",
                        "traffic.crash.delay": onset,
                        "traffic.crash.down_for": 500.0,
                        "seed": index,
                    }
                    for index, onset in enumerate(CRASH_ONSETS)
                ),
                labels=tuple(str(onset) for onset in CRASH_ONSETS),
            ),
            SweepAxis(name="protocol", path="protocol", values=("nolan", "ac3wn")),
        ),
        mode="grid",
        derive_seeds=False,
    )


def _congestion_rates() -> SweepSpec:
    """The congestion arrival-rate sweep: the oversubscribed fee market
    measured from under- to over-subscription (6 → 16 swaps/s)."""
    return SweepSpec(
        name="congestion-rates",
        base=preset_spec("congestion"),
        axes=(
            SweepAxis(name="rate", path="traffic.rate", values=CONGESTION_RATES),
        ),
        # Same seed per point: the rate is the only moving part.
        derive_seeds=False,
    )


def _security_matrix() -> SweepSpec:
    """Section 6.3, measured: depth ``d`` x attacker hashpower x protocol
    under the budgeted reorg attacker.

    The base cost model pins ``required_depth = 4`` (budget 3 private
    blocks per attack), so the surface shows the measured violation
    rate falling to zero once ``d`` reaches the analytic bound: the
    HTLC protocols bleed at shallow depth while the witness protocols
    stay atomic everywhere — the paper's depth-``d`` defense, end to
    end.  Same seed for every point, so each protocol faces the same
    arrival schedule at every coordinate.
    """
    return SweepSpec(
        name="security-matrix",
        base=preset_spec("security"),
        axes=(
            SweepAxis(
                name="depth",
                path="chains.confirmation_depth",
                values=SECURITY_DEPTHS,
            ),
            SweepAxis(
                name="hashpower",
                path="adversary.reorg.hashpower",
                values=SECURITY_HASHPOWERS,
            ),
            SweepAxis(
                name="protocol",
                path="protocol",
                values=("nolan", "herlihy", "ac3tw", "ac3wn"),
            ),
        ),
        mode="grid",
        derive_seeds=False,
    )


def _security_smoke() -> SweepSpec:
    """The CI-sized security matrix: 2 depths x 2 hashpowers over the
    most informative protocol pair (Nolan bleeds, AC3WN holds)."""
    return SweepSpec(
        name="security-smoke",
        base=preset_spec("security"),
        axes=(
            SweepAxis(
                name="depth", path="chains.confirmation_depth", values=(1, 4)
            ),
            SweepAxis(
                name="hashpower",
                path="adversary.reorg.hashpower",
                values=SECURITY_HASHPOWERS,
            ),
            SweepAxis(name="protocol", path="protocol", values=("nolan", "ac3wn")),
        ),
        mode="grid",
        derive_seeds=False,
    )


register_sweep(
    "figure10",
    _figure10,
    "measured latency vs diameter, all four protocols (Figure 10)",
)
register_sweep(
    "table1", _table1, "measured engine throughput per protocol (Table 1)"
)
register_sweep(
    "crash-matrix",
    _crash_matrix,
    "crash onset x protocol decision matrix (Section 1)",
)
register_sweep(
    "congestion-rates",
    _congestion_rates,
    "fee-market commit/priced-out vs arrival rate (6 points)",
)
register_sweep(
    "security-matrix",
    _security_matrix,
    "violation rate vs depth d x attacker hashpower x protocol (Section 6.3)",
)
register_sweep(
    "security-smoke",
    _security_smoke,
    "CI-sized security matrix: 2 depths x 2 hashpowers, nolan vs ac3wn",
)
