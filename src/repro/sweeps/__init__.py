"""Sweep campaigns: parallel experiment orchestration from one spec.

The paper's headline results are parameter sweeps — Table 1's
throughput scaling, Figure 10's latency vs swap diameter, the crash
matrices.  This subsystem turns each of them into one declarative
:class:`SweepSpec` (a base :class:`~repro.experiment.ExperimentSpec`
plus named axes of dotted-path overrides), expands it deterministically
into N experiment points, executes the points across a worker-process
pool (:class:`SweepRunner` — serialized specs in, serialized artifacts
out), and joins the per-point metrics into one :class:`SweepResult`
table with CSV/JSON export and per-figure curve extractors
(:mod:`repro.sweeps.figures`).

The public surface:

* :class:`SweepSpec` / :class:`SweepAxis` — the schema
  (:mod:`repro.sweeps.spec`);
* :class:`SweepRunner` / :func:`run_sweep` — execution
  (:mod:`repro.sweeps.runner`);
* :class:`SweepResult` / :class:`PointResult` — aggregation and export
  (:mod:`repro.sweeps.result`);
* :func:`sweep_spec` / :func:`register_sweep` — the named campaign
  catalog (:mod:`repro.sweeps.presets`);
* the figure extractors — :func:`figure10_curves`,
  :func:`table1_series`, :func:`crash_matrix`,
  :func:`arrival_rate_series` (:mod:`repro.sweeps.figures`).
"""

from .figures import (
    ArrivalRatePoint,
    CrashCell,
    Figure10Point,
    ThroughputRow,
    ViolationSurfacePoint,
    arrival_rate_series,
    crash_matrix,
    figure10_curves,
    rows_by_axis,
    table1_series,
    violation_rate_surface,
)
from .presets import (
    register_sweep,
    sweep_description,
    sweep_names,
    sweep_spec,
    unregister_sweep,
)
from .result import PointResult, SweepResult
from .runner import SweepRunner, run_point_payload, run_sweep
from .spec import (
    SkippedPoint,
    SweepAxis,
    SweepExpansion,
    SweepPoint,
    SweepSpec,
)

__all__ = [
    "ArrivalRatePoint",
    "CrashCell",
    "Figure10Point",
    "PointResult",
    "SkippedPoint",
    "SweepAxis",
    "SweepExpansion",
    "SweepPoint",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "ThroughputRow",
    "ViolationSurfacePoint",
    "arrival_rate_series",
    "crash_matrix",
    "figure10_curves",
    "register_sweep",
    "rows_by_axis",
    "run_point_payload",
    "run_sweep",
    "sweep_description",
    "sweep_names",
    "sweep_spec",
    "table1_series",
    "unregister_sweep",
    "violation_rate_surface",
]
