"""Event-driven execution layer: many concurrent AC2Ts, one simulation."""

from .engine import (
    PROTOCOLS,
    EngineResult,
    ProtocolEntry,
    SwapEngine,
    SwapRequest,
    register_protocol,
    registered_protocols,
    unregister_protocol,
)
from .metrics import (
    EngineMetrics,
    MetricsAccumulator,
    WindowedMetrics,
    compute_metrics,
    percentile,
)

__all__ = [
    "PROTOCOLS",
    "EngineMetrics",
    "EngineResult",
    "MetricsAccumulator",
    "ProtocolEntry",
    "SwapEngine",
    "SwapRequest",
    "WindowedMetrics",
    "compute_metrics",
    "percentile",
    "register_protocol",
    "registered_protocols",
    "unregister_protocol",
]
