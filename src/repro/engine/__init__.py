"""Event-driven execution layer: many concurrent AC2Ts, one simulation."""

from .engine import PROTOCOLS, EngineResult, SwapEngine, SwapRequest
from .metrics import EngineMetrics, compute_metrics, percentile

__all__ = [
    "PROTOCOLS",
    "EngineMetrics",
    "EngineResult",
    "SwapEngine",
    "SwapRequest",
    "compute_metrics",
    "percentile",
]
