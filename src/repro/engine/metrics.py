"""Aggregate metrics over a batch of concurrently executed AC2Ts.

The paper's evaluation (Table 1, Figures 8-10) quantifies protocols by
throughput and latency under load; :func:`compute_metrics` distills a
set of :class:`~repro.core.protocol.SwapOutcome` records produced by the
:class:`~repro.engine.engine.SwapEngine` into those aggregate numbers.
Everything here is a pure function of the outcomes, so metrics are
exactly as deterministic as the simulation that produced them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.protocol import SwapOutcome


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]) of a non-empty list."""
    if not values:
        raise ValueError("percentile of an empty list")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be within [0, 100], got {q}")
    ordered = sorted(values)
    if q == 0.0:
        return ordered[0]
    rank = max(1, -(-len(ordered) * q // 100))  # ceil without math import
    return ordered[int(rank) - 1]


@dataclass(frozen=True)
class EngineMetrics:
    """Aggregate result of one engine run (or one protocol's slice of it).

    Attributes:
        protocol: protocol name, or "mixed" for a multi-protocol batch.
        total: number of swaps that completed (reached a terminal state).
        committed / aborted / mixed / undecided: decision counts.
        atomicity_violations: swaps whose settled contracts mixed RD and
            RF — zero for the witness-based protocols by construction.
        commit_rate: committed / total (0.0 for an empty batch).
        mean_latency / p50_latency / p99_latency: per-swap wall-clock in
            simulation seconds, from driver start to terminal state.
        swaps_per_second: total / makespan — the engine-level throughput
            Table 1's min() rule bounds from above.
        makespan: last finish minus first start over the whole batch.
        first_started_at / last_finished_at: batch boundaries.
        max_in_flight: peak number of concurrently active swaps.
        total_fees: fees spent across every swap and chain.
        priced_out: swaps that abandoned at least one message because
            their fee budget lost the block-space auction.
        evictions: mempool evictions suffered across all swaps.
        fee_bumps: successful replace-by-fee rebroadcasts across swaps.
        injected_crashes: swaps that had a participant crash injected by
            the workload's ``crash_rate`` knob.
        fee_per_commit: mean fee spend of the *committed* swaps — the
            measured counterpart of the Section 6.2 cost model.
        attacked: swaps targeted by at least one adversary actor.
        attacks_launched: reorg attacks launched against this batch.
        reorgs_won / reorgs_lost: how those fork races resolved.
        attack_blocks: private blocks the attacker mined in them.
        attack_cost: USD the attacker spent (Section 6.3 cost model) —
            compare against the per-swap value at risk to read the
            economics of the measured violation rate.
    """

    protocol: str
    total: int
    committed: int
    aborted: int
    mixed: int
    undecided: int
    atomicity_violations: int
    commit_rate: float
    mean_latency: float
    p50_latency: float
    p99_latency: float
    swaps_per_second: float
    makespan: float
    first_started_at: float
    last_finished_at: float
    max_in_flight: int
    total_fees: int
    priced_out: int = 0
    evictions: int = 0
    fee_bumps: int = 0
    injected_crashes: int = 0
    fee_per_commit: float = 0.0
    attacked: int = 0
    attacks_launched: int = 0
    reorgs_won: int = 0
    reorgs_lost: int = 0
    attack_blocks: int = 0
    attack_cost: float = 0.0

    @property
    def commits_per_second(self) -> float:
        """Committed AC2Ts per simulated second over the makespan."""
        return self.committed / self.makespan if self.makespan > 0 else 0.0

    @property
    def priced_out_rate(self) -> float:
        """Fraction of swaps congestion priced out of block space."""
        return self.priced_out / self.total if self.total > 0 else 0.0


def compute_metrics(
    outcomes: list[SwapOutcome],
    protocol: str = "mixed",
    max_in_flight: int = 0,
) -> EngineMetrics:
    """Summarize completed outcomes into an :class:`EngineMetrics`."""
    if not outcomes:
        return EngineMetrics(
            protocol=protocol,
            total=0,
            committed=0,
            aborted=0,
            mixed=0,
            undecided=0,
            atomicity_violations=0,
            commit_rate=0.0,
            mean_latency=0.0,
            p50_latency=0.0,
            p99_latency=0.0,
            swaps_per_second=0.0,
            makespan=0.0,
            first_started_at=0.0,
            last_finished_at=0.0,
            max_in_flight=max_in_flight,
            total_fees=0,
        )
    decisions = [outcome.decision for outcome in outcomes]
    latencies = [outcome.latency for outcome in outcomes]
    first_start = min(outcome.started_at for outcome in outcomes)
    last_finish = max(outcome.finished_at for outcome in outcomes)
    makespan = last_finish - first_start
    total = len(outcomes)
    committed = decisions.count("commit")
    commit_fees = sum(o.fees_paid for o in outcomes if o.decision == "commit")
    return EngineMetrics(
        protocol=protocol,
        total=total,
        committed=committed,
        aborted=decisions.count("abort"),
        mixed=decisions.count("mixed"),
        undecided=decisions.count("undecided"),
        atomicity_violations=sum(1 for o in outcomes if not o.is_atomic),
        commit_rate=committed / total,
        mean_latency=sum(latencies) / total,
        p50_latency=percentile(latencies, 50.0),
        p99_latency=percentile(latencies, 99.0),
        swaps_per_second=(total / makespan) if makespan > 0 else 0.0,
        makespan=makespan,
        first_started_at=first_start,
        last_finished_at=last_finish,
        max_in_flight=max_in_flight,
        total_fees=sum(outcome.fees_paid for outcome in outcomes),
        priced_out=sum(1 for o in outcomes if o.priced_out),
        evictions=sum(o.evictions for o in outcomes),
        fee_bumps=sum(o.fee_bumps for o in outcomes),
        injected_crashes=sum(1 for o in outcomes if o.injected_crash is not None),
        fee_per_commit=(commit_fees / committed) if committed else 0.0,
        attacked=sum(1 for o in outcomes if o.attacked_by),
        attacks_launched=sum(o.attacks_launched for o in outcomes),
        reorgs_won=sum(o.reorgs_won for o in outcomes),
        reorgs_lost=sum(o.reorgs_lost for o in outcomes),
        attack_blocks=sum(o.attack_blocks for o in outcomes),
        attack_cost=sum(o.attack_cost for o in outcomes),
    )
