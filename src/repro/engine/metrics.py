"""Aggregate metrics over a batch of concurrently executed AC2Ts.

The paper's evaluation (Table 1, Figures 8-10) quantifies protocols by
throughput and latency under load.  :class:`MetricsAccumulator` folds
:class:`~repro.core.protocol.SwapOutcome` records in one at a time as
the :class:`~repro.engine.engine.SwapEngine` finalizes them — O(1) per
swap — and produces :class:`EngineMetrics` snapshots on demand in a
single pass, instead of the dozen-plus generator sweeps the old
``compute_metrics`` ran over the full outcome list per protocol slice.
:func:`compute_metrics` remains as a thin wrapper with byte-identical
output.  Everything here is a pure function of the outcomes, so metrics
are exactly as deterministic as the simulation that produced them.

Two ordering subtleties keep snapshots deterministic and pinned:

* Floating-point sums are order-sensitive, so the accumulator assigns
  every fold a sort key (the engine passes the swap id) and computes
  order-sensitive aggregates in key order.  Folding the same outcomes
  in any order therefore yields the identical ``EngineMetrics``.
* Outcomes are folded by *reference*: the adversary roster re-stamps
  attack fields and re-audits final states after completion, so the
  snapshot pass reads whatever the outcomes say at snapshot time.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass

from ..core.protocol import SwapOutcome


def _nearest_rank(ordered: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted non-empty list."""
    if q == 0.0:
        return ordered[0]
    rank = max(1, math.ceil(len(ordered) * q / 100))
    return ordered[rank - 1]


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]) of a non-empty list."""
    if not values:
        raise ValueError("percentile of an empty list")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be within [0, 100], got {q}")
    return _nearest_rank(sorted(values), q)


@dataclass(frozen=True)
class EngineMetrics:
    """Aggregate result of one engine run (or one protocol's slice of it).

    Attributes:
        protocol: protocol name, or "mixed" for a multi-protocol batch.
        total: number of swaps that completed (reached a terminal state).
        committed / aborted / mixed / undecided: decision counts.
        atomicity_violations: swaps whose settled contracts mixed RD and
            RF — zero for the witness-based protocols by construction.
        commit_rate: committed / total (0.0 for an empty batch).
        mean_latency / p50_latency / p99_latency: per-swap wall-clock in
            simulation seconds, from driver start to terminal state.
        swaps_per_second: total / makespan — the engine-level throughput
            Table 1's min() rule bounds from above.
        makespan: last finish minus first start over the whole batch.
        first_started_at / last_finished_at: batch boundaries.
        max_in_flight: peak number of concurrently active swaps.
        total_fees: fees spent across every swap and chain.
        priced_out: swaps that abandoned at least one message because
            their fee budget lost the block-space auction.
        evictions: mempool evictions suffered across all swaps.
        fee_bumps: successful replace-by-fee rebroadcasts across swaps.
        injected_crashes: swaps that had a participant crash injected by
            the workload's ``crash_rate`` knob.
        fee_per_commit: mean fee spend of the *committed* swaps — the
            measured counterpart of the Section 6.2 cost model.
        attacked: swaps targeted by at least one adversary actor.
        attacks_launched: reorg attacks launched against this batch.
        reorgs_won / reorgs_lost: how those fork races resolved.
        attack_blocks: private blocks the attacker mined in them.
        attack_cost: USD the attacker spent (Section 6.3 cost model) —
            compare against the per-swap value at risk to read the
            economics of the measured violation rate.
    """

    protocol: str
    total: int
    committed: int
    aborted: int
    mixed: int
    undecided: int
    atomicity_violations: int
    commit_rate: float
    mean_latency: float
    p50_latency: float
    p99_latency: float
    swaps_per_second: float
    makespan: float
    first_started_at: float
    last_finished_at: float
    max_in_flight: int
    total_fees: int
    priced_out: int = 0
    evictions: int = 0
    fee_bumps: int = 0
    injected_crashes: int = 0
    fee_per_commit: float = 0.0
    attacked: int = 0
    attacks_launched: int = 0
    reorgs_won: int = 0
    reorgs_lost: int = 0
    attack_blocks: int = 0
    attack_cost: float = 0.0

    @property
    def commits_per_second(self) -> float:
        """Committed AC2Ts per simulated second over the makespan."""
        return self.committed / self.makespan if self.makespan > 0 else 0.0

    @property
    def priced_out_rate(self) -> float:
        """Fraction of swaps congestion priced out of block space."""
        return self.priced_out / self.total if self.total > 0 else 0.0


@dataclass(frozen=True)
class WindowedMetrics:
    """Streaming view over the swaps finishing in a trailing time window.

    The service-mode counterpart of :class:`EngineMetrics`: commit rate
    and latency percentiles over the swaps whose ``finished_at`` falls in
    ``(end - window, end]``, queryable mid-run at any point.
    """

    window: float
    end: float
    total: int
    committed: int
    commit_rate: float
    p50_latency: float
    p99_latency: float
    priced_out: int = 0

    @property
    def priced_out_rate(self) -> float:
        """Fraction of the window's swaps priced out of block space."""
        return self.priced_out / self.total if self.total > 0 else 0.0


class MetricsAccumulator:
    """Folds terminal :class:`SwapOutcome` records in one at a time.

    ``fold`` is O(1) (append plus counter updates); latency digests are
    exact (reservoir-free) and sorted on demand at snapshot time, where
    the sort is shared between p50 and p99.  ``snapshot`` reduces
    everything else in a single pass over the folded outcomes in key
    order, so it is fold-order independent and byte-identical to the
    historical multi-pass ``compute_metrics``.
    """

    __slots__ = (
        "_records",
        "_keys_sorted",
        "_last_key",
        "total",
        "committed",
        "total_fees",
        "in_flight",
        "max_in_flight",
        "_ordered_cache",
        "_finish_cache",
    )

    def __init__(self) -> None:
        self._records: list[tuple[object, SwapOutcome]] = []
        self._keys_sorted = True
        self._last_key: object | None = None
        #: Live streaming counters, O(1) to read mid-run.
        self.total = 0
        self.committed = 0
        self.total_fees = 0
        self.in_flight = 0
        self.max_in_flight = 0
        self._ordered_cache: list[tuple[object, SwapOutcome]] | None = None
        self._finish_cache: tuple[list[float], list[SwapOutcome]] | None = None

    # -- folding -----------------------------------------------------------

    def launched(self) -> None:
        """Record one swap entering flight (peak concurrency tracking)."""
        self.in_flight += 1
        if self.in_flight > self.max_in_flight:
            self.max_in_flight = self.in_flight

    def fold(
        self,
        outcome: SwapOutcome,
        key: object | None = None,
        completes_flight: bool = False,
    ) -> None:
        """Fold one terminal outcome in; O(1).

        ``key`` fixes the outcome's position in the canonical snapshot
        order (the engine passes the swap id); it defaults to the fold
        sequence.  Don't mix explicit and default keys in one
        accumulator.  ``completes_flight`` balances a prior
        :meth:`launched` call.
        """
        if key is None:
            key = len(self._records)
        if self._keys_sorted and self._last_key is not None and key < self._last_key:  # type: ignore[operator]
            self._keys_sorted = False
        self._last_key = key
        self._records.append((key, outcome))
        self._ordered_cache = None
        self._finish_cache = None
        if completes_flight:
            self.in_flight -= 1
        self.total += 1
        if outcome.decision == "commit":
            self.committed += 1
        self.total_fees += outcome.fees_paid

    @property
    def commit_rate(self) -> float:
        """Live commit rate over everything folded so far."""
        return self.committed / self.total if self.total else 0.0

    # -- snapshots ---------------------------------------------------------

    def _ordered(self) -> list[tuple[object, SwapOutcome]]:
        if self._ordered_cache is None:
            if self._keys_sorted:
                self._ordered_cache = self._records
            else:
                self._ordered_cache = sorted(self._records, key=lambda kv: kv[0])  # type: ignore[arg-type]
        return self._ordered_cache

    def snapshot(
        self, protocol: str = "mixed", max_in_flight: int | None = None
    ) -> EngineMetrics:
        """Reduce everything folded so far into an :class:`EngineMetrics`.

        One pass in key order; ``max_in_flight`` overrides the peak the
        accumulator tracked itself (``compute_metrics`` compatibility).
        """
        peak = self.max_in_flight if max_in_flight is None else max_in_flight
        if not self._records:
            return EngineMetrics(
                protocol=protocol,
                total=0,
                committed=0,
                aborted=0,
                mixed=0,
                undecided=0,
                atomicity_violations=0,
                commit_rate=0.0,
                mean_latency=0.0,
                p50_latency=0.0,
                p99_latency=0.0,
                swaps_per_second=0.0,
                makespan=0.0,
                first_started_at=0.0,
                last_finished_at=0.0,
                max_in_flight=peak,
                total_fees=0,
            )
        committed = aborted = mixed = undecided = violations = 0
        priced_out = evictions = fee_bumps = injected = attacked = 0
        attacks_launched = reorgs_won = reorgs_lost = attack_blocks = 0
        total_fees = commit_fees = 0
        latency_sum = 0.0
        attack_cost = 0.0
        latencies: list[float] = []
        first_start = math.inf
        last_finish = -math.inf
        for _, o in self._ordered():
            decision = o.decision
            fees = o.fees_paid
            if decision == "commit":
                committed += 1
                commit_fees += fees
            elif decision == "abort":
                aborted += 1
            elif decision == "mixed":
                mixed += 1
            elif decision == "undecided":
                undecided += 1
            if not o.is_atomic:
                violations += 1
            latency = o.finished_at - o.started_at
            latencies.append(latency)
            latency_sum += latency
            if o.started_at < first_start:
                first_start = o.started_at
            if o.finished_at > last_finish:
                last_finish = o.finished_at
            total_fees += fees
            if o.priced_out:
                priced_out += 1
            evictions += o.evictions
            fee_bumps += o.fee_bumps
            if o.injected_crash is not None:
                injected += 1
            if o.attacked_by:
                attacked += 1
            attacks_launched += o.attacks_launched
            reorgs_won += o.reorgs_won
            reorgs_lost += o.reorgs_lost
            attack_blocks += o.attack_blocks
            attack_cost += o.attack_cost
        total = len(latencies)
        ordered_latencies = sorted(latencies)
        makespan = last_finish - first_start
        return EngineMetrics(
            protocol=protocol,
            total=total,
            committed=committed,
            aborted=aborted,
            mixed=mixed,
            undecided=undecided,
            atomicity_violations=violations,
            commit_rate=committed / total,
            mean_latency=latency_sum / total,
            p50_latency=_nearest_rank(ordered_latencies, 50.0),
            p99_latency=_nearest_rank(ordered_latencies, 99.0),
            swaps_per_second=(total / makespan) if makespan > 0 else 0.0,
            makespan=makespan,
            first_started_at=first_start,
            last_finished_at=last_finish,
            max_in_flight=peak,
            total_fees=total_fees,
            priced_out=priced_out,
            evictions=evictions,
            fee_bumps=fee_bumps,
            injected_crashes=injected,
            fee_per_commit=(commit_fees / committed) if committed else 0.0,
            attacked=attacked,
            attacks_launched=attacks_launched,
            reorgs_won=reorgs_won,
            reorgs_lost=reorgs_lost,
            attack_blocks=attack_blocks,
            attack_cost=attack_cost,
        )

    # -- windowed streaming views ------------------------------------------

    def _finish_sorted(self) -> tuple[list[float], list[SwapOutcome]]:
        if self._finish_cache is None:
            ordered = sorted(
                (o for _, o in self._records), key=lambda o: o.finished_at
            )
            self._finish_cache = ([o.finished_at for o in ordered], ordered)
        return self._finish_cache

    def windowed(self, window: float, end: float | None = None) -> WindowedMetrics:
        """Commit rate / latency percentiles over a trailing time window.

        Covers the swaps finishing in ``(end - window, end]``; ``end``
        defaults to the latest finish folded so far.  This is the
        streaming service-mode view: cheap to query repeatedly mid-run.
        """
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        finish_times, ordered = self._finish_sorted()
        if end is None:
            end = finish_times[-1] if finish_times else 0.0
        lo = bisect_right(finish_times, end - window)
        hi = bisect_right(finish_times, end)
        selected = ordered[lo:hi]
        total = len(selected)
        if total == 0:
            return WindowedMetrics(
                window=window,
                end=end,
                total=0,
                committed=0,
                commit_rate=0.0,
                p50_latency=0.0,
                p99_latency=0.0,
                priced_out=0,
            )
        committed = sum(1 for o in selected if o.decision == "commit")
        priced_out = sum(1 for o in selected if o.priced_out)
        latencies = sorted(o.finished_at - o.started_at for o in selected)
        return WindowedMetrics(
            window=window,
            end=end,
            total=total,
            committed=committed,
            commit_rate=committed / total,
            p50_latency=_nearest_rank(latencies, 50.0),
            p99_latency=_nearest_rank(latencies, 99.0),
            priced_out=priced_out,
        )


def compute_metrics(
    outcomes: list[SwapOutcome],
    protocol: str = "mixed",
    max_in_flight: int = 0,
) -> EngineMetrics:
    """Summarize completed outcomes into an :class:`EngineMetrics`.

    Thin wrapper over :class:`MetricsAccumulator`, byte-identical to the
    historical multi-pass implementation.
    """
    accumulator = MetricsAccumulator()
    for outcome in outcomes:
        accumulator.fold(outcome)
    return accumulator.snapshot(protocol=protocol, max_in_flight=max_in_flight)
