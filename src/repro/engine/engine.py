"""The SwapEngine: hundreds of concurrent AC2Ts over shared chains.

The paper's evaluation measures protocols under *many concurrent*
cross-chain transactions; the engine is the execution layer that makes
that possible in this reproduction.  It multiplexes N in-flight
:class:`~repro.core.driver.ProtocolDriver` state machines over one
shared simulation (chains, mempools, miners), with:

* **open-loop arrivals** — swaps are submitted at caller-chosen times
  (typically a Poisson schedule from
  :func:`repro.workloads.scenarios.poisson_arrivals`) and launched by
  simulator callbacks, independent of how fast earlier swaps finish;
* **per-swap isolation** — each swap gets its own driver and
  :class:`~repro.core.protocol.SwapOutcome`; contention is mediated
  entirely by the shared chains and mempools, exactly like real traffic;
* **aggregate metrics** — commit rate, latency percentiles, swaps/sec
  (:mod:`repro.engine.metrics`).

Protocols can be mixed freely within one engine run; the single-swap
``run_*`` helpers in :mod:`repro.core` are simply this engine with N=1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import Callable

from ..core.ac3tw import AC3TWConfig, AC3TWDriver, TrustedWitness
from ..core.ac3wn import AC3WNConfig, AC3WNDriver
from ..core.driver import ProtocolDriver
from ..core.graph import SwapGraph
from ..core.herlihy import HerlihyConfig, HerlihyDriver
from ..core.nolan import NolanDriver, validate_two_party
from ..core.protocol import SwapEnvironment, SwapOutcome
from ..economy import FeeBudget
from ..errors import ProtocolError, ReproError, SchedulingError
from ..workloads.scenarios import CrashPlan, TrafficItem
from .metrics import EngineMetrics, MetricsAccumulator

#: The four built-in protocols, in the canonical round-robin order used
#: by "mixed" workloads.  The *registry* below may hold more: plug-in
#: protocols registered via :func:`register_protocol` are first-class
#: citizens of the engine without appearing in this tuple.
PROTOCOLS = ("nolan", "herlihy", "ac3tw", "ac3wn")


@dataclass(frozen=True)
class ProtocolEntry:
    """One registered protocol: how to build its driver for a request.

    ``factory(engine, request)`` returns a started-ready
    :class:`~repro.core.driver.ProtocolDriver`; ``validate(graph)``
    (optional) raises at submit time for graphs the protocol cannot
    execute, so failures surface at the call site instead of inside an
    arrival event.
    """

    name: str
    factory: Callable[["SwapEngine", "SwapRequest"], ProtocolDriver]
    validate: Callable[[SwapGraph], None] | None = None


_PROTOCOL_REGISTRY: dict[str, ProtocolEntry] = {}


def register_protocol(
    name: str,
    factory: Callable[["SwapEngine", "SwapRequest"], ProtocolDriver],
    validate: Callable[[SwapGraph], None] | None = None,
    replace: bool = False,
) -> None:
    """Register a protocol so engines (and specs) can run it by name.

    New protocols plug in without editing this module: the factory
    receives the engine (for ``env``, ``eager``, witness services) and
    the :class:`SwapRequest` (graph, config, fee budget).
    """
    if name in _PROTOCOL_REGISTRY and not replace:
        raise ProtocolError(f"protocol {name!r} is already registered")
    _PROTOCOL_REGISTRY[name] = ProtocolEntry(
        name=name, factory=factory, validate=validate
    )


def unregister_protocol(name: str) -> None:
    """Remove a plug-in protocol (built-ins may be re-registered over)."""
    _PROTOCOL_REGISTRY.pop(name, None)


def registered_protocols() -> tuple[str, ...]:
    """Every runnable protocol name, registration order."""
    return tuple(_PROTOCOL_REGISTRY)


def _known_protocols() -> str:
    return ", ".join(sorted(_PROTOCOL_REGISTRY))


@dataclass
class SwapRequest:
    """One submitted AC2T: its graph, protocol, and lifecycle record."""

    swap_id: int
    graph: SwapGraph
    protocol: str
    arrival_time: float
    config: object | None = None
    fee_budget: FeeBudget | None = None
    crash: CrashPlan | None = None
    driver: ProtocolDriver | None = None
    outcome: SwapOutcome | None = None

    @property
    def completed(self) -> bool:
        return self.outcome is not None


@dataclass
class EngineResult:
    """Everything one engine run produced."""

    outcomes: list[SwapOutcome]
    metrics: EngineMetrics
    by_protocol: dict[str, EngineMetrics]
    requests: list[SwapRequest] = field(repr=False, default_factory=list)
    #: Simulator events executed by :meth:`SwapEngine.run` — the cadence
    #: observability hook behind the eager-mode event-budget pins.
    events_processed: int = 0
    #: Reorgs observed per chain (the Blockchain reorg listeners).
    chain_reorgs: dict[str, int] = field(default_factory=dict)
    #: The adversary's self-report, when a roster was attached.
    adversary: dict | None = None

    def trace(self) -> list[tuple[int, str, str, float, float]]:
        """A compact deterministic fingerprint of the run, for tests:
        ``(swap_id, protocol, decision, started_at, finished_at)``."""
        return [
            (
                request.swap_id,
                request.protocol,
                request.outcome.decision,
                request.outcome.started_at,
                request.outcome.finished_at,
            )
            for request in self.requests
            if request.outcome is not None
        ]


class SwapEngine:
    """Runs many AC2Ts concurrently over one shared simulation.

    Args:
        env: the shared world (typically built by
            :func:`repro.workloads.scenarios.build_multi_scenario`).
        default_protocol: protocol used when :meth:`submit` gets none.
        witness_chain_id: coordinating chain for AC3WN swaps (default:
            the environment's ``witness_chain_id``, else ``"witness"``).
        trusted_witness: shared Trent instance for AC3TW swaps (default:
            one Trent with full-node access to every chain — shared
            across swaps, like the real single-witness deployment).
        eager: if True (the default), drivers are purely event-driven —
            block-mined and participant-recovery hooks plus one timeout
            event per phase deadline, no self-scheduled poll ticks
            (lower observation latency and far fewer simulator events;
            identical safety).  Pass False for A/B runs against the
            historical poll-tick cadence.
        jitter_span: width (seconds) of the deterministic per-swap
            submission jitter applied to fee-budgeted swaps' block-hook
            reactions (None = a quarter of the fastest involved chain's
            block interval, mirroring the old poll cadence; 0 disables).
    """

    def __init__(
        self,
        env: SwapEnvironment,
        default_protocol: str = "ac3wn",
        witness_chain_id: str | None = None,
        trusted_witness: TrustedWitness | None = None,
        eager: bool = True,
        jitter_span: float | None = None,
    ) -> None:
        if default_protocol not in _PROTOCOL_REGISTRY:
            raise ProtocolError(
                f"unknown protocol {default_protocol!r}; "
                f"expected one of: {_known_protocols()}"
            )
        self.env = env
        self.default_protocol = default_protocol
        self.witness_chain_id = witness_chain_id or getattr(
            env, "witness_chain_id", "witness"
        )
        self._trusted_witness = trusted_witness
        self.eager = eager
        self.jitter_span = jitter_span
        self.requests: list[SwapRequest] = []
        self._completed = 0
        #: Streaming metrics: every terminal outcome is folded in as it
        #: finalizes (overall plus a per-protocol slice), so end-of-run
        #: aggregation is one snapshot per accumulator instead of a
        #: re-scan of all outcomes per protocol.  The overall
        #: accumulator also owns the in-flight / peak-concurrency
        #: counters, and :meth:`metrics_window` exposes its sliding
        #: streaming views mid-run.
        self._metrics = MetricsAccumulator()
        self._by_protocol: dict[str, MetricsAccumulator] = {}
        #: Hooks run at launch time, before the driver is built (may
        #: rewrite ``request.config`` — how Byzantine actors corrupt a
        #: swap) and after it is built but before it starts (phase
        #: listeners, eclipse windows).
        self.launch_hooks: list[Callable[[SwapRequest], None]] = []
        self.driver_hooks: list[Callable[[SwapRequest, ProtocolDriver], None]] = []
        #: Hooks run after a request reaches its terminal outcome (the
        #: request's ``outcome`` is set and folded).  This is the
        #: engine-level completion surface service handles resolve on —
        #: it fires for every terminal path, including swaps whose
        #: driver could not even be constructed.
        self.outcome_hooks: list[Callable[[SwapRequest], None]] = []
        #: Reorgs observed per chain over this engine's lifetime (the
        #: Blockchain reorg hook, aggregated — attack observability).
        self.chain_reorgs: dict[str, int] = {}
        for chain_id, chain in env.chains.items():
            self.chain_reorgs[chain_id] = 0

            def count(abandoned: int, adopted: int, chain_id=chain_id) -> None:
                self.chain_reorgs[chain_id] += 1

            chain.add_reorg_listener(count)
        self._adversary = None
        #: Optional flight recorder (see :mod:`repro.obs`).  Every emit
        #: site below guards on ``is not None`` so unobserved runs stay
        #: byte- and time-identical.
        self.collector = None

    def attach_adversary(self, roster) -> None:
        """Attach an :class:`~repro.adversary.AdversaryRoster`: its
        per-swap attack exposure is attributed into every result."""
        self._adversary = roster

    def attach_collector(self, collector) -> None:
        """Attach a :class:`~repro.obs.TraceCollector`: swap lifecycle
        events (arrival/launch, phase transitions, outcomes) are emitted
        for every subsequently launched driver."""
        self.collector = collector

    # -- witness services --------------------------------------------------

    @property
    def trusted_witness(self) -> TrustedWitness:
        """The shared Trent instance (created on first AC3TW swap)."""
        if self._trusted_witness is None:
            self._trusted_witness = TrustedWitness(self.env.chains)
        return self._trusted_witness

    # -- submission --------------------------------------------------------

    def submit(
        self,
        graph: SwapGraph,
        protocol: str | None = None,
        at: float | None = None,
        config: object | None = None,
        fee_budget: FeeBudget | None = None,
        crash: CrashPlan | None = None,
    ) -> SwapRequest:
        """Queue one AC2T for execution at simulation time ``at``.

        Open loop: the arrival fires regardless of how many earlier
        swaps are still in flight.  Returns the request record, whose
        ``outcome`` is populated once the swap reaches a terminal state.

        ``fee_budget`` caps what the swap may spend on fees and arms the
        driver's bump-or-abort rebroadcast policy.  ``crash`` schedules
        a failure injection against one of the swap's participants,
        ``crash.delay`` seconds after the arrival.
        """
        protocol = protocol or self.default_protocol
        entry = _PROTOCOL_REGISTRY.get(protocol)
        if entry is None:
            raise ProtocolError(
                f"unknown protocol {protocol!r}; "
                f"expected one of: {_known_protocols()}"
            )
        if entry.validate is not None:
            # Fail at the submit call site, not inside an arrival event.
            entry.validate(graph)
        sim = self.env.simulator
        arrival = max(sim.now, sim.now if at is None else at)
        request = SwapRequest(
            swap_id=len(self.requests),
            graph=graph,
            protocol=protocol,
            arrival_time=arrival,
            config=config,
            fee_budget=fee_budget,
            crash=crash,
        )
        self.requests.append(request)
        sim.schedule_at(
            arrival,
            lambda: self._launch(request),
            label=f"swap-{request.swap_id} arrival ({protocol})",
        )
        if crash is not None:
            victim = self.env.participant(crash.participant)  # fail fast
            sim.schedule_at(
                arrival + crash.delay,
                victim.crash,
                label=f"swap-{request.swap_id} crash {crash.participant}",
            )
            if crash.down_for is not None:
                sim.schedule_at(
                    arrival + crash.delay + crash.down_for,
                    victim.recover,
                    label=f"swap-{request.swap_id} recover {crash.participant}",
                )
        return request

    def submit_many(
        self,
        traffic: list,
        protocol: str | None = None,
        offset: float = 0.0,
    ) -> list[SwapRequest]:
        """Submit a traffic schedule in one call.

        Accepts :class:`~repro.workloads.scenarios.TrafficItem` entries
        (whose fee budgets and crash plans are honoured) or plain
        ``(arrival_time, graph)`` pairs.

        Pass ``offset=env.simulator.now`` for schedules generated from
        time 0 when the world has already warmed up — otherwise every
        arrival before ``now`` is clamped to ``now`` and the head of the
        schedule degenerates into one simultaneous batch.
        """
        requests = []
        for item in traffic:
            if isinstance(item, TrafficItem):
                requests.append(
                    self.submit(
                        item.graph,
                        protocol=protocol,
                        at=offset + item.at,
                        fee_budget=item.fee_budget,
                        crash=item.crash,
                    )
                )
            else:
                at, graph = item
                requests.append(self.submit(graph, protocol=protocol, at=offset + at))
        return requests

    # -- execution ---------------------------------------------------------

    def _make_driver(self, request: SwapRequest) -> ProtocolDriver:
        return _PROTOCOL_REGISTRY[request.protocol].factory(self, request)

    def _launch(self, request: SwapRequest) -> None:
        collector = self.collector
        if collector is not None:
            collector.emit(
                "swap",
                "launch",
                swap_id=request.swap_id,
                protocol=request.protocol,
                chains=sorted(request.graph.chains_used()),
                fee_cap=(
                    request.fee_budget.cap if request.fee_budget is not None else None
                ),
            )
        for hook in list(self.launch_hooks):
            hook(request)
        try:
            driver = self._make_driver(request)
        except ReproError as exc:
            # A swap the protocol cannot even start (e.g. an
            # unsequenceable Herlihy graph) must not take the other
            # in-flight swaps down with it: record a per-swap failure.
            outcome = SwapOutcome(protocol=request.protocol, graph=request.graph)
            outcome.started_at = outcome.finished_at = self.env.simulator.now
            outcome.decision = "undecided"
            outcome.notes.append(f"driver construction failed: {exc}")
            if request.crash is not None:
                outcome.injected_crash = request.crash.participant
            request.outcome = outcome
            self._completed += 1
            self._fold(request, outcome, completes_flight=False)  # never entered flight
            if collector is not None:
                self._emit_outcome(request, outcome)
            for hook in list(self.outcome_hooks):
                hook(request)
            return
        if request.crash is not None:
            driver.outcome.injected_crash = request.crash.participant
        request.driver = driver
        if collector is not None:
            driver.collector = collector
            driver.trace_swap_id = request.swap_id
        self._metrics.launched()
        driver.on_complete.append(
            lambda outcome, request=request: self._on_complete(request, outcome)
        )
        for hook in list(self.driver_hooks):
            hook(request, driver)
        driver.start()

    def _on_complete(self, request: SwapRequest, outcome: SwapOutcome) -> None:
        request.outcome = outcome
        self._completed += 1
        self._fold(request, outcome, completes_flight=True)
        if self.collector is not None:
            self._emit_outcome(request, outcome)
        for hook in list(self.outcome_hooks):
            hook(request)

    def _emit_outcome(self, request: SwapRequest, outcome: SwapOutcome) -> None:
        """Record a terminal outcome in the trace (collector is attached)."""
        self.collector.emit(
            "swap",
            "outcome",
            swap_id=request.swap_id,
            decision=outcome.decision,
            atomic=outcome.is_atomic,
            latency=outcome.latency,
            fees_paid=outcome.fees_paid,
            priced_out=outcome.priced_out,
            evictions=outcome.evictions,
            fee_bumps=outcome.fee_bumps,
            contracts={
                key: {
                    "chain": record.edge.chain_id,
                    "deployed_at": record.deployed_at,
                    "confirmed_at": record.confirmed_at,
                    "settled_at": record.settled_at,
                    "state": record.final_state,
                }
                for key, record in sorted(outcome.contracts.items())
            },
        )

    def trace_swap_for(self, contract_id: bytes) -> int | None:
        """Which swap owns ``contract_id`` (adversary emit attribution).

        Linear over requests — attacks are rare events, so the scan never
        sits on a hot path; returns None for unknown contracts."""
        if not contract_id:
            return None
        for request in self.requests:
            outcome = (
                request.driver.outcome if request.driver is not None else request.outcome
            )
            if outcome is None:
                continue
            if outcome.coordinator_contract_id == contract_id:
                return request.swap_id
            for record in outcome.contracts.values():
                if record.contract_id == contract_id:
                    return request.swap_id
        return None

    def _fold(
        self, request: SwapRequest, outcome: SwapOutcome, completes_flight: bool
    ) -> None:
        """Fold one terminal outcome into the streaming accumulators."""
        self._metrics.fold(
            outcome, key=request.swap_id, completes_flight=completes_flight
        )
        per_protocol = self._by_protocol.get(request.protocol)
        if per_protocol is None:
            per_protocol = self._by_protocol[request.protocol] = MetricsAccumulator()
        per_protocol.fold(outcome, key=request.swap_id)

    @property
    def in_flight(self) -> int:
        return self._metrics.in_flight

    @property
    def completed(self) -> int:
        """Swaps that reached a terminal outcome so far."""
        return self._completed

    @property
    def max_in_flight(self) -> int:
        """Peak concurrency so far (tracked inside the accumulator)."""
        return self._metrics.max_in_flight

    def metrics_window(self, window: float, end: float | None = None):
        """Streaming service-mode view: commit rate / latency percentiles
        over the swaps that finished in the trailing ``window`` seconds
        (see :meth:`MetricsAccumulator.windowed`).  Callable mid-run."""
        return self._metrics.windowed(window, end=end)

    def run(self, max_events: int = 50_000_000) -> EngineResult:
        """Drive the simulation until every submitted swap terminates.

        The engine never blocks inside a driver: it simply pumps the
        shared event queue; drivers, miners, failure injectors, and
        arrival callbacks all interleave on the simulator clock.
        """
        sim = self.env.simulator
        processed = 0
        while self._completed < len(self.requests):
            if processed >= max_events:
                raise SchedulingError(f"engine exceeded {max_events} events")
            if not sim.step():
                break
            processed += 1
        # A drained queue with unfinished swaps means a world without
        # miners; finalize those drivers from whatever state exists.
        for request in self.requests:
            if request.driver is not None and not request.driver.finished:
                request.driver._finish()
        return self.result(events_processed=processed)

    # -- results -----------------------------------------------------------

    def result(self, events_processed: int = 0) -> EngineResult:
        """Aggregate the completed swaps (callable mid-run as well).

        Every outcome was already folded into the streaming accumulators
        at completion time, so assembly is one snapshot per protocol —
        O(#protocols) snapshots over pre-folded state rather than a
        re-scan of all outcomes per protocol slice.  Snapshots read the
        outcomes by reference, which is what lets the adversary
        attribution pass just above re-stamp attack exposure (and
        re-audit reorged final states) without a re-fold.
        """
        if self._adversary is not None:
            self._adversary.attribute(self.requests)
        outcomes = [r.outcome for r in self.requests if r.outcome is not None]
        protocols = sorted(self._by_protocol)
        overall_name = protocols[0] if len(protocols) == 1 else "mixed"
        by_protocol = {
            protocol: self._by_protocol[protocol].snapshot(protocol=protocol)
            for protocol in protocols
        }
        return EngineResult(
            outcomes=outcomes,
            metrics=self._metrics.snapshot(protocol=overall_name),
            by_protocol=by_protocol,
            requests=list(self.requests),
            events_processed=events_processed,
            chain_reorgs=dict(self.chain_reorgs),
            adversary=(
                self._adversary.report() if self._adversary is not None else None
            ),
        )


# ---------------------------------------------------------------------------
# Built-in protocol registrations
# ---------------------------------------------------------------------------


def _nolan_factory(engine: SwapEngine, request: SwapRequest) -> ProtocolDriver:
    return NolanDriver(
        engine.env,
        request.graph,
        request.config or HerlihyConfig(),
        eager=engine.eager,
        fee_budget=request.fee_budget,
        jitter_span=engine.jitter_span,
    )


def _herlihy_factory(engine: SwapEngine, request: SwapRequest) -> ProtocolDriver:
    return HerlihyDriver(
        engine.env,
        request.graph,
        request.config or HerlihyConfig(),
        eager=engine.eager,
        fee_budget=request.fee_budget,
        jitter_span=engine.jitter_span,
    )


def _ac3tw_factory(engine: SwapEngine, request: SwapRequest) -> ProtocolDriver:
    return AC3TWDriver(
        engine.env,
        request.graph,
        engine.trusted_witness,
        request.config or AC3TWConfig(),
        eager=engine.eager,
        fee_budget=request.fee_budget,
        jitter_span=engine.jitter_span,
    )


def _ac3wn_factory(engine: SwapEngine, request: SwapRequest) -> ProtocolDriver:
    return AC3WNDriver(
        engine.env,
        request.graph,
        request.config or AC3WNConfig(witness_chain_id=engine.witness_chain_id),
        eager=engine.eager,
        fee_budget=request.fee_budget,
        jitter_span=engine.jitter_span,
    )


register_protocol("nolan", _nolan_factory, validate=validate_two_party)
register_protocol("herlihy", _herlihy_factory)
register_protocol("ac3tw", _ac3tw_factory)
register_protocol("ac3wn", _ac3wn_factory)
