"""End-to-end scenario builders: chains + miners + participants + failures.

A scenario assembles everything a protocol driver needs into a
:class:`ScenarioEnvironment` (a :class:`~repro.core.protocol.SwapEnvironment`
plus the miners, network, and failure injector).  Tests, benchmarks and
examples all build their worlds through this module so that setup is
uniform and reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..chain.chain import Blockchain
from ..chain.mempool import Mempool
from ..chain.miner import MinerNode
from ..chain.params import ChainParams, fast_chain
from ..core.evidence import FullReplicaValidator, LightClientValidator
from ..economy import FeeBudget, FeeEstimator, FeePolicy, PriorityMempool
from ..core.graph import AssetEdge, SwapGraph
from ..core.participant import ChainHandle, Participant
from ..core.protocol import SwapEnvironment
from ..errors import InsufficientFundsError, ProtocolError, ValidationError
from ..sim.failures import FailureInjector, FailureSchedule
from ..sim.network import LatencyModel, Network
from ..sim.rng import RngStream
from ..sim.simulator import Simulator
from .graphs import DEFAULT_AMOUNT, participant_keys

DEFAULT_FUNDING = 100_000

#: Evidence-validation strategies a scenario can wire up (Section 4.3).
VALIDATOR_MODES = ("anchor", "full-replica", "light-client")


@dataclass
class ScenarioEnvironment(SwapEnvironment):
    """A fully assembled world: environment plus operational machinery."""

    network: Network | None = None
    miners: dict[str, MinerNode] = field(default_factory=dict)
    injector: FailureInjector | None = None
    witness_chain_id: str = "witness"
    validator_mode: str = "anchor"
    #: Fee-market configuration, set when the world runs PriorityMempools.
    fee_policy: FeePolicy | None = None
    fee_estimators: dict[str, FeeEstimator] = field(default_factory=dict)

    def start_mining(self) -> None:
        for miner in self.miners.values():
            miner.start()

    def apply_failures(self, schedule: FailureSchedule) -> None:
        """Schedule crash/partition windows against this world's nodes."""
        if self.injector is None:
            self.injector = FailureInjector(self.simulator, self.network)
        nodes = dict(self.participants)
        nodes.update(self.miners)
        self.injector.apply(schedule, nodes)

    def warm_up(self, blocks: int = 1) -> None:
        """Advance the simulation until every chain has ``blocks`` blocks.

        Gives each chain a little history so that stable headers exist
        before a protocol starts (mirrors joining mature networks).
        """
        for chain_id, chain in self.chains.items():
            interval = chain.params.block_interval
            self.simulator.run_until_true(
                lambda c=chain: c.height >= blocks,
                timeout=(blocks + 2) * interval * 2,
            )


def _chain_stack(
    simulator: Simulator,
    network: Network,
    params: ChainParams,
    allocations: list,
    fee_policy: FeePolicy | None,
) -> tuple[Blockchain, Mempool, MinerNode, FeeEstimator | None]:
    """One chain's machinery: chain + (priority) mempool + miner (+ estimator)."""
    chain = Blockchain(params, allocations)
    if fee_policy is not None:
        mempool: Mempool = PriorityMempool(chain, fee_policy)
        estimator: FeeEstimator | None = FeeEstimator(chain, fee_policy)
    else:
        mempool = Mempool(chain)
        estimator = None
    miner = MinerNode(simulator, chain, mempool, network=network)
    return chain, mempool, miner, estimator


def build_scenario(
    graph: SwapGraph | None = None,
    chain_ids: list[str] | None = None,
    chain_params: dict[str, ChainParams] | None = None,
    witness_chain_id: str = "witness",
    participants: list[str] | None = None,
    seed: int = 0,
    funding: int = DEFAULT_FUNDING,
    funding_chunks: int = 8,
    validator_mode: str = "anchor",
    block_interval: float = 1.0,
    confirmation_depth: int = 2,
    latency: LatencyModel | None = None,
    fee_policy: FeePolicy | None = None,
) -> ScenarioEnvironment:
    """Build a complete simulation world.

    Args:
        graph: if given, chains and participants are derived from it.
        chain_ids: extra/explicit chain names (the witness chain is always
            added).
        chain_params: overrides per chain id; chains not listed get
            :func:`~repro.chain.params.fast_chain` with the supplied
            ``block_interval`` / ``confirmation_depth``.
        witness_chain_id: the coordinating chain's id.
        participants: explicit participant names (default: from graph).
        seed: master seed for all randomness.
        funding: genesis balance of every participant on every chain.
        funding_chunks: how many UTXOs the funding is split into (more
            chunks allow more concurrent in-flight messages).
        validator_mode: how miners validate foreign-chain evidence —
            "anchor" (relay contracts, the paper's proposal),
            "full-replica", or "light-client" (Section 4.3).
        block_interval / confirmation_depth: defaults for fast chains.
        latency: network latency model (default: deterministic 50 ms).
        fee_policy: when set, every chain runs a fee-market
            :class:`~repro.economy.PriorityMempool` under this policy
            (plus a :class:`~repro.economy.FeeEstimator`); when None,
            mempools are plain FIFO, exactly as before the fee market.

    Returns:
        A ready :class:`ScenarioEnvironment` with mining already started.
    """
    if validator_mode not in VALIDATOR_MODES:
        raise ProtocolError(
            f"validator_mode must be one of {VALIDATOR_MODES}, got {validator_mode!r}"
        )
    simulator = Simulator(seed=seed)
    network = Network(simulator, latency=latency or LatencyModel())

    names: list[str] = list(participants or [])
    wanted_chains: list[str] = list(chain_ids or [])
    if graph is not None:
        names = names or graph.participant_names()
        wanted_chains.extend(sorted(graph.chains_used()))
    if witness_chain_id not in wanted_chains:
        wanted_chains.append(witness_chain_id)
    if not names:
        raise ProtocolError("scenario needs participants (or a graph)")
    # Preserve order, drop duplicates.
    seen: set[str] = set()
    ordered_chains = [c for c in wanted_chains if not (c in seen or seen.add(c))]

    actors = {
        name: Participant(simulator, name, network=network) for name in names
    }

    chains: dict[str, Blockchain] = {}
    mempools: dict[str, Mempool] = {}
    miners: dict[str, MinerNode] = {}
    estimators: dict[str, FeeEstimator] = {}
    for chain_id in ordered_chains:
        params = (chain_params or {}).get(chain_id) or fast_chain(
            chain_id,
            block_interval=block_interval,
            confirmation_depth=confirmation_depth,
        )
        # Split each participant's funding into several UTXOs so that
        # multiple in-flight messages never contend for one coin.
        chunk = max(funding // max(funding_chunks, 1), 1)
        allocations = []
        for actor in actors.values():
            remaining = funding
            while remaining > 0:
                value = min(chunk, remaining)
                allocations.append((actor.address, value))
                remaining -= value
        chain, mempool, miner, estimator = _chain_stack(
            simulator, network, params, allocations, fee_policy
        )
        chains[chain_id] = chain
        mempools[chain_id] = mempool
        miners[chain_id] = miner
        if estimator is not None:
            estimators[chain_id] = estimator
        handle = ChainHandle(chain=chain, mempool=mempool)
        for actor in actors.values():
            actor.join_chain(handle)

    _wire_validators(chains, witness_chain_id, validator_mode)

    env = ScenarioEnvironment(
        simulator=simulator,
        chains=chains,
        mempools=mempools,
        participants=actors,
        network=network,
        miners=miners,
        injector=FailureInjector(simulator, network),
        witness_chain_id=witness_chain_id,
        validator_mode=validator_mode,
        fee_policy=fee_policy,
        fee_estimators=estimators,
    )
    env.start_mining()
    return env


def _wire_validators(
    chains: dict[str, Blockchain], witness_chain_id: str, mode: str
) -> None:
    """Configure Section 4.3 evidence validation for every chain.

    * "anchor": no validator registries; contracts verify self-contained
      relay evidence against the stable headers stored at registration
      (the paper's proposal — fully decentralized).
    * "full-replica": every chain's miners hold full copies of all other
      chains and consult them directly.
    * "light-client": every chain's miners run header-only light nodes of
      all other chains.
    """
    if mode == "anchor":
        return
    for chain_id, chain in chains.items():
        if mode == "full-replica":
            validator = FullReplicaValidator()
            for other_id, other in chains.items():
                if other_id != chain_id:
                    validator.add_chain(other)
        else:  # light-client
            validator = LightClientValidator()
            for other_id, other in chains.items():
                if other_id != chain_id:
                    validator.track(other)
        chain.validators = validator


# ---------------------------------------------------------------------------
# Multi-swap traffic: the workloads the SwapEngine multiplexes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CrashPlan:
    """A per-swap failure injection: crash one participant mid-protocol.

    Attributes:
        participant: the (per-swap namespaced) participant to crash.
        delay: seconds after the swap's arrival at which the crash hits.
        down_for: recovery delay after the crash (None = never recovers).
    """

    participant: str
    delay: float
    down_for: float | None = None


@dataclass(frozen=True)
class TrafficItem:
    """One scheduled swap: arrival time, graph, and optional economics.

    Iterates as ``(at, graph)`` so existing two-element unpacking
    (``for at, graph in traffic``) keeps working; the fee budget and
    crash plan ride along for :meth:`repro.engine.SwapEngine.submit_many`.
    """

    at: float
    graph: SwapGraph
    fee_budget: FeeBudget | None = None
    crash: CrashPlan | None = None

    def __iter__(self):
        yield self.at
        yield self.graph


def poisson_arrivals(
    num_swaps: int, rate: float, stream: RngStream, start: float = 0.0
) -> list[float]:
    """Open-loop Poisson arrival times: ``num_swaps`` events at ``rate``/s.

    Inter-arrival gaps are exponential with mean ``1/rate``, drawn from a
    named deterministic stream, so a traffic schedule is a pure function
    of (seed, stream name, num_swaps, rate).
    """
    if num_swaps < 0:
        raise ProtocolError("num_swaps must be non-negative")
    arrivals: list[float] = []
    now = start
    for _ in range(num_swaps):
        now += stream.expovariate(rate)
        arrivals.append(now)
    return arrivals


def swap_traffic_graphs(
    num_swaps: int,
    chain_ids: list[str],
    participants_per_swap: int = 2,
    amount: int = DEFAULT_AMOUNT,
    prefix: str = "swap",
) -> list[SwapGraph]:
    """Independent AC2T graphs for engine traffic, one per user group.

    Every swap gets its own namespaced participants (``swap0007.a`` …),
    mirroring distinct end-users, so concurrent swaps never contend for
    each other's keys or UTXOs — contention happens where it should, on
    the shared chains and mempools.  Edges form a directed ring over the
    swap's participants; chains are assigned round-robin with a per-swap
    rotation so load spreads across ``chain_ids``.
    """
    if participants_per_swap < 2:
        raise ProtocolError("a swap needs at least two participants")
    if not chain_ids:
        raise ProtocolError("swap traffic needs at least one asset chain")
    graphs: list[SwapGraph] = []
    for index in range(num_swaps):
        names = [
            f"{prefix}{index:04d}.{chr(ord('a') + j)}"
            for j in range(participants_per_swap)
        ]
        keys = participant_keys(names)
        edges = [
            AssetEdge(
                source=names[j],
                recipient=names[(j + 1) % len(names)],
                chain_id=chain_ids[(index + j) % len(chain_ids)],
                amount=amount,
            )
            for j in range(len(names))
        ]
        graphs.append(SwapGraph.build(keys, edges, timestamp=index))
    return graphs


def swap_traffic(
    num_swaps: int,
    rate: float,
    seed: int = 0,
    chain_ids: list[str] | None = None,
    participants_per_swap: int = 2,
    amount: int = DEFAULT_AMOUNT,
    start: float = 0.0,
    prefix: str = "swap",
    crash_rate: float = 0.0,
    crash_window: tuple[float, float] = (1.0, 12.0),
    crash_down_for: float | None = None,
    budget_sampler=None,
) -> list[TrafficItem]:
    """The traffic core: arrivals + graphs + crash plans (+ fee budgets).

    Every traffic generator in this module is a thin parameterization of
    this one assembly.  Each concern draws from its own named RNG stream
    (``workload/poisson-arrivals``, ``workload/crash-injection``,
    ``workload/fee-budgets``) so a schedule is a pure function of its
    arguments and never perturbs the simulation's other randomness.

    ``crash_rate`` marks that fraction of swaps (from an independent
    stream) to crash mid-protocol: a uniformly chosen participant of the
    swap crashes ``uniform(*crash_window)`` seconds after the swap's
    arrival and recovers after ``crash_down_for`` seconds (None = never).
    The injection is surfaced per swap in
    :attr:`~repro.core.protocol.SwapOutcome.injected_crash` and counted
    by the engine's metrics.

    ``budget_sampler`` (optional) draws one
    :class:`~repro.economy.FeeBudget` (or None) per swap from the
    ``workload/fee-budgets`` stream — ``sampler(stream) -> FeeBudget | None``,
    called once per swap in arrival order.
    """
    if not 0.0 <= crash_rate <= 1.0:
        raise ProtocolError("crash_rate must be within [0, 1]")
    chain_ids = chain_ids or ["chain-a", "chain-b"]
    stream = RngStream(seed, "workload/poisson-arrivals")
    arrivals = poisson_arrivals(num_swaps, rate, stream, start=start)
    graphs = swap_traffic_graphs(
        num_swaps,
        chain_ids,
        participants_per_swap=participants_per_swap,
        amount=amount,
        prefix=prefix,
    )
    crashes: list[CrashPlan | None] = [None] * num_swaps
    if crash_rate > 0.0:
        crash_stream = RngStream(seed, "workload/crash-injection")
        for index, graph in enumerate(graphs):
            if crash_stream.random() >= crash_rate:
                continue
            names = graph.participant_names()
            crashes[index] = CrashPlan(
                participant=names[crash_stream.randint(0, len(names) - 1)],
                delay=crash_stream.uniform(*crash_window),
                down_for=crash_down_for,
            )
    budgets: list[FeeBudget | None] = [None] * num_swaps
    if budget_sampler is not None:
        budget_stream = RngStream(seed, "workload/fee-budgets")
        budgets = [budget_sampler(budget_stream) for _ in range(num_swaps)]
    return [
        TrafficItem(at=at, graph=graph, crash=crash, fee_budget=budget)
        for at, graph, crash, budget in zip(arrivals, graphs, crashes, budgets)
    ]


def poisson_swap_traffic(
    num_swaps: int,
    rate: float,
    seed: int = 0,
    chain_ids: list[str] | None = None,
    participants_per_swap: int = 2,
    amount: int = DEFAULT_AMOUNT,
    start: float = 0.0,
    prefix: str = "swap",
    crash_rate: float = 0.0,
    crash_window: tuple[float, float] = (1.0, 12.0),
    crash_down_for: float | None = None,
    fee_budget: FeeBudget | None = None,
) -> list[TrafficItem]:
    """Homogeneous Poisson traffic: :func:`swap_traffic` with at most one
    swap class (every swap carries ``fee_budget``, or none at all).

    Items iterate as ``(arrival_time, graph)`` pairs, so callers that
    only care about timing unpack them as before.
    """
    return swap_traffic(
        num_swaps,
        rate,
        seed=seed,
        chain_ids=chain_ids,
        participants_per_swap=participants_per_swap,
        amount=amount,
        start=start,
        prefix=prefix,
        crash_rate=crash_rate,
        crash_window=crash_window,
        crash_down_for=crash_down_for,
        budget_sampler=(None if fee_budget is None else (lambda stream: fee_budget)),
    )


def build_multi_scenario(
    graphs: list[SwapGraph],
    witness_chain_id: str = "witness",
    chain_params: dict[str, ChainParams] | None = None,
    seed: int = 0,
    funding: int = DEFAULT_FUNDING,
    funding_chunks: int = 4,
    validator_mode: str = "anchor",
    block_interval: float = 1.0,
    confirmation_depth: int = 2,
    latency: LatencyModel | None = None,
    fee_policy: FeePolicy | None = None,
    extra_participants: list[str] | None = None,
    extra_funding_chunks: int = 64,
) -> ScenarioEnvironment:
    """Build one shared world serving *many* AC2T graphs at once.

    Unlike :func:`build_scenario` (one graph, every participant funded on
    every chain), this funds each swap's participants only on the chains
    their swap touches plus the witness chain — with hundreds of swaps,
    per-swap funding keeps the genesis blocks (and coin selection) small.

    ``fee_policy`` switches every chain to a fee-market
    :class:`~repro.economy.PriorityMempool` (see :func:`build_scenario`).
    ``extra_participants`` are funded on *every* chain with
    ``extra_funding_chunks`` UTXOs each — whales for fee-shock bursts
    (:func:`schedule_fee_shock`) need many spendable coins at once.
    """
    if validator_mode not in VALIDATOR_MODES:
        raise ProtocolError(
            f"validator_mode must be one of {VALIDATOR_MODES}, got {validator_mode!r}"
        )
    if not graphs:
        raise ProtocolError("a multi-swap scenario needs at least one graph")
    simulator = Simulator(seed=seed)
    network = Network(simulator, latency=latency or LatencyModel())

    ordered_chains: list[str] = []
    seen: set[str] = set()
    for graph in graphs:
        for chain_id in sorted(graph.chains_used()):
            if chain_id not in seen:
                seen.add(chain_id)
                ordered_chains.append(chain_id)
    if witness_chain_id not in seen:
        ordered_chains.append(witness_chain_id)

    # Which chains each participant needs funds and access on.
    chains_of: dict[str, list[str]] = {}
    for graph in graphs:
        graph_chains = sorted(graph.chains_used() | {witness_chain_id})
        for name in graph.participant_names():
            if name in chains_of:
                raise ProtocolError(
                    f"participant {name!r} appears in more than one graph; "
                    f"namespace traffic participants per swap"
                )
            chains_of[name] = graph_chains
    for name in extra_participants or []:
        if name in chains_of:
            raise ProtocolError(f"extra participant {name!r} collides with traffic")
        chains_of[name] = list(ordered_chains)

    actors = {
        name: Participant(simulator, name, network=network)
        for name in sorted(chains_of)
    }

    chains: dict[str, Blockchain] = {}
    mempools: dict[str, Mempool] = {}
    miners: dict[str, MinerNode] = {}
    estimators: dict[str, FeeEstimator] = {}
    chunk = max(funding // max(funding_chunks, 1), 1)
    extra = set(extra_participants or [])
    extra_chunk = max(funding // max(extra_funding_chunks, 1), 1)
    for chain_id in ordered_chains:
        params = (chain_params or {}).get(chain_id) or fast_chain(
            chain_id,
            block_interval=block_interval,
            confirmation_depth=confirmation_depth,
        )
        allocations = []
        for name in sorted(chains_of):
            if chain_id not in chains_of[name]:
                continue
            remaining = funding
            piece = extra_chunk if name in extra else chunk
            while remaining > 0:
                value = min(piece, remaining)
                allocations.append((actors[name].address, value))
                remaining -= value
        chain, mempool, miner, estimator = _chain_stack(
            simulator, network, params, allocations, fee_policy
        )
        chains[chain_id] = chain
        mempools[chain_id] = mempool
        miners[chain_id] = miner
        if estimator is not None:
            estimators[chain_id] = estimator
        handle = ChainHandle(chain=chain, mempool=mempool)
        for name, actor in actors.items():
            if chain_id in chains_of[name]:
                actor.join_chain(handle)

    _wire_validators(chains, witness_chain_id, validator_mode)

    env = ScenarioEnvironment(
        simulator=simulator,
        chains=chains,
        mempools=mempools,
        participants=actors,
        network=network,
        miners=miners,
        injector=FailureInjector(simulator, network),
        witness_chain_id=witness_chain_id,
        validator_mode=validator_mode,
        fee_policy=fee_policy,
        fee_estimators=estimators,
    )
    env.start_mining()
    return env


# ---------------------------------------------------------------------------
# Congestion workloads: oversubscribed traffic under a fee market
# ---------------------------------------------------------------------------

#: A price-insensitive user: pays the floor rate, barely bumps, small cap.
LOW_FEE_BUDGET = FeeBudget(cap=60, fee_rate=1, bump_factor=2.0, max_bumps=1)

#: A price-following user: asks the estimator, bumps aggressively.
HIGH_FEE_BUDGET = FeeBudget(cap=4000, fee_rate=None, bump_factor=2.0, max_bumps=4)


def congestion_swap_traffic(
    num_swaps: int,
    rate: float,
    seed: int = 0,
    chain_ids: list[str] | None = None,
    participants_per_swap: int = 2,
    amount: int = DEFAULT_AMOUNT,
    start: float = 0.0,
    prefix: str = "swap",
    low_fee_share: float = 0.5,
    low_budget: FeeBudget | None = None,
    high_budget: FeeBudget | None = None,
    crash_rate: float = 0.0,
    crash_window: tuple[float, float] = (1.0, 12.0),
    crash_down_for: float | None = None,
) -> list[TrafficItem]:
    """Poisson traffic with heterogeneous per-swap fee budgets.

    Each swap independently draws a budget class from its own RNG
    stream: with probability ``low_fee_share`` the price-insensitive
    :data:`LOW_FEE_BUDGET` (or ``low_budget``), otherwise the
    price-following :data:`HIGH_FEE_BUDGET` (or ``high_budget``).  Under
    an oversubscribed arrival rate the low class is what congestion
    prices out — the acceptance scenario of the fee-market subsystem.
    """
    if not 0.0 <= low_fee_share <= 1.0:
        raise ProtocolError("low_fee_share must be within [0, 1]")
    low = low_budget or LOW_FEE_BUDGET
    high = high_budget or HIGH_FEE_BUDGET
    return swap_traffic(
        num_swaps,
        rate,
        seed=seed,
        chain_ids=chain_ids,
        participants_per_swap=participants_per_swap,
        amount=amount,
        start=start,
        prefix=prefix,
        crash_rate=crash_rate,
        crash_window=crash_window,
        crash_down_for=crash_down_for,
        budget_sampler=(
            lambda stream: low if stream.random() < low_fee_share else high
        ),
    )


def schedule_fee_shock(
    env: ScenarioEnvironment,
    chain_id: str,
    at: float,
    count: int = 32,
    fee_rate: int = 8,
    whale: str = "whale",
) -> None:
    """Schedule a fee-shock burst: ``count`` high-fee transfers at ``at``.

    The ``whale`` participant (fund it via ``build_multi_scenario``'s
    ``extra_participants``) floods ``chain_id`` with self-transfers
    paying ``fee_rate`` per weight unit, displacing cheaper pending
    messages — the demand spike that stress-tests bump-or-abort.
    """
    actor = env.participant(whale)
    policy = getattr(env.mempools[chain_id], "policy", None)
    weight = policy.transfer_weight if policy is not None else 1
    fee = max(env.chain(chain_id).params.fees.transfer, fee_rate * weight)

    def burst() -> None:
        for _ in range(count):
            try:
                actor.transfer(chain_id, actor.address, amount=1, fee=fee)
            except (InsufficientFundsError, ValidationError):
                break  # out of spendable coins or out-priced: stop early

    env.simulator.schedule_at(at, burst, label=f"fee shock on {chain_id}")


def fund_edges(env: ScenarioEnvironment, graph: SwapGraph) -> None:
    """Sanity-check that every edge's source can cover its amount."""
    for edge in graph.edges:
        actor = env.participant(edge.source)
        balance = actor.balance_on(edge.chain_id)
        fee = env.chain(edge.chain_id).params.fees.deploy
        if balance < edge.amount + fee:
            raise ProtocolError(
                f"{edge.source} holds {balance} on {edge.chain_id}, needs "
                f"{edge.amount + fee}"
            )
