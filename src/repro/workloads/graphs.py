"""AC2T graph generators: the workloads the evaluation sweeps over.

Generators produce :class:`~repro.core.graph.SwapGraph` instances with
controlled structure: the two-party swap of Figure 4, directed cycles and
paths (whose diameter drives Figure 10's x-axis), the cyclic and
disconnected supply-chain graphs of Figure 7, complete digraphs, and
seeded random graphs for property testing.
"""

from __future__ import annotations

from ..crypto.keys import KeyPair, PublicKey
from ..errors import GraphError
from ..sim.rng import RngStream
from ..core.graph import AssetEdge, SwapGraph

DEFAULT_AMOUNT = 100


def participant_keys(names: list[str]) -> dict[str, PublicKey]:
    """Deterministic identities for a list of participant names."""
    return {
        name: KeyPair.from_seed(f"participant/{name}").public_key for name in names
    }


def _names(n: int) -> list[str]:
    if n < 1:
        raise GraphError("need at least one participant")
    return [f"p{i:02d}" for i in range(n)]


def two_party_swap(
    chain_a: str = "chain-a",
    chain_b: str = "chain-b",
    amount_a: int = DEFAULT_AMOUNT,
    amount_b: int = DEFAULT_AMOUNT,
    names: tuple[str, str] = ("alice", "bob"),
    timestamp: int = 0,
) -> SwapGraph:
    """Figure 4: Alice swaps X on one chain for Bob's Y on another."""
    alice, bob = names
    keys = participant_keys([alice, bob])
    return SwapGraph.build(
        keys,
        [
            AssetEdge(alice, bob, chain_a, amount_a),
            AssetEdge(bob, alice, chain_b, amount_b),
        ],
        timestamp=timestamp,
    )


def directed_cycle(
    n: int,
    chain_ids: list[str] | None = None,
    amount: int = DEFAULT_AMOUNT,
    timestamp: int = 0,
) -> SwapGraph:
    """A ring p0 → p1 → … → p(n-1) → p0; ``Diam = n``.

    Rings are the canonical diameter-scaling workload for Figure 10: a
    ring of ``n`` participants has diameter exactly ``n``.
    """
    names = _names(n)
    keys = participant_keys(names)
    edges = []
    for i, name in enumerate(names):
        nxt = names[(i + 1) % n]
        chain = chain_ids[i % len(chain_ids)] if chain_ids else f"chain-{i}"
        edges.append(AssetEdge(name, nxt, chain, amount))
    return SwapGraph.build(keys, edges, timestamp=timestamp)


def bidirectional_path(
    n: int,
    chain_ids: list[str] | None = None,
    amount: int = DEFAULT_AMOUNT,
    timestamp: int = 0,
) -> SwapGraph:
    """p0 ⇄ p1 ⇄ … ⇄ p(n-1): each adjacent pair swaps; ``Diam = max(n-1, 2)``."""
    if n < 2:
        raise GraphError("a path needs at least two participants")
    names = _names(n)
    keys = participant_keys(names)
    edges = []
    for i in range(n - 1):
        chain_fwd = chain_ids[(2 * i) % len(chain_ids)] if chain_ids else f"chain-{2 * i}"
        chain_bwd = (
            chain_ids[(2 * i + 1) % len(chain_ids)] if chain_ids else f"chain-{2 * i + 1}"
        )
        edges.append(AssetEdge(names[i], names[i + 1], chain_fwd, amount))
        edges.append(AssetEdge(names[i + 1], names[i], chain_bwd, amount))
    return SwapGraph.build(keys, edges, timestamp=timestamp)


def figure7a_cyclic(
    chain_ids: list[str] | None = None,
    amount: int = DEFAULT_AMOUNT,
    timestamp: int = 0,
) -> SwapGraph:
    """Figure 7a: a cyclic graph that stays cyclic after removing any
    vertex — two overlapping directed triangles on four vertices.

    Herlihy's single-leader protocol cannot execute it; AC3WN can.
    """
    names = ["a", "b", "c", "d"]
    keys = participant_keys(names)

    def chain(i: int) -> str:
        return chain_ids[i % len(chain_ids)] if chain_ids else f"chain-{i}"

    edges = [
        AssetEdge("a", "b", chain(0), amount),
        AssetEdge("b", "c", chain(1), amount),
        AssetEdge("c", "a", chain(2), amount),
        AssetEdge("b", "d", chain(3), amount),
        AssetEdge("d", "c", chain(4), amount),
        AssetEdge("c", "b", chain(5), amount),
    ]
    return SwapGraph.build(keys, edges, timestamp=timestamp)


def figure7b_disconnected(
    chain_ids: list[str] | None = None,
    amount: int = DEFAULT_AMOUNT,
    timestamp: int = 0,
) -> SwapGraph:
    """Figure 7b: two disjoint two-party swaps agreed as ONE AC2T.

    Supply-chain settlements batch unrelated transfers atomically; no
    path connects the components, so leader-based protocols fail while
    AC3WN commits or aborts the whole batch.
    """
    names = ["a", "b", "c", "d"]
    keys = participant_keys(names)

    def chain(i: int) -> str:
        return chain_ids[i % len(chain_ids)] if chain_ids else f"chain-{i}"

    edges = [
        AssetEdge("a", "b", chain(0), amount),
        AssetEdge("b", "a", chain(1), amount),
        AssetEdge("c", "d", chain(2), amount),
        AssetEdge("d", "c", chain(3), amount),
    ]
    return SwapGraph.build(keys, edges, timestamp=timestamp)


def complete_digraph(
    n: int,
    chain_ids: list[str] | None = None,
    amount: int = DEFAULT_AMOUNT,
    timestamp: int = 0,
) -> SwapGraph:
    """Every ordered pair trades: ``n·(n-1)`` contracts, ``Diam = 2``."""
    names = _names(n)
    keys = participant_keys(names)
    edges = []
    i = 0
    for src in names:
        for dst in names:
            if src == dst:
                continue
            chain = chain_ids[i % len(chain_ids)] if chain_ids else f"chain-{i}"
            edges.append(AssetEdge(src, dst, chain, amount))
            i += 1
    return SwapGraph.build(keys, edges, timestamp=timestamp)


def random_graph(
    n: int,
    edge_probability: float,
    rng: RngStream,
    chain_ids: list[str] | None = None,
    amount: int = DEFAULT_AMOUNT,
    timestamp: int = 0,
) -> SwapGraph:
    """A seeded Erdős–Rényi digraph (at least one edge guaranteed)."""
    names = _names(n)
    keys = participant_keys(names)
    edges = []
    i = 0
    for src in names:
        for dst in names:
            if src == dst:
                continue
            if rng.random() < edge_probability:
                chain = chain_ids[i % len(chain_ids)] if chain_ids else f"chain-{i}"
                edges.append(AssetEdge(src, dst, chain, amount))
                i += 1
    if not edges:
        src, dst = names[0], names[-1] if n > 1 else None
        if dst is None:
            raise GraphError("cannot build a random graph on one participant")
        chain = chain_ids[0] if chain_ids else "chain-0"
        edges.append(AssetEdge(src, dst, chain, amount))
    return SwapGraph.build(keys, edges, timestamp=timestamp)


def ring_with_diameter(
    diameter: int,
    chain_ids: list[str] | None = None,
    amount: int = DEFAULT_AMOUNT,
    timestamp: int = 0,
) -> SwapGraph:
    """A graph whose ``Diam(D)`` equals ``diameter`` exactly (a ring).

    Figure 10 sweeps the diameter from 2 upward; a directed ring of
    ``diameter`` participants delivers each point of the sweep.
    """
    if diameter < 2:
        raise GraphError("the smallest AC2T graph has diameter 2")
    return directed_cycle(diameter, chain_ids=chain_ids, amount=amount, timestamp=timestamp)
