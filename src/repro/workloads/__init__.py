"""Workload generators and scenario builders for tests, benches, examples."""

from .graphs import (
    bidirectional_path,
    complete_digraph,
    directed_cycle,
    figure7a_cyclic,
    figure7b_disconnected,
    participant_keys,
    random_graph,
    ring_with_diameter,
    two_party_swap,
)
from .scenarios import (
    DEFAULT_FUNDING,
    VALIDATOR_MODES,
    ScenarioEnvironment,
    build_scenario,
    fund_edges,
)

__all__ = [
    "DEFAULT_FUNDING",
    "VALIDATOR_MODES",
    "ScenarioEnvironment",
    "bidirectional_path",
    "build_scenario",
    "complete_digraph",
    "directed_cycle",
    "figure7a_cyclic",
    "figure7b_disconnected",
    "fund_edges",
    "participant_keys",
    "random_graph",
    "ring_with_diameter",
    "two_party_swap",
]
