"""A fee-priority mempool: block space as a priced, finite resource.

:class:`PriorityMempool` extends the FIFO :class:`~repro.chain.mempool.Mempool`
with the economics real permissionless chains run on:

* **fee-rate ordering** — miners take the highest fee rate first;
* **capacity + eviction** — the pool holds at most
  ``policy.capacity_weight`` weight units; when full, the cheapest
  pending messages are evicted to admit a better-paying one (and a
  message cheaper than everything pending is rejected outright);
* **min-relay floor** — messages below ``policy.min_relay_fee_rate``
  never enter;
* **replace-by-fee** — a message spending the same funding outpoints as
  a pending one displaces it iff it improves the fee rate by
  ``policy.rbf_bump`` and pays strictly more absolute fee.

Under ``FeePolicy.unlimited_fifo()`` every economic rule is disabled and
the pool reproduces the plain FIFO mempool exactly — the compatibility
baseline the engine's determinism tests pin.

Everything is deterministic: ties in fee rate are broken by submission
sequence (first-seen wins), so a seeded simulation replays bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..chain.chain import Blockchain
from ..chain.mempool import Mempool
from ..chain.messages import CallMessage, ChainMessage, DeployMessage, TransferMessage
from ..chain.transaction import OutPoint
from ..errors import FeeTooLowError, ValidationError
from .policy import FeePolicy


@dataclass
class MempoolEntry:
    """Bookkeeping for one pending message."""

    message: ChainMessage
    fee: int
    weight: int
    seq: int
    spends: tuple[OutPoint, ...]

    @property
    def fee_rate(self) -> float:
        return self.fee / self.weight


class PriorityMempool(Mempool):
    """Fee-market mempool for one chain (see module docstring)."""

    def __init__(self, chain: Blockchain, policy: FeePolicy | None = None) -> None:
        super().__init__(chain)
        self.policy = policy or FeePolicy()
        self._meta: dict[bytes, MempoolEntry] = {}
        self._spends: dict[OutPoint, bytes] = {}
        self._weight = 0
        self._seq = 0
        self.evicted = 0
        self.replaced = 0
        self.rejected_fee = 0

    # -- introspection -------------------------------------------------------

    @property
    def pending_weight(self) -> int:
        """Total weight currently pending."""
        return self._weight

    def entry(self, message_id: bytes) -> MempoolEntry | None:
        return self._meta.get(message_id)

    def min_pending_fee_rate(self) -> float | None:
        """The cheapest pending fee rate (the eviction waterline)."""
        if not self._meta or self.policy.fifo:
            return None
        return min(entry.fee_rate for entry in self._meta.values())

    # -- fee extraction ------------------------------------------------------

    def _fee_of(self, message: ChainMessage) -> int:
        if isinstance(message, (DeployMessage, CallMessage)):
            return message.fee
        if isinstance(message, TransferMessage):
            # Transfer fee = inputs − outputs, read off the head state.
            # Inputs spent by still-pending messages are invisible there;
            # fall back to the chain's flat transfer fee for those.
            utxos = self.chain.state_at().utxos
            total_in = 0
            for inp in message.tx.inputs:
                if inp.outpoint not in utxos:
                    return self.chain.params.fees.transfer
                total_in += utxos.get(inp.outpoint).value
            total_out = sum(out.value for out in message.tx.outputs)
            return max(total_in - total_out, 0)
        return 0

    def _spends_of(self, message: ChainMessage) -> tuple[OutPoint, ...]:
        if isinstance(message, (DeployMessage, CallMessage)):
            return tuple(inp.outpoint for inp in message.inputs)
        if isinstance(message, TransferMessage):
            return tuple(inp.outpoint for inp in message.tx.inputs)
        return ()

    # -- admission -----------------------------------------------------------

    def submit(self, message: ChainMessage) -> bytes:
        """Admit ``message`` under the fee-market rules; returns its id.

        Beyond the base checks, enforces (unless ``policy.fifo``):
        min-relay fee rate, replace-by-fee on conflicting spends, and
        capacity eviction.  Economic rejections raise
        :class:`~repro.errors.FeeTooLowError` and count in
        ``rejected_fee`` (and the base ``rejected`` total).
        """
        if self.policy.fifo:
            return super().submit(message)

        entry = MempoolEntry(
            message=message,
            fee=self._fee_of(message),
            weight=self.policy.weight_of(message),
            seq=self._seq,
            spends=self._spends_of(message),
        )

        # Base validity first (duplicates, inclusion, light validation).
        # Run the checks without inserting so the economic rules below
        # decide admission; base bookkeeping counts rejections.
        message_id = self._base_checks(message)

        if entry.fee_rate < self.policy.min_relay_fee_rate:
            self._reject_fee(
                f"fee rate {entry.fee_rate:.3f} below min relay "
                f"{self.policy.min_relay_fee_rate}"
            )

        conflicts = sorted(
            {self._spends[op] for op in entry.spends if op in self._spends}
        )
        if conflicts:
            self._check_rbf(entry, conflicts)

        self._enforce_capacity(entry, exempt=set(conflicts))

        collector = self.collector
        for mid in conflicts:
            self._remove(mid)
            self.replaced += 1
            if collector is not None:
                collector.emit(
                    "mempool",
                    "rbf",
                    chain_id=self.chain.params.chain_id,
                    replaced=mid.hex()[:16],
                    new_fee=entry.fee,
                )
            self._notify_eviction(mid)

        self._seq += 1
        self._pending[message_id] = message
        self._meta[message_id] = entry
        self._weight += entry.weight
        for op in entry.spends:
            self._spends[op] = message_id
        if collector is not None:
            collector.emit(
                "mempool",
                "submit",
                chain_id=self.chain.params.chain_id,
                msg=message.kind,
                fee=entry.fee,
                weight=entry.weight,
                pending=len(self._pending),
            )
        return message_id

    def _base_checks(self, message: ChainMessage) -> bytes:
        message_id = message.message_id()
        if message_id in self._pending:
            self.rejected += 1
            self.rejected_duplicate += 1
            raise ValidationError("message already pending")
        if self.chain.find_message(message_id) is not None:
            self.rejected += 1
            self.rejected_duplicate += 1
            raise ValidationError("message already included in the chain")
        try:
            self._light_validate(message)
        except ValidationError:
            self.rejected += 1
            self.rejected_invalid += 1
            raise
        return message_id

    def _reject_fee(self, reason: str) -> None:
        self.rejected += 1
        self.rejected_fee += 1
        if self.collector is not None:
            self.collector.emit(
                "mempool",
                "reject",
                chain_id=self.chain.params.chain_id,
                reason=reason,
            )
        raise FeeTooLowError(reason)

    def _check_rbf(self, entry: MempoolEntry, conflicts: list[bytes]) -> None:
        best_rate = max(self._meta[mid].fee_rate for mid in conflicts)
        best_fee = max(self._meta[mid].fee for mid in conflicts)
        if entry.fee_rate < best_rate * self.policy.rbf_bump or entry.fee <= best_fee:
            self._reject_fee(
                f"replacement fee rate {entry.fee_rate:.3f} does not improve "
                f"{best_rate:.3f} by the required x{self.policy.rbf_bump}"
            )

    def _enforce_capacity(self, entry: MempoolEntry, exempt: set[bytes]) -> None:
        cap = self.policy.capacity_weight
        if cap is None:
            return
        # Weight after the conflicting entries (about to be replaced) go.
        projected = self._weight - sum(self._meta[mid].weight for mid in exempt)
        if projected + entry.weight <= cap:
            return
        # Evict cheapest-first (newest evicted first on rate ties) until
        # the newcomer fits — unless the newcomer is itself the cheapest.
        victims = sorted(
            (e for mid, e in self._meta.items() if mid not in exempt),
            key=lambda e: (e.fee_rate, -e.seq),
        )
        planned: list[bytes] = []
        for victim in victims:
            if projected + entry.weight <= cap:
                break
            if victim.fee_rate >= entry.fee_rate:
                self._reject_fee(
                    f"mempool full and fee rate {entry.fee_rate:.3f} does not "
                    f"beat the cheapest pending ({victim.fee_rate:.3f})"
                )
            planned.append(victim.message.message_id())
            projected -= victim.weight
        if projected + entry.weight > cap:
            self._reject_fee("message heavier than the whole mempool capacity")
        for mid in planned:
            self._remove(mid)
            self.evicted += 1
            if self.collector is not None:
                # ``pending`` rides along so depth-watching sinks (the
                # saturation alert rule's hysteresis) see the pool drain
                # without waiting for the next submit.
                self.collector.emit(
                    "mempool",
                    "evict",
                    chain_id=self.chain.params.chain_id,
                    evicted=mid.hex()[:16],
                    pending=len(self._pending),
                )
            self._notify_eviction(mid)

    # -- removal -------------------------------------------------------------

    def _remove(self, message_id: bytes) -> None:
        entry = self._meta.pop(message_id, None)
        self._pending.pop(message_id, None)
        if entry is None:
            return
        self._weight -= entry.weight
        for op in entry.spends:
            if self._spends.get(op) == message_id:
                del self._spends[op]

    # -- block building ------------------------------------------------------

    def _priority_order(self) -> list[bytes]:
        """Pending ids, best first: fee rate desc, then submission order."""
        return sorted(
            self._meta,
            key=lambda mid: (-self._meta[mid].fee_rate, self._meta[mid].seq),
        )

    def take(self, limit: int) -> list[ChainMessage]:
        """Remove and return up to ``limit`` messages, best fee rate first."""
        if self.policy.fifo:
            return super().take(limit)
        batch: list[ChainMessage] = []
        for mid in self._priority_order()[:limit]:
            batch.append(self._meta[mid].message)
            self._remove(mid)
        return batch

    def take_block(
        self, limit: int, weight_budget: int | None = None, exclude=None
    ) -> list[ChainMessage]:
        """Fee-greedy block template within the block-space budget.

        Scans pending messages in priority order, including each one
        that still fits the remaining weight budget (greedy knapsack).
        Skipped messages stay pending for later blocks, as do messages
        matched by a censoring miner's ``exclude`` predicate — censored
        messages never consume template capacity or block space.
        """
        if self.policy.fifo:
            return super().take_block(limit, weight_budget, exclude)
        budget = (
            weight_budget
            if weight_budget is not None
            else self.policy.block_weight_budget
        )
        if budget is None:
            if exclude is None:
                return self.take(limit)
            batch = [
                self._meta[mid].message
                for mid in self._priority_order()
                if not exclude(self._meta[mid].message)
            ][:limit]
            for message in batch:
                self._remove(message.message_id())
            return batch
        batch: list[ChainMessage] = []
        used = 0
        for mid in self._priority_order():
            if len(batch) >= limit:
                break
            entry = self._meta[mid]
            if exclude is not None and exclude(entry.message):
                continue
            if used + entry.weight > budget:
                continue
            used += entry.weight
            batch.append(entry.message)
        for message in batch:
            self._remove(message.message_id())
        return batch

    def requeue(self, messages: list[ChainMessage]) -> None:
        """Put messages back after a failed block build (rare path)."""
        if self.policy.fifo:
            super().requeue(messages)
            return
        for message in messages:
            message_id = message.message_id()
            if message_id in self._meta:
                continue
            entry = MempoolEntry(
                message=message,
                fee=self._fee_of(message),
                weight=self.policy.weight_of(message),
                seq=self._seq,
                spends=self._spends_of(message),
            )
            self._seq += 1
            self._pending[message_id] = message
            self._meta[message_id] = entry
            self._weight += entry.weight
            for op in entry.spends:
                self._spends[op] = message_id

    def drop_included(self) -> int:
        """Drop pending messages that already made it into the chain."""
        included = [
            mid for mid in self._pending if self.chain.find_message(mid) is not None
        ]
        for mid in included:
            self._remove(mid)
        return len(included)
