"""Per-chain fee-rate estimation from recent blocks.

A :class:`FeeEstimator` watches one chain through its on-block hook and
answers "what fee rate buys inclusion right now?" the way real wallets
do: from the fee rates of recently *included* messages.

The signal is block fullness.  While recent blocks leave block space
unused, the min-relay floor clears; once they run near the block-space
budget, inclusion is an auction and the estimate climbs to a percentile
of recently included fee rates (plus one unit to outbid the marginal
message).  Everything is a pure function of the observed block sequence,
so estimates are exactly as deterministic as the chain that produced
them.
"""

from __future__ import annotations

from collections import deque

from ..chain.block import Block
from ..chain.chain import Blockchain
from .policy import FeePolicy

#: A block using at least this fraction of its weight budget is "full".
FULLNESS_THRESHOLD = 0.9


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


class FeeEstimator:
    """Estimates the going fee rate on one chain (see module docstring).

    Args:
        chain: the chain to watch (subscribes to its block hook).
        policy: the chain's fee policy (weights + block budget).
        window: how many recent blocks inform the estimate.
        percentile: which percentile of included fee rates to quote under
            congestion (higher = more conservative, faster inclusion).
    """

    def __init__(
        self,
        chain: Blockchain,
        policy: FeePolicy | None = None,
        window: int = 8,
        percentile: float = 60.0,
    ) -> None:
        if window < 1:
            raise ValueError("window must be at least 1")
        if not 0.0 <= percentile <= 100.0:
            raise ValueError("percentile must be within [0, 100]")
        self.chain = chain
        self.policy = policy or FeePolicy()
        self.window = window
        self.percentile = percentile
        self.blocks_observed = 0
        #: (used_weight, sorted fee rates) of the last ``window`` blocks.
        self._recent: deque[tuple[int, tuple[float, ...]]] = deque(maxlen=window)
        chain.add_block_listener(self._observe)

    def close(self) -> None:
        """Detach from the chain's block hook."""
        self.chain.remove_block_listener(self._observe)

    # -- observation ---------------------------------------------------------

    def _observe(self, block: Block) -> None:
        receipts = self.chain.state_at(block.block_id()).receipts
        used = 0
        rates: list[float] = []
        for message in block.messages:
            weight = self.policy.weight_of(message)
            used += weight
            receipt = receipts.get(message.message_id())
            if receipt is not None and receipt.fee_paid > 0:
                rates.append(receipt.fee_paid / weight)
        self.blocks_observed += 1
        self._recent.append((used, tuple(sorted(rates))))

    # -- estimation ----------------------------------------------------------

    def _floor(self) -> int:
        return max(self.policy.min_relay_fee_rate, 1)

    def congestion(self) -> float:
        """Fraction of recent blocks that ran (near) full of block space."""
        budget = self.policy.block_weight_budget
        if budget is None or not self._recent:
            return 0.0
        full = sum(
            1 for used, _ in self._recent if used >= FULLNESS_THRESHOLD * budget
        )
        return full / len(self._recent)

    def estimate(self) -> int:
        """The fee rate (fee per weight unit) to attach right now.

        Uncongested chains clear at the relay floor; congested ones
        quote the configured percentile of recently included fee rates,
        plus one unit to outbid the marginal message.
        """
        if self.congestion() < 0.5:
            return self._floor()
        rates = sorted(
            rate for _, block_rates in self._recent for rate in block_rates
        )
        if not rates:
            return self._floor()
        rank = max(1, _ceil_div(int(len(rates) * self.percentile), 100))
        quoted = rates[min(rank, len(rates)) - 1]
        return max(self._floor(), int(quoted) + 1)
