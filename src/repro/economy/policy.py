"""Fee-market configuration: block space, relay rules, and swap budgets.

The paper's cost model (Section 5 / Table 1) prices AC2T protocols by
the messages they publish, which only bites when block space is scarce.
This module defines the knobs that make it scarce:

* :class:`FeePolicy` — one chain's economic consensus: message weights,
  block-space budget, mempool capacity, min-relay fee rate, and the
  replace-by-fee rule.  Attached to a
  :class:`~repro.economy.mempool.PriorityMempool`.
* :class:`FeeBudget` — one *swap's* willingness to pay: a total fee cap
  plus the bump-or-abort rebroadcast parameters protocol drivers apply
  when their messages are evicted.

Weights are the simulation's gas: a deploy carries contract code and
constructor arguments, a call carries evidence payloads, a transfer is
the unit.  A message's *fee rate* is ``fee / weight`` — the quantity
miners maximize and mempools order by.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..chain.messages import CallMessage, ChainMessage, DeployMessage
from ..errors import FeeError


@dataclass(frozen=True)
class FeePolicy:
    """One chain's fee-market rules.

    Attributes:
        block_weight_budget: block space per block, in weight units
            (None = unlimited — block building falls back to the
            message-count cap alone).
        capacity_weight: mempool capacity, in weight units (None =
            unlimited, nothing is ever evicted).
        min_relay_fee_rate: lowest fee rate (fee per weight unit) the
            mempool relays; cheaper messages are rejected at submit.
        rbf_bump: multiplicative fee-rate improvement a replacement must
            offer over the conflicting pending message it displaces.
        deploy_weight / call_weight / transfer_weight: per-kind weights.
        fifo: if True the mempool ignores fees entirely — FIFO order, no
            eviction, no RBF.  With ``capacity_weight=None`` this
            reproduces the pre-fee-market :class:`~repro.chain.mempool.Mempool`
            behaviour exactly (the compatibility baseline).
    """

    block_weight_budget: int | None = 40
    capacity_weight: int | None = 400
    min_relay_fee_rate: int = 1
    rbf_bump: float = 1.25
    deploy_weight: int = 4
    call_weight: int = 2
    transfer_weight: int = 1
    fifo: bool = False

    def __post_init__(self) -> None:
        if self.min_relay_fee_rate < 0:
            raise FeeError("min_relay_fee_rate must be non-negative")
        if self.rbf_bump < 1.0:
            raise FeeError("rbf_bump must be at least 1.0")
        for field_name in (
            "deploy_weight",
            "call_weight",
            "transfer_weight",
            "block_weight_budget",
            "capacity_weight",
        ):
            value = getattr(self, field_name)
            if value is not None and value < 1:
                raise FeeError(f"{field_name} must be at least 1 (or None)")

    @classmethod
    def unlimited_fifo(cls) -> "FeePolicy":
        """The no-fee-market policy: infinite capacity, FIFO order.

        A :class:`~repro.economy.mempool.PriorityMempool` under this
        policy behaves exactly like the plain FIFO
        :class:`~repro.chain.mempool.Mempool`.
        """
        return cls(
            block_weight_budget=None,
            capacity_weight=None,
            min_relay_fee_rate=0,
            fifo=True,
        )

    def with_overrides(self, **changes) -> "FeePolicy":
        return replace(self, **changes)

    # -- message pricing ----------------------------------------------------

    def weight_of_kind(self, kind: str) -> int:
        if kind == "deploy":
            return self.deploy_weight
        if kind == "call":
            return self.call_weight
        return self.transfer_weight

    def weight_of(self, message: ChainMessage) -> int:
        return self.weight_of_kind(message.kind)


#: Weights used when no fee market is configured (plain mempools).
DEFAULT_POLICY = FeePolicy()


@dataclass(frozen=True)
class FeeBudget:
    """One swap's fee-spending envelope and rebroadcast policy.

    Attributes:
        cap: maximum total fees this swap may commit across all chains.
        fee_rate: initial fee rate attached to every message (None = ask
            the chain's :class:`~repro.economy.estimator.FeeEstimator`,
            falling back to the chain's min-relay rate).
        bump_factor: fee-rate multiplier applied when a message is
            evicted and rebroadcast (replace-by-fee bump).
        max_bumps: rebroadcast attempts per message before the swap
            gives up on that message (bump-or-abort's "abort" arm).
    """

    cap: int
    fee_rate: int | None = None
    bump_factor: float = 2.0
    max_bumps: int = 3

    def __post_init__(self) -> None:
        if self.cap < 0:
            raise FeeError("fee budget cap must be non-negative")
        if self.fee_rate is not None and self.fee_rate < 0:
            raise FeeError("fee_rate must be non-negative")
        if self.bump_factor < 1.0:
            raise FeeError("bump_factor must be at least 1.0")
        if self.max_bumps < 0:
            raise FeeError("max_bumps must be non-negative")

    def bumped_rate(self, rate: int) -> int:
        """The next fee rate after one bump (always strictly higher)."""
        return max(rate + 1, int(rate * self.bump_factor))


def bump_fee(
    message: DeployMessage | CallMessage, new_fee: int
) -> DeployMessage | CallMessage:
    """An unsigned copy of ``message`` paying ``new_fee``, funded from change.

    The fee increase is carved out of the message's change outputs (the
    funding inputs stay identical, which is what makes the copy a
    replace-by-fee candidate: it conflicts with the original).  Raises
    :class:`~repro.errors.FeeError` when the change cannot cover the
    increase — the caller must then abandon instead of bumping.
    """
    delta = new_fee - message.fee
    if delta <= 0:
        raise FeeError(f"bump must raise the fee (old {message.fee}, new {new_fee})")
    available = sum(out.value for out in message.change)
    if available < delta:
        raise FeeError(
            f"change {available} cannot fund a fee bump of {delta}"
        )
    remaining = delta
    new_change = []
    for out in message.change:
        take = min(out.value, remaining)
        remaining -= take
        if out.value - take > 0:
            new_change.append(replace(out, value=out.value - take))
    common = dict(
        sender=message.sender,
        args=message.args,
        value=message.value,
        fee=new_fee,
        inputs=message.inputs,
        change=tuple(new_change),
        nonce=message.nonce,
        signature=None,
    )
    if isinstance(message, DeployMessage):
        return DeployMessage(contract_class=message.contract_class, **common)
    return CallMessage(
        contract_id=message.contract_id, function=message.function, **common
    )
