"""The fee-market economy: priority mempools, fee estimation, swap budgets.

This package turns block space from an infinite resource into the
economic bottleneck the paper's cost analysis (Section 5 / Table 1)
assumes.  Chains get a :class:`FeePolicy` (weights, block-space budget,
mempool capacity, relay and replace-by-fee rules) enforced by a
:class:`PriorityMempool`; end-users read the market through a
:class:`FeeEstimator` and spend against a per-swap :class:`FeeBudget`
with bump-or-abort rebroadcast when congestion evicts their messages.
"""

from .estimator import FeeEstimator
from .mempool import MempoolEntry, PriorityMempool
from .policy import DEFAULT_POLICY, FeeBudget, FeePolicy, bump_fee

__all__ = [
    "DEFAULT_POLICY",
    "FeeBudget",
    "FeeEstimator",
    "FeePolicy",
    "MempoolEntry",
    "PriorityMempool",
    "bump_fee",
]
