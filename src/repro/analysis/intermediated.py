"""The introduction's strawman: trading through a centralized exchange.

Section 1 motivates AC2Ts by counting what the Trent-the-exchange
alternative costs: going through fiat takes **four** transactions (two
between Alice and Trent, two between Bob and Trent); a direct custodial
swap takes **two**; a peer-to-peer AC2T takes one cross-chain
transaction (N on-chain contracts for N edges, but a single atomic
unit).  Beyond transaction count, the intermediated paths give up
custody and atomicity entirely.

These models quantify that comparison so the ablation bench can print
the intro's table.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.graph import SwapGraph


@dataclass(frozen=True)
class SettlementPath:
    """One way to execute an asset exchange, and what it costs."""

    name: str
    onchain_transactions: int
    trusted_intermediary: bool
    intermediary_must_hold_assets: bool
    atomic: bool
    decentralized: bool


def fiat_exchange_path(num_pairs: int = 1) -> SettlementPath:
    """Alice→Trent→fiat→Bob: four transactions per exchanged pair."""
    if num_pairs < 1:
        raise ValueError("at least one exchanged pair")
    return SettlementPath(
        name="centralized exchange via fiat",
        onchain_transactions=4 * num_pairs,
        trusted_intermediary=True,
        intermediary_must_hold_assets=True,
        atomic=False,
        decentralized=False,
    )


def direct_exchange_path(num_pairs: int = 1) -> SettlementPath:
    """Custodial direct swap at the exchange: two transactions per pair."""
    if num_pairs < 1:
        raise ValueError("at least one exchanged pair")
    return SettlementPath(
        name="centralized exchange, direct swap",
        onchain_transactions=2 * num_pairs,
        trusted_intermediary=True,
        intermediary_must_hold_assets=True,
        atomic=False,
        decentralized=False,
    )


def ac2t_path(graph: SwapGraph, protocol: str = "ac3wn") -> SettlementPath:
    """Peer-to-peer atomic cross-chain transaction.

    On-chain message count: one deploy plus one settle call per edge,
    plus (for AC3WN) the SCw deploy and its state-change call.
    """
    n = graph.num_contracts
    extra = 2 if protocol == "ac3wn" else 0
    return SettlementPath(
        name=f"peer-to-peer AC2T ({protocol})",
        onchain_transactions=2 * n + extra,
        trusted_intermediary=False,
        intermediary_must_hold_assets=False,
        atomic=protocol in ("ac3wn", "ac3tw"),
        decentralized=protocol != "ac3tw",
    )


def comparison_rows(graph: SwapGraph) -> list[SettlementPath]:
    """The intro's comparison for one two-party exchange."""
    pairs = max(graph.num_contracts // 2, 1)
    return [
        fiat_exchange_path(pairs),
        direct_exchange_path(pairs),
        ac2t_path(graph, "herlihy"),
        ac2t_path(graph, "ac3wn"),
    ]
