"""Analytical models of the paper's evaluation (Section 6)."""

from .cost import (
    CostBreakdown,
    ac3wn_cost,
    cost_table,
    herlihy_cost,
    overhead_ratio,
    scw_cost_usd,
)
from .intermediated import (
    SettlementPath,
    ac2t_path,
    comparison_rows,
    direct_exchange_path,
    fiat_exchange_path,
)
from .latency import (
    AC3WN_PHASES,
    LatencyPoint,
    ac3wn_latency,
    crossover_diameter,
    figure10_series,
    herlihy_latency,
    latency_for_graph,
)
from .security import (
    PAPER_WITNESS_CANDIDATES,
    WitnessChoice,
    attack_cost_usd,
    depth_table,
    is_depth_safe,
    paper_worked_example,
    required_depth,
)
from .throughput import (
    TABLE1_ROWS,
    ThroughputResult,
    ac2t_throughput,
    best_witness,
    chain_tps,
    paper_example,
)

__all__ = [
    "AC3WN_PHASES",
    "CostBreakdown",
    "LatencyPoint",
    "PAPER_WITNESS_CANDIDATES",
    "SettlementPath",
    "TABLE1_ROWS",
    "ThroughputResult",
    "WitnessChoice",
    "ac2t_throughput",
    "ac3wn_cost",
    "ac3wn_latency",
    "ac2t_path",
    "attack_cost_usd",
    "best_witness",
    "chain_tps",
    "comparison_rows",
    "cost_table",
    "crossover_diameter",
    "depth_table",
    "direct_exchange_path",
    "fiat_exchange_path",
    "figure10_series",
    "herlihy_cost",
    "herlihy_latency",
    "is_depth_safe",
    "latency_for_graph",
    "overhead_ratio",
    "paper_example",
    "paper_worked_example",
    "required_depth",
    "scw_cost_usd",
]
