"""Section 6.3: choosing the witness network and the depth ``d``.

A malicious participant could rent hash power and fork the witness chain
for ``d`` blocks to flip an already-observed decision.  The defense is
economic: pick ``d`` so that the attack costs more than the assets at
stake.  With ``Va`` the value at risk (USD), ``Ch`` the hourly 51%-attack
cost, and ``dh`` the chain's blocks per hour:

    attack cost for d blocks  =  d · Ch / dh
    safety requires            d > Va · dh / Ch

The paper's worked example: ``Va = $1M`` on Bitcoin (``Ch ≈ $300K/h``,
``dh = 6``) needs ``d > 20``.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass

from ..chain.params import ATTACK_COST_PER_HOUR_USD


def attack_cost_usd(depth: int, hourly_cost: float, blocks_per_hour: float) -> float:
    """Cost of sustaining a 51% fork for ``depth`` blocks."""
    if depth < 0:
        raise ValueError("depth must be non-negative")
    if hourly_cost <= 0 or blocks_per_hour <= 0:
        raise ValueError("costs and rates must be positive")
    return depth * hourly_cost / blocks_per_hour


def required_depth(
    value_at_risk: float, hourly_cost: float, blocks_per_hour: float
) -> int:
    """The smallest integer ``d`` satisfying ``d > Va · dh / Ch``."""
    if value_at_risk < 0:
        raise ValueError("value at risk must be non-negative")
    if hourly_cost <= 0 or blocks_per_hour <= 0:
        raise ValueError("costs and rates must be positive")
    threshold = value_at_risk * blocks_per_hour / hourly_cost
    depth = math.floor(threshold) + 1
    return max(depth, 1)


def is_depth_safe(
    depth: int, value_at_risk: float, hourly_cost: float, blocks_per_hour: float
) -> bool:
    """True iff an attacker loses money forking ``depth`` blocks."""
    return attack_cost_usd(depth, hourly_cost, blocks_per_hour) > value_at_risk


@dataclass(frozen=True)
class WitnessChoice:
    """A candidate witness network with its safety parameters."""

    chain_id: str
    blocks_per_hour: float
    hourly_attack_cost_usd: float

    def depth_for(self, value_at_risk: float) -> int:
        return required_depth(
            value_at_risk, self.hourly_attack_cost_usd, self.blocks_per_hour
        )

    def confirmation_latency_hours(self, value_at_risk: float) -> float:
        """Wall-clock time to bury a decision safely for this Va."""
        return self.depth_for(value_at_risk) / self.blocks_per_hour


#: The paper's Section 6.3 candidates (2019 figures from crypto51.app).
PAPER_WITNESS_CANDIDATES = [
    WitnessChoice("bitcoin", 6.0, ATTACK_COST_PER_HOUR_USD["bitcoin"]),
    WitnessChoice("ethereum", 240.0, ATTACK_COST_PER_HOUR_USD["ethereum"]),
    WitnessChoice("litecoin", 24.0, ATTACK_COST_PER_HOUR_USD["litecoin"]),
    WitnessChoice("bitcoin-cash", 6.0, ATTACK_COST_PER_HOUR_USD["bitcoin-cash"]),
]


def paper_worked_example() -> int:
    """The paper's example: $1M at risk witnessed by Bitcoin → d > 20."""
    return required_depth(1_000_000.0, 300_000.0, 6.0)


@dataclass(frozen=True)
class SecurityReportRow:
    """One empirical-vs-analytic cell of the security matrix.

    ``model_safe`` is the Section 6.3 prediction (``d >=
    required_depth``); ``empirically_safe`` is what the attacked run
    measured; ``agrees`` is whether the analytic bound was *sound* for
    the cell — an unsafe prediction with a safe measurement still
    agrees (the bound is conservative: losing the mining race or the
    settlement race can save a swap the cost model alone would give up).
    """

    protocol: str
    depth: int
    hashpower: float
    total: int
    violations: int
    violation_rate: float
    commit_rate: float
    attacks_launched: int
    reorgs_won: int
    reorgs_lost: int
    attack_cost: float
    value_at_risk: float
    required_depth: int
    model_safe: bool
    empirically_safe: bool

    @property
    def agrees(self) -> bool:
        """The depth rule is sound iff no model-safe cell was violated."""
        return self.empirically_safe or not self.model_safe


def security_report(sweep) -> list[SecurityReportRow]:
    """Compare a measured ``security-matrix`` sweep against the model.

    Takes a :class:`~repro.sweeps.result.SweepResult` (fresh or
    re-loaded from JSON) and returns one row per cell, expansion order.
    The paper's claim — atomicity holds wherever ``d`` meets the
    analytic bound — is equivalent to ``all(row.agrees)``.
    """
    from ..sweeps.figures import violation_rate_surface

    # A report row is a surface cell plus the empirical verdict, so a
    # new surface field fails loudly here instead of silently dropping.
    return [
        SecurityReportRow(
            **dataclasses.asdict(cell), empirically_safe=cell.violations == 0
        )
        for cell in violation_rate_surface(sweep)
    ]


def depth_table(values_at_risk: list[float]) -> list[dict]:
    """Required depth on each candidate witness for a sweep of ``Va``."""
    rows = []
    for va in values_at_risk:
        row: dict = {"value_at_risk_usd": va}
        for choice in PAPER_WITNESS_CANDIDATES:
            row[choice.chain_id] = choice.depth_for(va)
        rows.append(row)
    return rows
