"""Section 6.3: choosing the witness network and the depth ``d``.

A malicious participant could rent hash power and fork the witness chain
for ``d`` blocks to flip an already-observed decision.  The defense is
economic: pick ``d`` so that the attack costs more than the assets at
stake.  With ``Va`` the value at risk (USD), ``Ch`` the hourly 51%-attack
cost, and ``dh`` the chain's blocks per hour:

    attack cost for d blocks  =  d · Ch / dh
    safety requires            d > Va · dh / Ch

The paper's worked example: ``Va = $1M`` on Bitcoin (``Ch ≈ $300K/h``,
``dh = 6``) needs ``d > 20``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..chain.params import ATTACK_COST_PER_HOUR_USD


def attack_cost_usd(depth: int, hourly_cost: float, blocks_per_hour: float) -> float:
    """Cost of sustaining a 51% fork for ``depth`` blocks."""
    if depth < 0:
        raise ValueError("depth must be non-negative")
    if hourly_cost <= 0 or blocks_per_hour <= 0:
        raise ValueError("costs and rates must be positive")
    return depth * hourly_cost / blocks_per_hour


def required_depth(
    value_at_risk: float, hourly_cost: float, blocks_per_hour: float
) -> int:
    """The smallest integer ``d`` satisfying ``d > Va · dh / Ch``."""
    if value_at_risk < 0:
        raise ValueError("value at risk must be non-negative")
    if hourly_cost <= 0 or blocks_per_hour <= 0:
        raise ValueError("costs and rates must be positive")
    threshold = value_at_risk * blocks_per_hour / hourly_cost
    depth = math.floor(threshold) + 1
    return max(depth, 1)


def is_depth_safe(
    depth: int, value_at_risk: float, hourly_cost: float, blocks_per_hour: float
) -> bool:
    """True iff an attacker loses money forking ``depth`` blocks."""
    return attack_cost_usd(depth, hourly_cost, blocks_per_hour) > value_at_risk


@dataclass(frozen=True)
class WitnessChoice:
    """A candidate witness network with its safety parameters."""

    chain_id: str
    blocks_per_hour: float
    hourly_attack_cost_usd: float

    def depth_for(self, value_at_risk: float) -> int:
        return required_depth(
            value_at_risk, self.hourly_attack_cost_usd, self.blocks_per_hour
        )

    def confirmation_latency_hours(self, value_at_risk: float) -> float:
        """Wall-clock time to bury a decision safely for this Va."""
        return self.depth_for(value_at_risk) / self.blocks_per_hour


#: The paper's Section 6.3 candidates (2019 figures from crypto51.app).
PAPER_WITNESS_CANDIDATES = [
    WitnessChoice("bitcoin", 6.0, ATTACK_COST_PER_HOUR_USD["bitcoin"]),
    WitnessChoice("ethereum", 240.0, ATTACK_COST_PER_HOUR_USD["ethereum"]),
    WitnessChoice("litecoin", 24.0, ATTACK_COST_PER_HOUR_USD["litecoin"]),
    WitnessChoice("bitcoin-cash", 6.0, ATTACK_COST_PER_HOUR_USD["bitcoin-cash"]),
]


def paper_worked_example() -> int:
    """The paper's example: $1M at risk witnessed by Bitcoin → d > 20."""
    return required_depth(1_000_000.0, 300_000.0, 6.0)


def depth_table(values_at_risk: list[float]) -> list[dict]:
    """Required depth on each candidate witness for a sweep of ``Va``."""
    rows = []
    for va in values_at_risk:
        row: dict = {"value_at_risk_usd": va}
        for choice in PAPER_WITNESS_CANDIDATES:
            row[choice.chain_id] = choice.depth_for(va)
        rows.append(row)
    return rows
