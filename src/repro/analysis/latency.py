"""Section 6.1: analytical latency models.

Let Δ be enough time for any participant to publish a smart contract (or
change its state) on any chain and have the change publicly recognized.

* Herlihy's single-leader protocol: ``2 · Δ · Diam(D)`` — a sequential
  deployment phase of Diam(D) rungs followed by a sequential redemption
  phase of Diam(D) rungs (Figure 8).
* AC3WN: ``4 · Δ`` — four constant phases (witness registration,
  parallel deployment, witness state change, parallel redemption;
  Figure 9), independent of the graph.

:func:`figure10_series` regenerates Figure 10's two curves.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.graph import SwapGraph

#: Number of constant Δ-phases in AC3WN (Figure 9).
AC3WN_PHASES = 4


def herlihy_latency(diameter: int, delta: float = 1.0) -> float:
    """Overall AC2T latency under Herlihy's protocol: ``2·Δ·Diam(D)``."""
    if diameter < 2:
        raise ValueError("the smallest AC2T graph has diameter 2")
    return 2.0 * delta * diameter


def ac3wn_latency(diameter: int = 2, delta: float = 1.0) -> float:
    """Overall AC2T latency under AC3WN: ``4·Δ`` for any diameter."""
    if diameter < 2:
        raise ValueError("the smallest AC2T graph has diameter 2")
    return AC3WN_PHASES * delta


def latency_for_graph(graph: SwapGraph, protocol: str, delta: float = 1.0) -> float:
    """Analytical latency of ``graph`` under a named protocol."""
    diameter = graph.diameter()
    if protocol in ("herlihy", "nolan"):
        return herlihy_latency(diameter, delta)
    if protocol in ("ac3wn", "ac3tw"):
        return ac3wn_latency(diameter, delta)
    raise ValueError(f"unknown protocol {protocol!r}")


@dataclass(frozen=True)
class LatencyPoint:
    """One x-position of Figure 10."""

    diameter: int
    herlihy_deltas: float
    ac3wn_deltas: float

    @property
    def speedup(self) -> float:
        return self.herlihy_deltas / self.ac3wn_deltas


def figure10_series(max_diameter: int = 14, delta: float = 1.0) -> list[LatencyPoint]:
    """The two curves of Figure 10 for diameters 2..max_diameter."""
    return [
        LatencyPoint(
            diameter=d,
            herlihy_deltas=herlihy_latency(d, delta),
            ac3wn_deltas=ac3wn_latency(d, delta),
        )
        for d in range(2, max_diameter + 1)
    ]


def crossover_diameter() -> int:
    """The diameter at which the two protocols cost the same (2·d = 4)."""
    return 2
