"""Section 6.2: monetary cost model — analytic and measured.

Both protocols deploy one contract per edge (``N = |E|``) and settle each
with one function call.  AC3WN additionally deploys the coordinator
``SCw`` and flips its state once, so:

* Herlihy:  ``N · (fd + ffc)``
* AC3WN:    ``(N + 1) · (fd + ffc)``

an overhead of exactly ``1/N`` of the baseline fee.  The paper quotes a
real-world figure of roughly $2–4 for an ``SCw``-like contract on
Ethereum depending on the ETH/USD rate ($4 at $300/ETH, ~$2 at
$140/ETH).

Under a fee market (``repro.economy``) the flat fees ``fd``/``ffc`` are
only the floor: congestion prices messages above it, and swaps that
cannot pay are evicted rather than delayed.
:func:`congestion_cost_report` compares the *measured* fee spend per
committed swap against the Table 1 model and quantifies the congestion
premium plus the priced-out casualties.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Published reference points for an SCw-scale Ethereum contract.
ETH_USD_RATE_2017 = 300.0
ETH_USD_RATE_2019 = 140.0
SCW_COST_USD_AT_300 = 4.0
SCW_ETH_COST = SCW_COST_USD_AT_300 / ETH_USD_RATE_2017  # ≈ 0.0133 ETH


@dataclass(frozen=True)
class CostBreakdown:
    """Fee totals of one AC2T under one protocol."""

    protocol: str
    num_contracts: int
    deployment_fees: float
    call_fees: float

    @property
    def total(self) -> float:
        return self.deployment_fees + self.call_fees


def herlihy_cost(num_contracts: int, fd: float, ffc: float) -> CostBreakdown:
    """Baseline fee: ``N`` deployments plus ``N`` settle calls."""
    if num_contracts < 1:
        raise ValueError("an AC2T has at least one contract")
    return CostBreakdown(
        protocol="herlihy",
        num_contracts=num_contracts,
        deployment_fees=num_contracts * fd,
        call_fees=num_contracts * ffc,
    )


def ac3wn_cost(num_contracts: int, fd: float, ffc: float) -> CostBreakdown:
    """AC3WN fee: one extra deployment (SCw) and one extra call."""
    if num_contracts < 1:
        raise ValueError("an AC2T has at least one contract")
    return CostBreakdown(
        protocol="ac3wn",
        num_contracts=num_contracts,
        deployment_fees=(num_contracts + 1) * fd,
        call_fees=(num_contracts + 1) * ffc,
    )


def overhead_ratio(num_contracts: int) -> float:
    """AC3WN's extra fee as a fraction of Herlihy's: exactly ``1/N``."""
    if num_contracts < 1:
        raise ValueError("an AC2T has at least one contract")
    return 1.0 / num_contracts


def scw_cost_usd(eth_usd_rate: float) -> float:
    """Dollar cost of deploying + driving SCw at a given ETH/USD rate."""
    if eth_usd_rate <= 0:
        raise ValueError("exchange rate must be positive")
    return SCW_ETH_COST * eth_usd_rate


def model_swap_cost(protocol: str, num_contracts: int, fd: float, ffc: float) -> float:
    """Table 1 model fee of one committed AC2T under ``protocol``.

    The witness-network protocol pays for the extra ``SCw`` deploy+call;
    every other protocol (Herlihy, Nolan's two-party special case, and
    the trusted-witness variant, whose witness works off-chain) pays the
    per-edge baseline.
    """
    if protocol == "ac3wn":
        return ac3wn_cost(num_contracts, fd, ffc).total
    return herlihy_cost(num_contracts, fd, ffc).total


@dataclass(frozen=True)
class CongestionCostRow:
    """Measured-vs-model economics of one protocol's slice of a run."""

    protocol: str
    swaps: int
    committed: int
    priced_out: int
    evictions: int
    fee_bumps: int
    fee_per_commit: float
    model_fee_per_commit: float

    @property
    def priced_out_rate(self) -> float:
        return self.priced_out / self.swaps if self.swaps else 0.0

    @property
    def congestion_premium(self) -> float:
        """Measured fee spend over the Table 1 model (1.0 = at model)."""
        if self.model_fee_per_commit <= 0:
            return 0.0
        return self.fee_per_commit / self.model_fee_per_commit


def congestion_cost_report(
    outcomes: list, fd: float, ffc: float
) -> list[CongestionCostRow]:
    """Per-protocol fee economics of a congested engine run.

    ``outcomes`` are :class:`~repro.core.protocol.SwapOutcome` records;
    ``fd``/``ffc`` are the flat deploy/call fees the Table 1 model
    prices with (use the scenario chains' fee schedule).
    """
    rows: list[CongestionCostRow] = []
    for protocol in sorted({o.protocol for o in outcomes}):
        slice_ = [o for o in outcomes if o.protocol == protocol]
        committed = [o for o in slice_ if o.decision == "commit"]
        fee_per_commit = (
            sum(o.fees_paid for o in committed) / len(committed) if committed else 0.0
        )
        model = (
            sum(
                model_swap_cost(protocol, o.graph.num_contracts, fd, ffc)
                for o in committed
            )
            / len(committed)
            if committed
            else 0.0
        )
        rows.append(
            CongestionCostRow(
                protocol=protocol,
                swaps=len(slice_),
                committed=len(committed),
                priced_out=sum(1 for o in slice_ if o.priced_out),
                evictions=sum(o.evictions for o in slice_),
                fee_bumps=sum(o.fee_bumps for o in slice_),
                fee_per_commit=fee_per_commit,
                model_fee_per_commit=model,
            )
        )
    return rows


def cost_table(
    contract_counts: list[int], fd: float = 1.0, ffc: float = 0.5
) -> list[dict]:
    """Rows of the Section 6.2 comparison for a sweep of ``N``."""
    rows = []
    for n in contract_counts:
        base = herlihy_cost(n, fd, ffc)
        ours = ac3wn_cost(n, fd, ffc)
        rows.append(
            {
                "num_contracts": n,
                "herlihy_total": base.total,
                "ac3wn_total": ours.total,
                "overhead": ours.total - base.total,
                "overhead_ratio": overhead_ratio(n),
            }
        )
    return rows
