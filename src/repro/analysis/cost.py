"""Section 6.2: monetary cost model.

Both protocols deploy one contract per edge (``N = |E|``) and settle each
with one function call.  AC3WN additionally deploys the coordinator
``SCw`` and flips its state once, so:

* Herlihy:  ``N · (fd + ffc)``
* AC3WN:    ``(N + 1) · (fd + ffc)``

an overhead of exactly ``1/N`` of the baseline fee.  The paper quotes a
real-world figure of roughly $2–4 for an ``SCw``-like contract on
Ethereum depending on the ETH/USD rate ($4 at $300/ETH, ~$2 at
$140/ETH).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Published reference points for an SCw-scale Ethereum contract.
ETH_USD_RATE_2017 = 300.0
ETH_USD_RATE_2019 = 140.0
SCW_COST_USD_AT_300 = 4.0
SCW_ETH_COST = SCW_COST_USD_AT_300 / ETH_USD_RATE_2017  # ≈ 0.0133 ETH


@dataclass(frozen=True)
class CostBreakdown:
    """Fee totals of one AC2T under one protocol."""

    protocol: str
    num_contracts: int
    deployment_fees: float
    call_fees: float

    @property
    def total(self) -> float:
        return self.deployment_fees + self.call_fees


def herlihy_cost(num_contracts: int, fd: float, ffc: float) -> CostBreakdown:
    """Baseline fee: ``N`` deployments plus ``N`` settle calls."""
    if num_contracts < 1:
        raise ValueError("an AC2T has at least one contract")
    return CostBreakdown(
        protocol="herlihy",
        num_contracts=num_contracts,
        deployment_fees=num_contracts * fd,
        call_fees=num_contracts * ffc,
    )


def ac3wn_cost(num_contracts: int, fd: float, ffc: float) -> CostBreakdown:
    """AC3WN fee: one extra deployment (SCw) and one extra call."""
    if num_contracts < 1:
        raise ValueError("an AC2T has at least one contract")
    return CostBreakdown(
        protocol="ac3wn",
        num_contracts=num_contracts,
        deployment_fees=(num_contracts + 1) * fd,
        call_fees=(num_contracts + 1) * ffc,
    )


def overhead_ratio(num_contracts: int) -> float:
    """AC3WN's extra fee as a fraction of Herlihy's: exactly ``1/N``."""
    if num_contracts < 1:
        raise ValueError("an AC2T has at least one contract")
    return 1.0 / num_contracts


def scw_cost_usd(eth_usd_rate: float) -> float:
    """Dollar cost of deploying + driving SCw at a given ETH/USD rate."""
    if eth_usd_rate <= 0:
        raise ValueError("exchange rate must be positive")
    return SCW_ETH_COST * eth_usd_rate


def cost_table(
    contract_counts: list[int], fd: float = 1.0, ffc: float = 0.5
) -> list[dict]:
    """Rows of the Section 6.2 comparison for a sweep of ``N``."""
    rows = []
    for n in contract_counts:
        base = herlihy_cost(n, fd, ffc)
        ours = ac3wn_cost(n, fd, ffc)
        rows.append(
            {
                "num_contracts": n,
                "herlihy_total": base.total,
                "ac3wn_total": ours.total,
                "overhead": ours.total - base.total,
                "overhead_ratio": overhead_ratio(n),
            }
        )
    return rows
