"""Section 6.4 / Table 1: AC2T throughput.

An AC2T spanning chains ``i, j, …, n`` witnessed by chain ``w`` commits
at the rate of its slowest member:

    throughput = min(tps_i, tps_j, …, tps_n, tps_w)

so the witness should be chosen *from the involved chains* to avoid
becoming the bottleneck.  Table 1 lists the top-4 permissionless
cryptocurrencies by market cap with their published tps.

Two complementary views live here: the paper's *analytic* min() rule
over published per-chain tps, and the *measured* view distilled from a
:class:`~repro.engine.engine.SwapEngine` run, where hundreds of
concurrent AC2Ts share chains and the observed swaps/sec emerges from
actual block-capacity contention rather than a closed-form bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..chain.params import TABLE1_TPS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from ..engine.engine import EngineResult
    from ..engine.metrics import EngineMetrics

#: Table 1 rows in the paper's order (market-cap ranked).
TABLE1_ROWS = [
    ("Bitcoin", "bitcoin", TABLE1_TPS["bitcoin"]),
    ("Ethereum", "ethereum", TABLE1_TPS["ethereum"]),
    ("Litecoin", "litecoin", TABLE1_TPS["litecoin"]),
    ("Bitcoin Cash", "bitcoin-cash", TABLE1_TPS["bitcoin-cash"]),
]


@dataclass(frozen=True)
class ThroughputResult:
    """Throughput of an AC2T configuration."""

    asset_chains: tuple[str, ...]
    witness_chain: str
    tps: float
    bottleneck: str


def chain_tps(chain_id: str, overrides: dict[str, float] | None = None) -> float:
    """Published tps of a chain (Table 1), with optional overrides."""
    table = dict(TABLE1_TPS)
    if overrides:
        table.update(overrides)
    if chain_id not in table:
        raise KeyError(f"no tps figure for chain {chain_id!r}")
    return table[chain_id]


def ac2t_throughput(
    asset_chains: list[str],
    witness_chain: str,
    overrides: dict[str, float] | None = None,
) -> ThroughputResult:
    """min() rule over asset chains plus the witness chain."""
    if not asset_chains:
        raise ValueError("an AC2T spans at least one asset chain")
    involved = list(asset_chains) + [witness_chain]
    rates = {chain: chain_tps(chain, overrides) for chain in involved}
    bottleneck = min(rates, key=lambda c: (rates[c], c))
    return ThroughputResult(
        asset_chains=tuple(asset_chains),
        witness_chain=witness_chain,
        tps=rates[bottleneck],
        bottleneck=bottleneck,
    )


def best_witness(
    asset_chains: list[str], overrides: dict[str, float] | None = None
) -> ThroughputResult:
    """Pick the involved chain that maximizes AC2T throughput as witness.

    Section 6.4: "The witness network should be chosen from the set of
    involved blockchains to avoid limiting the transaction throughput."
    """
    candidates = [
        ac2t_throughput(asset_chains, witness, overrides) for witness in asset_chains
    ]
    return max(candidates, key=lambda result: result.tps)


def paper_example() -> ThroughputResult:
    """The paper's example: ETH+LTC assets witnessed by Bitcoin → 7 tps."""
    return ac2t_throughput(["ethereum", "litecoin"], "bitcoin")


# ---------------------------------------------------------------------------
# Measured throughput: distilled from SwapEngine runs
# ---------------------------------------------------------------------------


def engine_throughput_report(result: "EngineResult") -> list["EngineMetrics"]:
    """Per-protocol measured throughput rows for one engine run.

    The overall row comes first (labelled by its protocol, or "mixed"),
    followed by one row per protocol in name order — ready to print next
    to the analytic Table 1 numbers.  Rows are plain
    :class:`~repro.engine.metrics.EngineMetrics` (which carries
    ``swaps_per_second`` and the derived ``commits_per_second``), so
    there is exactly one aggregate type to keep in sync.
    """
    rows = [result.metrics]
    if len(result.by_protocol) > 1:
        rows.extend(metrics for _, metrics in sorted(result.by_protocol.items()))
    return rows
