"""Declarative experiments: one typed, serializable spec drives every run.

The public surface:

* :class:`ExperimentSpec` and its nested section dataclasses — the
  schema (:mod:`repro.experiment.spec`);
* :func:`apply_overrides` / :func:`parse_set_args` — dotted-path spec
  edits, the CLI's ``--set key=value``;
* :func:`preset_spec` / :func:`register_preset` — the named preset
  catalog (:mod:`repro.experiment.presets`);
* :func:`register_traffic` — pluggable workload generators
  (:mod:`repro.experiment.registry`);
* :func:`run_experiment` → :class:`ExperimentResult` — the single entry
  point that executes a spec end to end
  (:mod:`repro.experiment.runner`).
"""

from .presets import (
    preset_description,
    preset_names,
    preset_spec,
    register_preset,
)
from .registry import (
    register_traffic,
    registered_traffic,
    traffic_generator,
    unregister_traffic,
)
from .runner import (
    ExperimentResult,
    build_environment,
    build_observability,
    run_experiment,
)
from .spec import (
    ChainOverride,
    AlertRulesSpec,
    ChainsSpec,
    CrashSpec,
    EngineSpec,
    ExperimentSpec,
    FeeBudgetSpec,
    FeeMarketSpec,
    FeeShockSpec,
    LatencySpec,
    MetricsSpec,
    MonitorSpec,
    ObsSpec,
    TrafficSpec,
    apply_overrides,
    parse_set_args,
    spec_from_dict,
    spec_to_dict,
)

__all__ = [
    "ChainOverride",
    "AlertRulesSpec",
    "ChainsSpec",
    "CrashSpec",
    "EngineSpec",
    "ExperimentResult",
    "ExperimentSpec",
    "FeeBudgetSpec",
    "FeeMarketSpec",
    "FeeShockSpec",
    "LatencySpec",
    "MetricsSpec",
    "MonitorSpec",
    "ObsSpec",
    "TrafficSpec",
    "apply_overrides",
    "build_environment",
    "build_observability",
    "parse_set_args",
    "preset_description",
    "preset_names",
    "preset_spec",
    "register_preset",
    "register_traffic",
    "registered_traffic",
    "run_experiment",
    "spec_from_dict",
    "spec_to_dict",
    "traffic_generator",
    "unregister_traffic",
]
