"""The named preset catalog: every stock scenario as a spec.

A preset is a factory returning a fresh :class:`~repro.experiment.spec.ExperimentSpec`
— the same worlds the CLI subcommands and per-PR benchmarks used to
assemble by hand, now described declaratively and shared by all of
them.  Presets compose with dotted-path overrides::

    spec = preset_spec("congestion")
    spec = apply_overrides(spec, {"traffic.num_swaps": 60})

Register project-specific presets with :func:`register_preset`.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from ..adversary import AdversarySpec, ReorgAttackSpec
from ..errors import SpecError
from .spec import (
    ChainsSpec,
    CrashSpec,
    EngineSpec,
    ExperimentSpec,
    FeeMarketSpec,
    FeeShockSpec,
    TrafficSpec,
)

PresetFactory = Callable[[], ExperimentSpec]

_PRESETS: dict[str, tuple[PresetFactory, str]] = {}


def register_preset(
    name: str, factory: PresetFactory, description: str = "", replace: bool = False
) -> None:
    """Register a named preset (a zero-arg factory returning a spec)."""
    if name in _PRESETS and not replace:
        raise SpecError(f"preset {name!r} is already registered")
    _PRESETS[name] = (factory, description)


def preset_names() -> tuple[str, ...]:
    return tuple(sorted(_PRESETS))


def preset_description(name: str) -> str:
    return _PRESETS[name][1] if name in _PRESETS else ""


def preset_spec(name: str) -> ExperimentSpec:
    """A fresh spec for a named preset."""
    if name not in _PRESETS:
        raise SpecError(
            f"unknown preset {name!r}; available: {', '.join(preset_names())}"
        )
    return _PRESETS[name][0]()


# ---------------------------------------------------------------------------
# Stock presets
# ---------------------------------------------------------------------------


def _swap() -> ExperimentSpec:
    """One two-party AC3WN swap — the quickstart scenario."""
    return ExperimentSpec(
        name="swap",
        seed=0,
        protocol="ac3wn",
        chains=ChainsSpec(ids=("chain-0", "chain-1")),
        traffic=TrafficSpec(generator="poisson", num_swaps=1, rate=1.0),
    )


def _engine_smoke() -> ExperimentSpec:
    """50 mixed-protocol AC2Ts over three shared chains (the per-PR
    throughput-regression tripwire)."""
    return ExperimentSpec(
        name="engine-smoke",
        seed=90,
        protocol="mixed",
        chains=ChainsSpec(ids=("c0", "c1", "c2")),
        traffic=TrafficSpec(generator="poisson", num_swaps=50, rate=10.0),
    )


def _congestion() -> ExperimentSpec:
    """Oversubscribed fee market: 60 swaps at 12/s against a block
    budget of 16 — congestion prices the low-budget class out.

    Runs the default event-driven cadence: mempool-eviction hooks plus
    the deterministic per-swap submission jitter de-herd the post-block
    bursts, so the eager run reproduces the poll-cadence fee-market
    baseline (~9% low-budget / ~96% high-budget commit) that used to
    require pinning ``engine.eager=False``.
    """
    return ExperimentSpec(
        name="congestion",
        seed=0,
        protocol="ac3wn",
        chains=ChainsSpec(ids=("chain-0", "chain-1")),
        fee_market=FeeMarketSpec(
            enabled=True, block_weight_budget=16, capacity_weight=96
        ),
        traffic=TrafficSpec(generator="congestion", num_swaps=60, rate=12.0),
    )


def _table1() -> ExperimentSpec:
    """Measured swap-level throughput: 40 AC2Ts at 8/s over three asset
    chains (the engine-side counterpart of Table 1's min() rule)."""
    return ExperimentSpec(
        name="table1",
        seed=60,
        protocol="ac3wn",
        chains=ChainsSpec(ids=("c0", "c1", "c2")),
        traffic=TrafficSpec(generator="poisson", num_swaps=40, rate=8.0),
    )


def _figure10() -> ExperimentSpec:
    """One measured Figure 10 point: a diameter-4 ring swap.  Override
    ``chains.count`` + ``traffic.participants_per_swap`` (kept equal)
    to sweep the diameter, and ``protocol`` to compare curves."""
    return ExperimentSpec(
        name="figure10",
        seed=0,
        protocol="ac3wn",
        chains=ChainsSpec(ids=("c0", "c1", "c2", "c3")),
        traffic=TrafficSpec(
            generator="poisson", num_swaps=1, rate=1.0, participants_per_swap=4
        ),
    )


def _crash() -> ExperimentSpec:
    """Mixed-protocol traffic with mid-protocol crash injection: a
    quarter of the swaps lose one participant (never recovers)."""
    return ExperimentSpec(
        name="crash",
        seed=0,
        protocol="mixed",
        chains=ChainsSpec(ids=("chain-0", "chain-1")),
        traffic=TrafficSpec(
            generator="poisson",
            num_swaps=24,
            rate=6.0,
            crash=CrashSpec(rate=0.25),
        ),
    )


def _fee_shock() -> ExperimentSpec:
    """The congestion scenario plus a whale demand burst on the witness
    chain five seconds in — the bump-or-abort stress test."""
    return ExperimentSpec(
        name="fee-shock",
        seed=0,
        protocol="ac3wn",
        chains=ChainsSpec(ids=("chain-0", "chain-1")),
        fee_market=FeeMarketSpec(
            enabled=True, block_weight_budget=16, capacity_weight=96
        ),
        traffic=TrafficSpec(generator="congestion", num_swaps=60, rate=12.0),
        fee_shocks=(FeeShockSpec(at=5.0, count=32, fee_rate=8),),
    )


def _security() -> ExperimentSpec:
    """One security-matrix cell: open-loop traffic under a budgeted
    reorg attacker (Section 6.3's rented 51% attack).

    The cost model (``Va=175k``, ``Ch=300k``, ``dh=6``) gives
    ``required_depth = 4`` and an attack budget of 3 private blocks, so
    sweeping ``chains.confirmation_depth`` and
    ``adversary.reorg.hashpower`` around those numbers reproduces the
    depth-vs-cost trade-off empirically (the ``security-matrix`` sweep).
    """
    return ExperimentSpec(
        name="security",
        seed=7,
        protocol="ac3wn",
        chains=ChainsSpec(ids=("chain-0", "chain-1"), confirmation_depth=2),
        traffic=TrafficSpec(generator="poisson", num_swaps=12, rate=4.0),
        adversary=AdversarySpec(
            reorg=ReorgAttackSpec(
                enabled=True,
                hashpower=2.0,
                value_at_risk=175_000.0,
                hourly_cost=300_000.0,
                blocks_per_hour=6.0,
            )
        ),
    )


def _lazy_engine_smoke() -> ExperimentSpec:
    """The engine-smoke workload with eager block hooks disabled — the
    A/B baseline for the poll-tick-only driver cadence."""
    return dataclasses.replace(
        _engine_smoke(), name="engine-smoke-lazy", engine=EngineSpec(eager=False)
    )


register_preset("swap", _swap, "one two-party AC3WN swap")
register_preset(
    "engine-smoke", _engine_smoke, "50 mixed-protocol concurrent AC2Ts (CI tripwire)"
)
register_preset(
    "congestion", _congestion, "oversubscribed fee market: 60 swaps @ 12/s, budget 16"
)
register_preset("table1", _table1, "measured swap throughput: 40 AC2Ts @ 8/s")
register_preset("figure10", _figure10, "one measured Figure 10 latency point")
register_preset("crash", _crash, "mixed traffic with 25% mid-protocol crashes")
register_preset(
    "security", _security, "traffic under a budgeted witness-reorg attacker"
)
register_preset("fee-shock", _fee_shock, "congestion plus a whale demand burst")
register_preset(
    "engine-smoke-lazy", _lazy_engine_smoke, "engine smoke with eager=False (A/B)"
)
