"""The single entry point: ``run_experiment(spec) -> ExperimentResult``.

Builds the world the spec describes (chains, mempools, miners, latency,
fee market), generates the traffic stream through the generator
registry, schedules fee shocks, runs the :class:`~repro.engine.SwapEngine`,
and distills everything into one unified, JSON-exportable artifact: the
spec echo, aggregate :class:`~repro.engine.EngineMetrics` (overall and
per protocol), per-swap outcomes, and the analysis reports (measured
throughput, and fee economics when a fee market is on).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from ..adversary import build_roster
from ..analysis.cost import CongestionCostRow, congestion_cost_report
from ..analysis.throughput import engine_throughput_report
from ..core.evidence import evidence_cache_info, reset_evidence_cache_info
from ..core.protocol import SwapOutcome
from ..crypto.keys import clear_verify_cache as clear_ecdsa_cache
from ..crypto.keys import verify_cache_info as ecdsa_cache_info
from ..crypto.signatures import clear_verify_cache as clear_multisig_cache
from ..crypto.signatures import verify_cache_info as multisig_cache_info
from ..engine import PROTOCOLS, EngineResult, SwapEngine
from ..engine.metrics import EngineMetrics
from ..obs import (
    DEFAULT_LATENCY_BUCKETS,
    Alert,
    AtomicityRule,
    InvariantMonitor,
    MempoolSaturationRule,
    MetricsRegistry,
    MetricsTap,
    PricedOutSpikeRule,
    ReorgDepthRule,
    StallRule,
    TimeSeriesSampler,
    TraceCollector,
    instrument,
)
from ..workloads.scenarios import (
    ScenarioEnvironment,
    build_multi_scenario,
    schedule_fee_shock,
)
from .registry import traffic_generator
from .spec import ExperimentSpec


def _outcome_to_dict(outcome: SwapOutcome, swap_id: int, arrival: float) -> dict:
    return {
        "swap_id": swap_id,
        "protocol": outcome.protocol,
        "decision": outcome.decision,
        "atomic": outcome.is_atomic,
        "arrival_time": arrival,
        "started_at": outcome.started_at,
        "finished_at": outcome.finished_at,
        "latency": outcome.latency,
        "fees_paid": outcome.fees_paid,
        "fee_cap": outcome.fee_cap,
        "priced_out": outcome.priced_out,
        "evictions": outcome.evictions,
        "fee_bumps": outcome.fee_bumps,
        "injected_crash": outcome.injected_crash,
        "attacked_by": list(outcome.attacked_by),
        "attacks_launched": outcome.attacks_launched,
        "reorgs_won": outcome.reorgs_won,
        "reorgs_lost": outcome.reorgs_lost,
        "attack_blocks": outcome.attack_blocks,
        "attack_cost": outcome.attack_cost,
        "final_states": outcome.final_states(),
        "notes": list(outcome.notes),
    }


@dataclass
class ExperimentResult:
    """Everything one experiment produced, as one serializable artifact.

    Attributes:
        spec: the exact spec that ran (echoed into every export, so an
            artifact is always reproducible from itself).
        metrics: aggregate engine metrics over the whole run.
        by_protocol: per-protocol metric slices.
        outcomes: per-swap terminal records, request order.
        throughput: the measured throughput report rows (overall first).
        congestion_cost: fee-economics rows, when a fee market was on.
        engine_result: the raw engine artifact (requests included).
        env: the simulated world, for post-hoc inspection (not exported).
        caches: per-run verify-cache deltas (ECDSA, multisig, evidence
            memo) — how much the PR 5/6 caches actually saved this run.
        trace_collector: the flight recorder, when ``spec.obs.enabled``
            (not exported into ``to_dict``; see ``to_jsonl``).
        metrics_registry: the live metrics registry, when
            ``spec.obs.metrics.enabled`` (exported as
            ``reports.metrics`` — only then, so disabled artifacts stay
            byte-identical to pre-metrics ones).
        alerts: the invariant monitor's ordered firings, when
            ``spec.obs.monitor.enabled`` (exported as ``reports.alerts``
            under the same only-when-enabled contract).
    """

    spec: ExperimentSpec
    metrics: EngineMetrics
    by_protocol: dict[str, EngineMetrics]
    outcomes: list[SwapOutcome]
    throughput: list[EngineMetrics]
    congestion_cost: list[CongestionCostRow] | None
    engine_result: EngineResult = field(repr=False)
    env: ScenarioEnvironment = field(repr=False)
    caches: dict | None = None
    trace_collector: TraceCollector | None = field(default=None, repr=False)
    metrics_registry: MetricsRegistry | None = field(default=None, repr=False)
    alerts: list[Alert] | None = field(default=None, repr=False)

    def trace(self) -> list[tuple[int, str, str, float, float]]:
        """The engine's deterministic run fingerprint (for tests)."""
        return self.engine_result.trace()

    def to_dict(self) -> dict:
        requests = self.engine_result.requests
        reports: dict = {
            "adversary": self.engine_result.adversary,
            "caches": self.caches,
            "throughput": [asdict(row) for row in self.throughput],
            "congestion_cost": (
                None
                if self.congestion_cost is None
                else [
                    {
                        **asdict(row),
                        "congestion_premium": row.congestion_premium,
                        "priced_out_rate": row.priced_out_rate,
                    }
                    for row in self.congestion_cost
                ]
            ),
        }
        # Observability keys appear only when their feature was armed,
        # so disabled artifacts stay byte-identical to the goldens.
        if self.metrics_registry is not None:
            reports["metrics"] = self.metrics_registry.to_dict()
        if self.alerts is not None:
            reports["alerts"] = [alert.to_dict() for alert in self.alerts]
        return {
            "spec": self.spec.to_dict(),
            "metrics": asdict(self.metrics),
            "by_protocol": {
                name: asdict(metrics) for name, metrics in self.by_protocol.items()
            },
            "outcomes": [
                _outcome_to_dict(r.outcome, r.swap_id, r.arrival_time)
                for r in requests
                if r.outcome is not None
            ],
            "chain_reorgs": dict(self.engine_result.chain_reorgs),
            "reports": reports,
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")


def build_environment(spec: ExperimentSpec, traffic: list) -> ScenarioEnvironment:
    """The world the spec describes, warmed up and mining."""
    whales = tuple(
        dict.fromkeys(
            list(spec.chains.extra_participants)
            + [shock.whale for shock in spec.fee_shocks]
            # The reorg attacker needs a funded on-chain identity: fees
            # for its counter-decision and the exploit refund calls.
            + (
                [spec.adversary.reorg.attacker]
                if spec.adversary.reorg.enabled
                else []
            )
        )
    )
    env = build_multi_scenario(
        [item.graph for item in traffic],
        witness_chain_id=spec.chains.witness,
        chain_params=spec.chains.build_params() or None,
        seed=spec.seed,
        funding=spec.chains.funding,
        funding_chunks=spec.chains.funding_chunks,
        validator_mode=spec.chains.validator_mode,
        block_interval=spec.chains.block_interval,
        confirmation_depth=spec.chains.confirmation_depth,
        latency=spec.latency.build(),
        fee_policy=spec.fee_market.build(),
        extra_participants=list(whales) or None,
        extra_funding_chunks=spec.chains.extra_funding_chunks,
    )
    env.warm_up(spec.engine.warm_up_blocks)
    return env


def _shock_chain(spec: ExperimentSpec, shock) -> str:
    """The chain a fee shock floods when the spec leaves it implicit:
    the contended one — the witness chain for witness-coordinated runs,
    else the first asset chain."""
    if shock.chain_id is not None:
        return shock.chain_id
    if spec.protocol in ("ac3wn", "mixed"):
        return spec.chains.witness
    return spec.chains.asset_ids()[0]


def _reset_caches() -> None:
    """Start every run cold so the ``caches`` report is a pure function
    of the spec — a warm process-global cache would leak one run's state
    into the next artifact and break byte-identical re-execution."""
    clear_ecdsa_cache()
    clear_multisig_cache()
    reset_evidence_cache_info()


def _caches_report() -> dict:
    """This run's cache activity (the process caches were reset at the
    start of the run), with a derived hit rate per cache."""
    report: dict = {}
    for cache, counters in (
        ("ecdsa_verify", ecdsa_cache_info()),
        ("multisig_verify", multisig_cache_info()),
        ("evidence_memo", evidence_cache_info()),
    ):
        row = {key: value for key, value in counters.items()}
        total = row.get("hits", 0) + row.get("misses", 0)
        row["hit_rate"] = (row.get("hits", 0) / total) if total else 0.0
        report[cache] = row
    return report


def _monitor_rules(spec: ExperimentSpec) -> list:
    """Materialize the monitor's rule set, resolving spec-relative
    defaults: the reorg policy depth falls back to the confirmation
    depth (an adopted fork at least that deep means the depth-d defense
    was breached), and the stall budget is the slowest chain's
    block interval × confirmation depth × the configured multiple."""
    rules = spec.obs.monitor.rules
    out: list = []
    if rules.atomicity:
        out.append(AtomicityRule())
    depth = rules.reorg_depth
    if depth is None:
        depth = spec.chains.confirmation_depth
    if depth:
        out.append(ReorgDepthRule(depth))
    if rules.stall_multiple is not None:
        intervals = [spec.chains.block_interval] + [
            o.block_interval
            for o in spec.chains.overrides.values()
            if o.block_interval is not None
        ]
        depths = [spec.chains.confirmation_depth] + [
            o.confirmation_depth
            for o in spec.chains.overrides.values()
            if o.confirmation_depth is not None
        ]
        base = max(intervals) * max(depths)
        out.append(StallRule(rules.stall_multiple * base))
    if rules.mempool_saturation is not None:
        out.append(MempoolSaturationRule(rules.mempool_saturation))
    if rules.priced_out_rate is not None:
        out.append(
            PricedOutSpikeRule(
                rules.priced_out_rate,
                rules.priced_out_window,
                rules.priced_out_min,
            )
        )
    return out


def build_observability(
    spec: ExperimentSpec, env: ScenarioEnvironment, engine: SwapEngine
) -> tuple[
    TraceCollector | None,
    MetricsRegistry | None,
    InvariantMonitor | None,
    TimeSeriesSampler | None,
]:
    """Wire the full observability stack the spec asks for.

    Attaches the flight recorder before anything can emit (a no-op when
    all of obs is off: no collector ⇒ every emit-site guard stays
    False).  Metrics and the monitor ride the same event stream as
    sinks; when only they are armed the collector retains nothing — it
    dispatches each event and lets it go.  Shared between
    :func:`run_experiment` and the service-mode
    :class:`~repro.service.SwapService` so both surfaces observe one
    identical wiring.
    """
    obs = spec.obs
    collector = None
    sampler = None
    registry = None
    monitor = None
    if obs.enabled or obs.metrics.enabled or obs.monitor.enabled:
        collector = TraceCollector(
            categories=obs.categories,
            ring_size=obs.ring_size,
            retain=obs.enabled,
        )
        if obs.metrics.enabled:
            registry = MetricsRegistry()
            tap = MetricsTap(
                registry,
                latency_buckets=obs.metrics.latency_buckets
                or DEFAULT_LATENCY_BUCKETS,
            )
            collector.add_sink(tap.observe)
        if obs.monitor.enabled:
            stream = None
            if obs.monitor.stderr:
                import sys

                def stream(line: str) -> None:
                    # One buffered write + flush per alert, so live
                    # alert lines never interleave mid-line with other
                    # stderr diagnostics (progress, profiles).
                    sys.stderr.write(line + "\n")
                    sys.stderr.flush()

            monitor = InvariantMonitor(
                collector, rules=_monitor_rules(spec), stream=stream
            )
            collector.add_sink(monitor.observe)
        instrument(collector, env, engine)
        if collector.wants("sample") and (obs.enabled or obs.metrics.enabled):
            sampler = TimeSeriesSampler(
                collector,
                env,
                engine,
                interval=obs.sample_interval,
                window=obs.sample_window,
            ).start()
    return collector, registry, monitor, sampler


def run_experiment(spec: ExperimentSpec) -> ExperimentResult:
    """Validate and execute one spec end to end; never mutates ``spec``."""
    spec.validate()
    _reset_caches()
    traffic = traffic_generator(spec.traffic.generator)(spec)
    env = build_environment(spec, traffic)

    for shock in spec.fee_shocks:
        schedule_fee_shock(
            env,
            _shock_chain(spec, shock),
            at=env.simulator.now + shock.at,
            count=shock.count,
            fee_rate=shock.fee_rate,
            whale=shock.whale,
        )

    engine = SwapEngine(
        env,
        default_protocol="ac3wn" if spec.protocol == "mixed" else spec.protocol,
        witness_chain_id=spec.chains.witness,
        eager=spec.engine.eager,
        jitter_span=spec.engine.jitter,
    )
    collector, registry, monitor, sampler = build_observability(spec, env, engine)
    # Arm the adversarial roster (a no-op when every actor is disabled).
    build_roster(spec, env, engine)
    # Arrivals are generated from t=0; shift them past the warm-up so
    # the schedule stays genuinely open-loop (no clamped head batch).
    offset = env.simulator.now
    if spec.protocol == "mixed":
        for index, item in enumerate(traffic):
            engine.submit(
                item.graph,
                protocol=PROTOCOLS[index % len(PROTOCOLS)],
                at=offset + item.at,
                fee_budget=item.fee_budget,
                crash=item.crash,
            )
    else:
        engine.submit_many(traffic, offset=offset)
    raw = engine.run(max_events=spec.engine.max_events)
    if sampler is not None:
        sampler.stop()

    congestion_cost = None
    if spec.fee_market.enabled:
        fees = env.chains[spec.chains.asset_ids()[0]].params.fees
        congestion_cost = congestion_cost_report(
            raw.outcomes, fd=fees.deploy, ffc=fees.call
        )
    return ExperimentResult(
        spec=spec,
        metrics=raw.metrics,
        by_protocol=raw.by_protocol,
        outcomes=raw.outcomes,
        throughput=engine_throughput_report(raw),
        congestion_cost=congestion_cost,
        engine_result=raw,
        env=env,
        caches=_caches_report(),
        trace_collector=collector if spec.obs.enabled else None,
        metrics_registry=registry,
        alerts=monitor.alerts if monitor is not None else None,
    )
