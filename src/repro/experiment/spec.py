"""The declarative experiment schema: one typed, serializable spec.

Every runnable scenario in this reproduction — single swaps, engine
traffic, congested fee markets, crash sweeps — is described by an
:class:`ExperimentSpec`: a nested tree of frozen dataclasses covering
chains, fee policy, network latency, traffic (including crash injection
and fee shocks), protocol mix, and engine options, all hanging off one
master seed.  A spec is *data*: it serializes to a plain dict/JSON and
back (`to_dict` / `from_dict` / `to_json` / `from_json`) with strict
unknown-key rejection, so a run is shareable and reproducible from the
spec alone.  Dotted-path overrides (:func:`apply_overrides`) edit a spec
non-destructively — the mechanism behind the CLI's ``--set key=value``.

The spec layer deliberately contains no execution logic; see
:mod:`repro.experiment.runner` for :func:`~repro.experiment.runner.run_experiment`
and :mod:`repro.experiment.presets` for the named preset catalog.
"""

from __future__ import annotations

import dataclasses
import json
import types
import typing
from dataclasses import dataclass, field, fields, is_dataclass

from ..adversary.spec import AdversarySpec
from ..chain.params import ChainParams, fast_chain
from ..economy import FeeBudget, FeePolicy
from ..errors import FeeError, SpecError
from ..sim.network import LatencyModel
from ..workloads.graphs import DEFAULT_AMOUNT
from ..workloads.scenarios import DEFAULT_FUNDING, VALIDATOR_MODES

# ---------------------------------------------------------------------------
# Generic dataclass <-> dict serde (strict: unknown keys are errors)
# ---------------------------------------------------------------------------


def spec_to_dict(obj):
    """Recursively convert a spec dataclass tree into plain JSON types."""
    if is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: spec_to_dict(getattr(obj, f.name)) for f in fields(obj)}
    if isinstance(obj, (tuple, list)):
        return [spec_to_dict(item) for item in obj]
    if isinstance(obj, dict):
        return {key: spec_to_dict(value) for key, value in obj.items()}
    return obj


def _type_label(tp) -> str:
    return getattr(tp, "__name__", None) or str(tp)


def _coerce(value, tp, path: str):
    """Coerce a JSON-shaped ``value`` into the annotated type ``tp``.

    Strict about shapes (a dict where a float belongs is an error) but
    forgiving about JSON's lossy encodings: lists become tuples, ints
    are accepted for floats, nested dicts become their dataclasses.
    """
    if tp is typing.Any:
        return value
    origin = typing.get_origin(tp)
    if origin in (typing.Union, types.UnionType):
        arms = typing.get_args(tp)
        if value is None:
            if type(None) in arms:
                return None
            raise SpecError(f"{path}: may not be null")
        errors = []
        for arm in arms:
            if arm is type(None):
                continue
            try:
                return _coerce(value, arm, path)
            except SpecError as exc:
                errors.append(str(exc))
        raise SpecError(f"{path}: no union arm accepted {value!r} ({errors[0]})")
    if is_dataclass(tp):
        return spec_from_dict(tp, value, path=path)
    if origin is tuple:
        if not isinstance(value, (list, tuple)):
            raise SpecError(f"{path}: expected a list, got {type(value).__name__}")
        args = typing.get_args(tp)
        if len(args) == 2 and args[1] is Ellipsis:
            return tuple(
                _coerce(item, args[0], f"{path}[{i}]") for i, item in enumerate(value)
            )
        if len(args) != len(value):
            raise SpecError(
                f"{path}: expected exactly {len(args)} items, got {len(value)}"
            )
        return tuple(
            _coerce(item, arm, f"{path}[{i}]")
            for i, (item, arm) in enumerate(zip(value, args))
        )
    if origin is dict:
        if not isinstance(value, dict):
            raise SpecError(f"{path}: expected an object, got {type(value).__name__}")
        _, value_tp = typing.get_args(tp)
        return {
            str(key): _coerce(item, value_tp, f"{path}.{key}")
            for key, item in value.items()
        }
    if tp is bool:
        if isinstance(value, bool):
            return value
        raise SpecError(f"{path}: expected a bool, got {value!r}")
    if tp is int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise SpecError(f"{path}: expected an int, got {value!r}")
        return value
    if tp is float:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SpecError(f"{path}: expected a number, got {value!r}")
        return float(value)
    if tp is str:
        if not isinstance(value, str):
            raise SpecError(f"{path}: expected a string, got {value!r}")
        return value
    raise SpecError(f"{path}: unsupported spec field type {_type_label(tp)}")


def spec_from_dict(cls, data, path: str = ""):
    """Strictly build a spec dataclass from a plain dict.

    Unknown keys raise :class:`~repro.errors.SpecError` (naming the full
    dotted path), as do values of the wrong shape; omitted keys fall
    back to the dataclass defaults.
    """
    label = path or cls.__name__
    if not isinstance(data, dict):
        raise SpecError(f"{label}: expected an object, got {type(data).__name__}")
    hints = typing.get_type_hints(cls)
    known = {f.name: f for f in fields(cls)}
    unknown = sorted(set(data) - set(known))
    if unknown:
        raise SpecError(
            f"{label}: unknown key(s) {', '.join(map(repr, unknown))}; "
            f"expected a subset of {sorted(known)}"
        )
    kwargs = {}
    for name, value in data.items():
        kwargs[name] = _coerce(value, hints[name], f"{label}.{name}" if path else name)
    missing = [
        name
        for name, f in known.items()
        if name not in kwargs
        and f.default is dataclasses.MISSING
        and f.default_factory is dataclasses.MISSING
    ]
    if missing:
        raise SpecError(f"{label}: missing required key(s) {missing}")
    return cls(**kwargs)


# ---------------------------------------------------------------------------
# The spec tree
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LatencySpec:
    """Network latency distribution (see :class:`~repro.sim.network.LatencyModel`)."""

    base: float = 0.05
    jitter: float = 0.0

    def build(self) -> LatencyModel:
        return LatencyModel(base=self.base, jitter=self.jitter)


@dataclass(frozen=True)
class ChainOverride:
    """Per-chain parameter overrides on top of the scenario defaults.

    Unset fields (None) inherit :class:`ChainsSpec`'s defaults / the
    ``fast_chain`` preset values.
    """

    block_interval: float | None = None
    confirmation_depth: int | None = None
    max_messages_per_block: int | None = None
    deploy_fee: int | None = None
    call_fee: int | None = None
    transfer_fee: int | None = None


@dataclass(frozen=True)
class ChainsSpec:
    """The world's chains: how many, their names, and their parameters.

    Attributes:
        count: number of asset chains, auto-named ``chain-0`` … when
            ``ids`` is empty.
        ids: explicit asset-chain names (overrides ``count``).
        witness: the coordinating chain's id (always created).
        block_interval / confirmation_depth: defaults for every chain.
        overrides: per-chain-id parameter overrides.
        validator_mode: Section 4.3 evidence validation — "anchor",
            "full-replica", or "light-client".
        funding / funding_chunks: per-participant genesis balance and the
            number of UTXOs it is split into.
        extra_participants: names funded on *every* chain (whales for
            fee shocks) with ``extra_funding_chunks`` UTXOs each.
    """

    count: int = 2
    ids: tuple[str, ...] = ()
    witness: str = "witness"
    block_interval: float = 1.0
    confirmation_depth: int = 2
    overrides: dict[str, ChainOverride] = field(default_factory=dict)
    validator_mode: str = "anchor"
    funding: int = DEFAULT_FUNDING
    funding_chunks: int = 4
    extra_participants: tuple[str, ...] = ()
    extra_funding_chunks: int = 64

    def asset_ids(self) -> tuple[str, ...]:
        if self.ids:
            return self.ids
        return tuple(f"chain-{i}" for i in range(self.count))

    def build_params(self) -> dict[str, ChainParams]:
        """Materialize :class:`ChainParams` for every overridden chain."""
        params: dict[str, ChainParams] = {}
        for chain_id, o in self.overrides.items():
            base = fast_chain(
                chain_id,
                block_interval=(
                    self.block_interval
                    if o.block_interval is None
                    else o.block_interval
                ),
                confirmation_depth=(
                    self.confirmation_depth
                    if o.confirmation_depth is None
                    else o.confirmation_depth
                ),
            )
            changes: dict = {}
            if o.max_messages_per_block is not None:
                changes["max_messages_per_block"] = o.max_messages_per_block
            fee_changes = {
                key: value
                for key, value in (
                    ("deploy", o.deploy_fee),
                    ("call", o.call_fee),
                    ("transfer", o.transfer_fee),
                )
                if value is not None
            }
            if fee_changes:
                changes["fees"] = dataclasses.replace(base.fees, **fee_changes)
            params[chain_id] = base.with_overrides(**changes) if changes else base
        return params


@dataclass(frozen=True)
class FeeMarketSpec:
    """Fee-market economics (one :class:`~repro.economy.FeePolicy` for
    every chain), or FIFO mempools when disabled."""

    enabled: bool = False
    block_weight_budget: int | None = 16
    capacity_weight: int | None = 96
    min_relay_fee_rate: int = 1
    rbf_bump: float = 1.25
    deploy_weight: int = 4
    call_weight: int = 2
    transfer_weight: int = 1
    fifo: bool = False

    def build(self) -> FeePolicy | None:
        if not self.enabled:
            return None
        return FeePolicy(
            block_weight_budget=self.block_weight_budget,
            capacity_weight=self.capacity_weight,
            min_relay_fee_rate=self.min_relay_fee_rate,
            rbf_bump=self.rbf_bump,
            deploy_weight=self.deploy_weight,
            call_weight=self.call_weight,
            transfer_weight=self.transfer_weight,
            fifo=self.fifo,
        )


@dataclass(frozen=True)
class FeeBudgetSpec:
    """One swap class's fee envelope (see :class:`~repro.economy.FeeBudget`)."""

    cap: int = 4000
    fee_rate: int | None = None
    bump_factor: float = 2.0
    max_bumps: int = 3

    def build(self) -> FeeBudget:
        return FeeBudget(
            cap=self.cap,
            fee_rate=self.fee_rate,
            bump_factor=self.bump_factor,
            max_bumps=self.max_bumps,
        )


@dataclass(frozen=True)
class CrashSpec:
    """Mid-protocol crash injection over the traffic stream.

    Two modes:

    * random — ``rate`` marks that fraction of swaps (independent RNG
      stream) to crash a uniformly chosen participant ``uniform(*window)``
      seconds after the swap's arrival;
    * deterministic — ``participant`` + ``delay`` crash that participant
      of *every* swap exactly ``delay`` seconds after its arrival.  A
      single-letter ``participant`` names the swap-local role (``"a"``,
      ``"b"`` …, resolved per swap against the traffic prefix); anything
      longer is taken as a literal participant name.

    ``down_for`` (both modes) is the recovery delay (None = never).
    """

    rate: float = 0.0
    window: tuple[float, float] = (1.0, 12.0)
    down_for: float | None = None
    participant: str | None = None
    delay: float | None = None


@dataclass(frozen=True)
class FeeShockSpec:
    """A whale demand burst: ``count`` high-fee transfers at one instant.

    ``chain_id=None`` floods the protocol's contended chain (the witness
    chain for AC3WN/mixed runs, else the first asset chain).  ``at`` is
    seconds after warm-up.  The ``whale`` participant is automatically
    funded on every chain.
    """

    at: float = 5.0
    count: int = 32
    fee_rate: int = 8
    chain_id: str | None = None
    whale: str = "whale"


@dataclass(frozen=True)
class TrafficSpec:
    """The workload: which generator produces the AC2T stream, and how.

    ``generator`` names an entry in the traffic registry
    (:mod:`repro.experiment.registry`): ``"poisson"`` (homogeneous
    open-loop arrivals) and ``"congestion"`` (heterogeneous LOW/HIGH fee
    budgets) ship built in; new workloads register without editing this
    file.  Generator-specific knobs (``low_fee_share`` and the budget
    classes) are ignored by generators that do not use them.
    """

    generator: str = "poisson"
    num_swaps: int = 50
    rate: float = 10.0
    participants_per_swap: int = 2
    amount: int = DEFAULT_AMOUNT
    start: float = 0.0
    prefix: str = "swap"
    crash: CrashSpec = field(default_factory=CrashSpec)
    #: Uniform per-swap budget for generators with one swap class
    #: (None = unbudgeted traffic, fees at chain defaults).
    fee_budget: FeeBudgetSpec | None = None
    #: Congestion-generator knobs: class mix and per-class budgets
    #: (None = the stock LOW/HIGH budgets from repro.workloads.scenarios).
    low_fee_share: float = 0.5
    low_budget: FeeBudgetSpec | None = None
    high_budget: FeeBudgetSpec | None = None


@dataclass(frozen=True)
class EngineSpec:
    """Execution options for the :class:`~repro.engine.SwapEngine`."""

    #: Event-driven driving (block/recovery hooks plus phase-deadline
    #: timeouts, the default); False reverts to pure poll ticks for A/B
    #: cadence comparisons.
    eager: bool = True
    warm_up_blocks: int = 2
    max_events: int = 50_000_000
    #: Width (seconds) of the deterministic per-swap submission jitter
    #: applied to fee-budgeted swaps' block-hook reactions.  None = a
    #: quarter of the fastest involved chain's block interval (the old
    #: poll cadence's natural stagger); 0 disables jitter.
    jitter: float | None = None


@dataclass(frozen=True)
class MetricsSpec:
    """The live :class:`~repro.obs.MetricsRegistry` (off by default).

    Attributes:
        enabled: fold the trace event stream into a label-aware metrics
            registry, exported into ``reports.metrics`` and via
            ``repro run --metrics OUT``.  Arms the event stream even
            when ``obs.enabled`` is off (the collector then retains
            nothing — it only dispatches to the registry tap).
        latency_buckets: swap-latency histogram boundaries in
            sim-seconds, strictly increasing; empty = the stock
            :data:`~repro.obs.DEFAULT_LATENCY_BUCKETS`.  Fixed at
            registration so snapshots are a pure function of the spec.
    """

    enabled: bool = False
    latency_buckets: tuple[float, ...] = ()


@dataclass(frozen=True)
class AlertRulesSpec:
    """Declarative thresholds for the invariant monitor's rules.

    Every rule is deterministic over the event stream; a ``None``
    threshold disables that rule.  Defaults are chosen so a clean,
    honest run fires nothing: alerts mean something broke or crossed a
    policy line, not that monitoring is on.

    Attributes:
        atomicity: alert whenever a swap settles non-atomically.
        reorg_depth: alert when a reorg abandons at least this many
            blocks (None = the spec's ``chains.confirmation_depth`` —
            i.e. the depth-d defense was breached).  0 disables.
        stall_multiple: alert when a swap makes no phase progress for
            longer than this multiple of the base deadline (slowest
            block interval × confirmation depth).  None disables.
        mempool_saturation: alert when a mempool's pending depth
            reaches this many messages (None = off; fires once per
            crossing, re-arming when the pool drains).
        priced_out_rate: alert when the priced-out share of outcomes
            inside ``priced_out_window`` reaches this fraction with at
            least ``priced_out_min`` casualties (None = off).
    """

    atomicity: bool = True
    reorg_depth: int | None = None
    stall_multiple: float | None = 20.0
    mempool_saturation: int | None = None
    priced_out_rate: float | None = None
    priced_out_window: float = 30.0
    priced_out_min: int = 5


@dataclass(frozen=True)
class MonitorSpec:
    """The online :class:`~repro.obs.InvariantMonitor` (off by default).

    Attributes:
        enabled: evaluate the alert rules in-stream; firings land in
            ``reports.alerts`` and, when tracing, as ``alert`` events.
        rules: the rule thresholds (see :class:`AlertRulesSpec`).
        stderr: additionally print each alert to stderr the moment it
            fires (the live-operator view; off keeps runs quiet and
            output deterministic for tests).
    """

    enabled: bool = False
    rules: AlertRulesSpec = field(default_factory=AlertRulesSpec)
    stderr: bool = False


@dataclass(frozen=True)
class ObsSpec:
    """The flight recorder (see :mod:`repro.obs`): off by default.

    Attributes:
        enabled: attach a :class:`~repro.obs.TraceCollector` to the run
            (disabled runs are byte- and time-identical to untraced ones).
        categories: trace categories to record; empty means all of
            :data:`repro.obs.CATEGORIES`.  Also scopes what the metrics
            registry and monitor can see when they are enabled.
        ring_size: bounded flight-recorder mode — keep only the newest
            N events (None = unbounded).
        sample_interval: sim-seconds between :class:`TimeSeriesSampler`
            gauge emissions (only when the ``sample`` category is on).
        sample_window: trailing window for the sampler's windowed
            metrics view (None = four sample intervals).
        metrics: the live metrics registry (see :class:`MetricsSpec`).
        monitor: the online invariant monitor (see :class:`MonitorSpec`).
    """

    enabled: bool = False
    categories: tuple[str, ...] = ()
    ring_size: int | None = None
    sample_interval: float = 10.0
    sample_window: float | None = None
    metrics: MetricsSpec = field(default_factory=MetricsSpec)
    monitor: MonitorSpec = field(default_factory=MonitorSpec)


@dataclass(frozen=True)
class ExperimentSpec:
    """One complete, runnable, serializable experiment description."""

    name: str = "experiment"
    seed: int = 0
    #: A registered protocol name, or "mixed" to round-robin the four
    #: built-in protocols across the traffic stream.
    protocol: str = "ac3wn"
    chains: ChainsSpec = field(default_factory=ChainsSpec)
    latency: LatencySpec = field(default_factory=LatencySpec)
    fee_market: FeeMarketSpec = field(default_factory=FeeMarketSpec)
    traffic: TrafficSpec = field(default_factory=TrafficSpec)
    engine: EngineSpec = field(default_factory=EngineSpec)
    fee_shocks: tuple[FeeShockSpec, ...] = ()
    #: The adversarial roster (all actors disabled by default); see
    #: :mod:`repro.adversary.spec`.
    adversary: AdversarySpec = field(default_factory=AdversarySpec)
    #: The flight recorder (off by default); see :mod:`repro.obs`.
    obs: ObsSpec = field(default_factory=ObsSpec)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        return spec_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentSpec":
        return spec_from_dict(cls, data)

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"spec is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    # -- validation --------------------------------------------------------

    def validate(self) -> "ExperimentSpec":
        """Check semantic constraints; returns self for chaining."""
        from ..engine.engine import registered_protocols
        from .registry import registered_traffic

        def fail(message: str) -> None:
            raise SpecError(f"invalid spec {self.name!r}: {message}")

        if self.protocol != "mixed" and self.protocol not in registered_protocols():
            fail(
                f"unknown protocol {self.protocol!r}; expected 'mixed' or one "
                f"of {registered_protocols()}"
            )
        if self.traffic.generator not in registered_traffic():
            fail(
                f"unknown traffic generator {self.traffic.generator!r}; "
                f"registered: {registered_traffic()}"
            )
        if not self.chains.ids and self.chains.count < 1:
            fail("chains.count must be at least 1")
        if len(set(self.chains.asset_ids())) != len(self.chains.asset_ids()):
            fail("chains.ids contains duplicates")
        if self.chains.witness in self.chains.asset_ids():
            fail("the witness chain must be distinct from the asset chains")
        if self.chains.validator_mode not in VALIDATOR_MODES:
            fail(
                f"chains.validator_mode must be one of {VALIDATOR_MODES}, "
                f"got {self.chains.validator_mode!r}"
            )
        if self.chains.block_interval <= 0:
            fail("chains.block_interval must be positive")
        if self.chains.confirmation_depth < 1:
            fail("chains.confirmation_depth must be at least 1")
        if self.chains.funding < 1 or self.chains.funding_chunks < 1:
            fail("chains.funding and chains.funding_chunks must be at least 1")
        known_chains = set(self.chains.asset_ids()) | {self.chains.witness}
        for chain_id, o in self.chains.overrides.items():
            if chain_id not in known_chains:
                fail(f"chains.overrides names unknown chain {chain_id!r}")
            if o.block_interval is not None and o.block_interval <= 0:
                fail(f"chains.overrides.{chain_id}.block_interval must be positive")
            if o.confirmation_depth is not None and o.confirmation_depth < 1:
                fail(
                    f"chains.overrides.{chain_id}.confirmation_depth must be at least 1"
                )
            if o.max_messages_per_block is not None and o.max_messages_per_block < 1:
                fail(
                    f"chains.overrides.{chain_id}.max_messages_per_block "
                    f"must be at least 1"
                )
            for fee_name in ("deploy_fee", "call_fee", "transfer_fee"):
                fee = getattr(o, fee_name)
                if fee is not None and fee < 0:
                    fail(
                        f"chains.overrides.{chain_id}.{fee_name} must be non-negative"
                    )
        if self.latency.base < 0 or self.latency.jitter < 0:
            fail("latency.base and latency.jitter must be non-negative")
        if self.traffic.num_swaps < 1:
            fail("traffic.num_swaps must be at least 1")
        if self.traffic.rate <= 0:
            fail("traffic.rate must be positive")
        if self.traffic.participants_per_swap < 2:
            fail("traffic.participants_per_swap must be at least 2")
        if self.traffic.amount < 1:
            fail("traffic.amount must be at least 1")
        if not 0.0 <= self.traffic.crash.rate <= 1.0:
            fail("traffic.crash.rate must be within [0, 1]")
        lo, hi = self.traffic.crash.window
        if lo < 0 or hi < lo:
            fail("traffic.crash.window must satisfy 0 <= lo <= hi")
        crash = self.traffic.crash
        if (crash.participant is None) != (crash.delay is None):
            fail("traffic.crash.participant and .delay must be set together")
        if crash.participant is not None:
            if crash.rate > 0.0:
                fail("traffic.crash: rate and participant/delay are exclusive")
            if crash.delay < 0:
                fail("traffic.crash.delay must be non-negative")
        if not 0.0 <= self.traffic.low_fee_share <= 1.0:
            fail("traffic.low_fee_share must be within [0, 1]")
        if self.protocol in ("nolan", "mixed") and self.traffic.participants_per_swap != 2:
            # "mixed" round-robins Nolan over part of the traffic.
            fail(
                f"protocol {self.protocol!r} includes Nolan, which is strictly "
                f"two-party: traffic.participants_per_swap must be 2"
            )
        if self.engine.warm_up_blocks < 0:
            fail("engine.warm_up_blocks must be non-negative")
        if self.engine.max_events < 1:
            fail("engine.max_events must be positive")
        if self.engine.jitter is not None and self.engine.jitter < 0:
            fail("engine.jitter must be non-negative")
        for index, shock in enumerate(self.fee_shocks):
            if shock.count < 1 or shock.fee_rate < 1:
                fail(f"fee_shocks[{index}]: count and fee_rate must be at least 1")
            if shock.at < 0:
                fail(f"fee_shocks[{index}]: at must be non-negative")
            if shock.chain_id is not None and shock.chain_id not in known_chains:
                fail(f"fee_shocks[{index}] names unknown chain {shock.chain_id!r}")
            if not shock.whale:
                fail(f"fee_shocks[{index}]: whale needs a name")
        self.adversary.validate(fail, known_chains)
        from ..obs.trace import CATEGORIES as TRACE_CATEGORIES

        for category in self.obs.categories:
            if category not in TRACE_CATEGORIES:
                fail(
                    f"obs.categories names unknown category {category!r}; "
                    f"expected a subset of {TRACE_CATEGORIES}"
                )
        if self.obs.ring_size is not None and self.obs.ring_size < 1:
            fail("obs.ring_size must be at least 1")
        if self.obs.sample_interval <= 0:
            fail("obs.sample_interval must be positive")
        if self.obs.sample_window is not None and self.obs.sample_window <= 0:
            fail("obs.sample_window must be positive")
        buckets = self.obs.metrics.latency_buckets
        if any(b <= 0 for b in buckets):
            fail("obs.metrics.latency_buckets must be positive")
        if any(b2 <= b1 for b1, b2 in zip(buckets, buckets[1:])):
            fail("obs.metrics.latency_buckets must be strictly increasing")
        rules = self.obs.monitor.rules
        if rules.reorg_depth is not None and rules.reorg_depth < 0:
            fail("obs.monitor.rules.reorg_depth must be non-negative")
        if rules.stall_multiple is not None and rules.stall_multiple <= 0:
            fail("obs.monitor.rules.stall_multiple must be positive")
        if rules.mempool_saturation is not None and rules.mempool_saturation < 1:
            fail("obs.monitor.rules.mempool_saturation must be at least 1")
        if rules.priced_out_rate is not None and not 0.0 < rules.priced_out_rate <= 1.0:
            fail("obs.monitor.rules.priced_out_rate must be within (0, 1]")
        if rules.priced_out_window <= 0:
            fail("obs.monitor.rules.priced_out_window must be positive")
        if rules.priced_out_min < 1:
            fail("obs.monitor.rules.priced_out_min must be at least 1")
        # Building the economy objects runs their own validation too;
        # surface their FeeError as a spec error so callers (and the
        # CLI's exit-2 path) only ever see SpecError for a bad spec.
        try:
            self.fee_market.build()
            for budget in (
                self.traffic.fee_budget,
                self.traffic.low_budget,
                self.traffic.high_budget,
            ):
                if budget is not None:
                    budget.build()
        except FeeError as exc:
            fail(str(exc))
        return self


# ---------------------------------------------------------------------------
# Dotted-path overrides: the CLI's --set key=value mechanism
# ---------------------------------------------------------------------------


def _parse_override_value(raw):
    """Interpret a ``--set`` value: JSON first, bare string as fallback."""
    if not isinstance(raw, str):
        return raw
    try:
        return json.loads(raw)
    except json.JSONDecodeError:
        return raw


def _override_one(obj, path: str, full_path: str, raw):
    head, _, rest = path.partition(".")
    if not is_dataclass(obj) or isinstance(obj, type):
        raise SpecError(
            f"override {full_path!r}: {full_path[: -len(path) - 1]!r} "
            f"has no nested fields"
        )
    known = {f.name for f in fields(obj)}
    if head not in known:
        raise SpecError(
            f"override {full_path!r}: unknown field {head!r}; "
            f"expected one of {sorted(known)}"
        )
    if rest:
        child = _override_one(getattr(obj, head), rest, full_path, raw)
        return dataclasses.replace(obj, **{head: child})
    hint = typing.get_type_hints(type(obj))[head]
    value = _coerce(_parse_override_value(raw), hint, full_path)
    return dataclasses.replace(obj, **{head: value})


def apply_overrides(spec: ExperimentSpec, overrides: dict) -> ExperimentSpec:
    """Apply dotted-path overrides to a spec, returning a new spec.

    Keys are dotted field paths into the spec tree
    (``"traffic.rate"``, ``"fee_market.enabled"``); values may be
    already-typed Python values or ``--set``-style strings, which are
    parsed as JSON with a bare-string fallback (so ``--set
    chains.witness=hub`` and ``--set traffic.rate=12.5`` both work).
    Unknown paths and type mismatches raise
    :class:`~repro.errors.SpecError`.
    """
    for path, raw in overrides.items():
        spec = _override_one(spec, path, path, raw)
    return spec


def parse_set_args(pairs: list[str]) -> dict:
    """Parse CLI ``--set key=value`` strings into an overrides dict."""
    overrides: dict = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise SpecError(
                f"--set expects key=value, got {pair!r} "
                f"(example: --set traffic.rate=12.0)"
            )
        overrides[key.strip()] = value
    return overrides
