"""Traffic-generator registry: pluggable workloads for experiment specs.

A traffic generator turns an :class:`~repro.experiment.spec.ExperimentSpec`
into the list of :class:`~repro.workloads.scenarios.TrafficItem` the
engine will execute.  Generators register by name; a spec selects one
via ``traffic.generator``, so new workloads plug in without editing the
spec schema or the runner:

    from repro.experiment import register_traffic

    def burst(spec):
        ...
        return items

    register_traffic("burst", burst)

The built-in generators mirror the two workload families of
:mod:`repro.workloads.scenarios`: ``"poisson"`` (homogeneous open-loop
arrivals, optional uniform fee budget) and ``"congestion"``
(heterogeneous LOW/HIGH fee-budget classes) — both thin
parameterizations of the shared :func:`~repro.workloads.scenarios.swap_traffic`
core.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Callable

from ..errors import SpecError
from ..workloads.scenarios import (
    CrashPlan,
    TrafficItem,
    congestion_swap_traffic,
    poisson_swap_traffic,
)

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from .spec import ExperimentSpec

TrafficGenerator = Callable[["ExperimentSpec"], list[TrafficItem]]

_TRAFFIC_REGISTRY: dict[str, TrafficGenerator] = {}


def register_traffic(
    name: str, generator: TrafficGenerator, replace: bool = False
) -> None:
    """Register a traffic generator under ``name``."""
    if name in _TRAFFIC_REGISTRY and not replace:
        raise SpecError(f"traffic generator {name!r} is already registered")
    _TRAFFIC_REGISTRY[name] = generator


def unregister_traffic(name: str) -> None:
    """Remove a plug-in generator from the registry."""
    _TRAFFIC_REGISTRY.pop(name, None)


def registered_traffic() -> tuple[str, ...]:
    """Every registered generator name, registration order."""
    return tuple(_TRAFFIC_REGISTRY)


def traffic_generator(name: str) -> TrafficGenerator:
    generator = _TRAFFIC_REGISTRY.get(name)
    if generator is None:
        raise SpecError(
            f"unknown traffic generator {name!r}; registered: "
            f"{', '.join(sorted(_TRAFFIC_REGISTRY))}"
        )
    return generator


# ---------------------------------------------------------------------------
# Built-in generators
# ---------------------------------------------------------------------------


def _explicit_crashes(spec: "ExperimentSpec", items: list[TrafficItem]) -> list[TrafficItem]:
    """Attach the spec's deterministic crash plan (if any) to every swap.

    A single-letter ``crash.participant`` is resolved per swap against
    that swap's namespaced roles (``swap0007.b``); longer names are used
    verbatim.
    """
    crash = spec.traffic.crash
    if crash.participant is None:
        return items
    out: list[TrafficItem] = []
    for item in items:
        victim = crash.participant
        names = item.graph.participant_names()
        if victim not in names and len(victim) == 1:
            suffixed = [n for n in names if n.endswith(f".{victim}")]
            if not suffixed:
                raise SpecError(
                    f"traffic.crash.participant {victim!r} matches no role "
                    f"of swap participants {names}"
                )
            victim = suffixed[0]
        out.append(
            dataclasses.replace(
                item,
                crash=CrashPlan(
                    participant=victim, delay=crash.delay, down_for=crash.down_for
                ),
            )
        )
    return out


def _poisson(spec: "ExperimentSpec") -> list[TrafficItem]:
    t = spec.traffic
    return _explicit_crashes(spec, poisson_swap_traffic(
        t.num_swaps,
        rate=t.rate,
        seed=spec.seed,
        chain_ids=list(spec.chains.asset_ids()),
        participants_per_swap=t.participants_per_swap,
        amount=t.amount,
        start=t.start,
        prefix=t.prefix,
        crash_rate=t.crash.rate,
        crash_window=t.crash.window,
        crash_down_for=t.crash.down_for,
        fee_budget=None if t.fee_budget is None else t.fee_budget.build(),
    ))


def _congestion(spec: "ExperimentSpec") -> list[TrafficItem]:
    t = spec.traffic
    return _explicit_crashes(spec, congestion_swap_traffic(
        t.num_swaps,
        rate=t.rate,
        seed=spec.seed,
        chain_ids=list(spec.chains.asset_ids()),
        participants_per_swap=t.participants_per_swap,
        amount=t.amount,
        start=t.start,
        prefix=t.prefix,
        low_fee_share=t.low_fee_share,
        low_budget=None if t.low_budget is None else t.low_budget.build(),
        high_budget=None if t.high_budget is None else t.high_budget.build(),
        crash_rate=t.crash.rate,
        crash_window=t.crash.window,
        crash_down_for=t.crash.down_for,
    ))


register_traffic("poisson", _poisson)
register_traffic("congestion", _congestion)
