"""Command-line interface: run the paper's experiments from a shell.

::

    python -m repro swap --protocol ac3wn --diameter 3
    python -m repro figure10 --max-diameter 8
    python -m repro crash-sweep
    python -m repro witness-depth --value-at-risk 1000000
    python -m repro table1

Each subcommand builds a fresh simulated world, runs the experiment, and
prints paper-style output.  Seeds default to 0 for reproducibility.
"""

from __future__ import annotations

import argparse
import sys

from .analysis.latency import figure10_series
from .analysis.security import PAPER_WITNESS_CANDIDATES
from .analysis.throughput import TABLE1_ROWS, ac2t_throughput
from .core.ac3wn import run_ac3wn
from .core.herlihy import run_herlihy
from .core.nolan import run_nolan
from .sim.failures import FailureSchedule
from .workloads.graphs import ring_with_diameter, two_party_swap
from .workloads.scenarios import build_scenario


def _cmd_swap(args: argparse.Namespace) -> int:
    """Run one AC2T end to end and print the outcome."""
    if args.diameter == 2:
        graph = two_party_swap(chain_a="chain-0", chain_b="chain-1", timestamp=args.seed)
    else:
        chain_ids = [f"chain-{i}" for i in range(args.diameter)]
        graph = ring_with_diameter(args.diameter, chain_ids=chain_ids, timestamp=args.seed)
    env = build_scenario(graph=graph, seed=args.seed, validator_mode=args.validator_mode)
    env.warm_up(2)
    if args.protocol == "ac3wn":
        outcome = run_ac3wn(env, graph, witness_chain_id="witness")
    elif args.protocol == "herlihy":
        outcome = run_herlihy(env, graph)
    else:
        outcome = run_nolan(env, graph)
    print(outcome.summary())
    for name, ts in sorted(outcome.phase_times.items(), key=lambda kv: kv[1]):
        print(f"  {name:20s} t={ts:8.2f}")
    return 0 if outcome.is_atomic else 1


def _cmd_figure10(args: argparse.Namespace) -> int:
    """Print Figure 10's analytic latency curves."""
    print(f"{'Diam(D)':>8} | {'Herlihy (Δ)':>12} | {'AC3WN (Δ)':>10} | speedup")
    for point in figure10_series(args.max_diameter):
        print(
            f"{point.diameter:>8} | {point.herlihy_deltas:>12.0f} | "
            f"{point.ac3wn_deltas:>10.0f} | {point.speedup:.1f}x"
        )
    return 0


def _cmd_crash_sweep(args: argparse.Namespace) -> int:
    """Sweep Bob's crash onset under Nolan and AC3WN (Section 1)."""
    print(f"{'crash at':>9} | {'Nolan (HTLC)':>24} | {'AC3WN':>22}")
    violations = 0
    for i, start in enumerate((0.0, 4.5, 6.5, 8.5, 12.0)):
        results = []
        for protocol in ("nolan", "ac3wn"):
            graph = two_party_swap(chain_a="a", chain_b="b", timestamp=args.seed + i)
            env = build_scenario(graph=graph, seed=args.seed + i)
            env.apply_failures(FailureSchedule().crash("bob", start=start, end=start + 500))
            env.warm_up(2)
            if protocol == "nolan":
                outcome = run_nolan(env, graph)
            else:
                outcome = run_ac3wn(
                    env, graph, witness_chain_id="witness", settle_timeout=600.0
                )
            results.append(outcome)
            if protocol == "nolan" and not outcome.is_atomic:
                violations += 1
        nolan, ac3wn = results
        print(
            f"{start:>8.1f}s | {nolan.decision:>12}/atomic={str(nolan.is_atomic):<5} "
            f"| {ac3wn.decision:>10}/atomic={str(ac3wn.is_atomic):<5}"
        )
    print(f"\nHTLC atomicity violations: {violations}; AC3WN: 0")
    return 0


def _cmd_witness_depth(args: argparse.Namespace) -> int:
    """Section 6.3: required depth per candidate witness."""
    va = args.value_at_risk
    print(f"value at risk: ${va:,.0f}")
    for choice in PAPER_WITNESS_CANDIDATES:
        depth = choice.depth_for(va)
        hours = choice.confirmation_latency_hours(va)
        print(f"  {choice.chain_id:>14}: d = {depth:>6}  (~{hours:.1f} h of burial)")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    """Table 1 plus the paper's throughput example."""
    for name, _, tps in TABLE1_ROWS:
        print(f"  {name:>14}: {tps:>3} tps")
    example = ac2t_throughput(["ethereum", "litecoin"], "bitcoin")
    print(
        f"\nETH+LTC witnessed by Bitcoin: {example.tps} tps "
        f"(bottleneck: {example.bottleneck})"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Atomic Commitment Across Blockchains' (VLDB 2020)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    swap = sub.add_parser("swap", help="run one AC2T end to end")
    swap.add_argument("--protocol", choices=["ac3wn", "herlihy", "nolan"], default="ac3wn")
    swap.add_argument("--diameter", type=int, default=2)
    swap.add_argument("--seed", type=int, default=0)
    swap.add_argument(
        "--validator-mode",
        choices=["anchor", "full-replica", "light-client"],
        default="anchor",
    )
    swap.set_defaults(func=_cmd_swap)

    fig10 = sub.add_parser("figure10", help="print Figure 10's latency curves")
    fig10.add_argument("--max-diameter", type=int, default=14)
    fig10.set_defaults(func=_cmd_figure10)

    sweep = sub.add_parser("crash-sweep", help="Section 1 crash comparison")
    sweep.add_argument("--seed", type=int, default=0)
    sweep.set_defaults(func=_cmd_crash_sweep)

    depth = sub.add_parser("witness-depth", help="Section 6.3 depth rule")
    depth.add_argument("--value-at-risk", type=float, default=1_000_000.0)
    depth.set_defaults(func=_cmd_witness_depth)

    table1 = sub.add_parser("table1", help="Table 1 + Section 6.4 example")
    table1.set_defaults(func=_cmd_table1)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
