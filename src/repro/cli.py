"""Command-line interface: every experiment is a spec; ``run`` runs it.

::

    python -m repro run --preset congestion --set traffic.num_swaps=60 --json out.json
    python -m repro run --spec my_experiment.json --set engine.eager=false
    python -m repro run --preset security --trace out.jsonl
    python -m repro run --preset security --metrics out.prom --alert-stderr
    python -m repro run --list-presets [--json]
    python -m repro serve --preset serve-steady --request-log reqs.jsonl
    python -m repro serve --preset serve-flash-crowd --max-swaps 40 --checkpoint ck.json
    python -m repro serve --restore ck.json --json out.json
    python -m repro replay reqs.jsonl --request-log replayed.jsonl
    python -m repro trace out.jsonl
    python -m repro trace out.jsonl --swap 3
    python -m repro trace out.jsonl --series series.csv
    python -m repro alerts out.jsonl
    python -m repro sweep --preset figure10 --workers 4 --csv out.csv
    python -m repro sweep --preset security-matrix --workers 4 --resume runs/sec
    python -m repro sweep --preset security-smoke --workers 2 --store camp.db
    python -m repro sweep --spec my_sweep.json --workers 2 --json out.json
    python -m repro sweep --list-presets [--json]
    python -m repro query "commit_rate < 0.5 AND protocol='nolan'" --db camp.db
    python -m repro compare camp_old.db camp_new.db --threshold 0.05
    python -m repro store ingest --db camp.db runs/security bench-timings.json
    python -m repro store list --db camp.db
    python -m repro store artifact --db camp.db --point 3 -o point3.json
    python -m repro swap --protocol ac3wn --diameter 3
    python -m repro engine --swaps 50 --rate 10
    python -m repro congestion --fee-shock 32
    python -m repro crash-sweep
    python -m repro figure10 --max-diameter 8
    python -m repro table1
    python -m repro witness-depth --value-at-risk 1000000

``run`` is the single-scenario entry point: it resolves a named preset
or a JSON spec file into an :class:`~repro.experiment.ExperimentSpec`,
applies ``--set`` dotted-path overrides, executes it through
:func:`~repro.experiment.run_experiment`, prints paper-style tables, and
can export the full :class:`~repro.experiment.ExperimentResult` artifact
as JSON.  ``sweep`` is its multi-point sibling: a named sweep campaign
(or a ``SweepSpec`` JSON file) expands into N experiment points,
executes them across ``--workers`` processes, prints the joined summary
table, and exports the campaign as CSV and/or JSON — one command per
paper figure.  ``serve`` swaps the fixed horizon for a live session
(:mod:`repro.service`): pluggable traffic sources, an in-process
submission API, a replayable request log, and mid-flight checkpoints
that ``--restore`` resumes with byte-identical subsequent behavior;
``replay`` re-executes a recorded log, reproducing outcomes exactly.  The datastore commands sit on top of the campaign
database (:mod:`repro.store`): ``sweep --store`` archives every point
durably, ``query`` evaluates an indexed predicate over stored points,
``compare`` joins two campaigns and flags metric regressions, and
``store ingest|list|artifact`` import and inspect existing artifacts.
The legacy scenario subcommands (``swap``, ``engine``,
``congestion``, ``crash-sweep``) are thin aliases that translate their
flags into preset overrides and call the same pipeline; the analytic
printouts (``figure10``, ``table1``, ``witness-depth``) need no
simulation at all.  Seeds default to 0 for reproducibility.
"""

from __future__ import annotations

import argparse
import contextlib
import dataclasses
import json as _json
import sys

from .analysis.latency import figure10_series
from .analysis.security import PAPER_WITNESS_CANDIDATES
from .analysis.throughput import TABLE1_ROWS, ac2t_throughput
from .errors import ServiceError, SpecError, StoreError, TraceError
from .experiment import (
    ExperimentResult,
    ExperimentSpec,
    apply_overrides,
    parse_set_args,
    preset_description,
    preset_names,
    preset_spec,
    run_experiment,
)
from .sweeps import (
    SweepResult,
    SweepRunner,
    SweepSpec,
    sweep_description,
    sweep_names,
    sweep_spec,
)
from .workloads.scenarios import LOW_FEE_BUDGET

# ---------------------------------------------------------------------------
# Result printing
# ---------------------------------------------------------------------------


def _print_throughput(result: ExperimentResult) -> None:
    print(
        f"{'protocol':>8} | {'swaps':>5} | {'commit':>6} | {'viol':>4} | "
        f"{'swaps/s':>8} | {'p50':>7} | {'p99':>7} | {'peak':>4}"
    )
    for row in result.throughput:
        peak = str(row.max_in_flight) if row.max_in_flight else "-"
        print(
            f"{row.protocol:>8} | {row.total:>5} | {row.commit_rate:>6.1%} | "
            f"{row.atomicity_violations:>4} | {row.swaps_per_second:>8.2f} | "
            f"{row.p50_latency:>6.1f}s | {row.p99_latency:>6.1f}s | "
            f"{peak:>4}"
        )


def _print_fee_market(result: ExperimentResult) -> None:
    spec, env = result.spec, result.env

    # Fee-class breakdown: who did congestion price out?
    low_cap = (
        spec.traffic.low_budget.cap
        if spec.traffic.low_budget is not None
        else LOW_FEE_BUDGET.cap
    )
    print(
        f"{'class':>6} | {'swaps':>5} | {'commit':>6} | {'priced out':>10} | "
        f"{'fee/commit':>10}"
    )
    for label, wanted in (("low", True), ("high", False)):
        slice_ = [
            o
            for o in result.outcomes
            if (o.fee_cap is not None and o.fee_cap <= low_cap) == wanted
        ]
        if not slice_:
            continue
        committed = [o for o in slice_ if o.decision == "commit"]
        fee_per = (
            sum(o.fees_paid for o in committed) / len(committed) if committed else 0.0
        )
        print(
            f"{label:>6} | {len(slice_):>5} | "
            f"{len(committed) / len(slice_):>6.1%} | "
            f"{sum(1 for o in slice_ if o.priced_out):>10} | {fee_per:>10.1f}"
        )

    print(
        f"\n{'protocol':>8} | {'swaps':>5} | {'commit':>6} | {'priced':>6} | "
        f"{'evict':>5} | {'bumps':>5} | {'fee/commit':>10} | {'model':>7} | premium"
    )
    for row in result.congestion_cost or ():
        print(
            f"{row.protocol:>8} | {row.swaps:>5} | "
            f"{row.committed / row.swaps if row.swaps else 0.0:>6.1%} | "
            f"{row.priced_out:>6} | {row.evictions:>5} | {row.fee_bumps:>5} | "
            f"{row.fee_per_commit:>10.1f} | {row.model_fee_per_commit:>7.1f} | "
            f"{row.congestion_premium:.2f}x"
        )

    print(
        f"\n{'chain':>10} | {'mined':>5} | {'evicted':>7} | {'replaced':>8} | "
        f"{'rej fee':>7} | {'miner fees':>10}"
    )
    for chain_id in sorted(env.mempools):
        pool = env.mempools[chain_id]
        miner = env.miners[chain_id]
        print(
            f"{chain_id:>10} | {miner.blocks_mined:>5} | "
            f"{getattr(pool, 'evicted', 0):>7} | {getattr(pool, 'replaced', 0):>8} | "
            f"{getattr(pool, 'rejected_fee', 0):>7} | {miner.fees_earned:>10}"
        )


def _print_adversary(result: ExperimentResult) -> None:
    report = result.engine_result.adversary or {}
    reorg = report.get("reorg")
    if reorg is not None:
        print(
            f"adversary: reorg attacker on {reorg['chain_id']!r} "
            f"(budget {reorg['budget_blocks']} blocks, required depth "
            f"{reorg['required_depth']}): {reorg['attacks_launched']} launched, "
            f"{reorg['attacks_forgone']} forgone, {reorg['reorgs_won']} won, "
            f"{reorg['reorgs_lost']} lost, ${reorg['cost_spent']:,.0f} spent"
        )
    for kind in ("censor", "byzantine", "eclipse"):
        actor = report.get(kind)
        if actor is None:
            continue
        detail = {
            "censor": lambda a: f"{a['messages_censored']} messages censored on {a['chain_id']!r}",
            "byzantine": lambda a: f"{a['swaps_corrupted']} swaps corrupted ({a['behavior']})",
            "eclipse": lambda a: f"{a['swaps_eclipsed']} swaps eclipsed at phase {a['phase']!r}",
        }[kind](actor)
        print(f"adversary: {kind}: {detail}")
    reorgs = {
        chain_id: count
        for chain_id, count in sorted(result.engine_result.chain_reorgs.items())
        if count
    }
    if reorgs:
        print(f"reorgs observed: {reorgs}")


def print_result(result: ExperimentResult) -> None:
    """Paper-style tables for one experiment run."""
    metrics = result.metrics
    print(f"experiment {result.spec.name!r} (seed {result.spec.seed})")
    _print_throughput(result)
    if result.spec.fee_market.enabled:
        print()
        _print_fee_market(result)
    if result.spec.adversary.any_enabled:
        print()
        _print_adversary(result)
    crashes = (
        f", {metrics.injected_crashes} injected crashes"
        if metrics.injected_crashes
        else ""
    )
    fee_market = (
        f"priced out {metrics.priced_out} ({metrics.priced_out_rate:.1%}), "
        f"{metrics.evictions} evictions, {metrics.fee_bumps} fee bumps, "
        if result.spec.fee_market.enabled
        else ""
    )
    print(
        f"\n{metrics.total} swaps over {metrics.makespan:.1f} simulated seconds "
        f"(peak {metrics.max_in_flight} in flight); commit rate "
        f"{metrics.commit_rate:.1%}, {fee_market}"
        f"{metrics.atomicity_violations} atomicity violations{crashes}"
    )


def _finish_run(result: ExperimentResult, json_path: str | None) -> int:
    if json_path:
        if json_path == "-":
            print(result.to_json())
        else:
            try:
                result.save(json_path)
            except OSError as exc:
                print(f"repro run: cannot write {json_path}: {exc}", file=sys.stderr)
                return 2
            print(f"\nwrote {json_path}")
    if result.spec.adversary.any_enabled:
        # Violations under an armed adversary are the *measurement*
        # (the security matrix exists to count them), not a failure.
        return 0
    return 0 if result.metrics.atomicity_violations == 0 else 1


class _StderrDiagnostics:
    """The single writer every diagnostic goes through.

    Progress lines, cProfile tables, event-queue stats, and live alert
    lines can all target stderr in the same run; writing each block via
    one buffered ``write`` + ``flush`` means producers interleave only
    at block boundaries, never mid-line (the ``--profile`` +
    ``--progress`` race this fixes).
    """

    def write(self, text: str) -> None:
        if not text.endswith("\n"):
            text += "\n"
        sys.stderr.write(text)
        sys.stderr.flush()


_diagnostics = _StderrDiagnostics()


def _profiled(destination: str | None, fn):
    """Run ``fn`` under cProfile when ``--profile`` was passed.

    ``destination`` is None (profiling off), ``"-"`` (print the top 25
    cumulative-time entries), or a path — print the table *and* dump the
    raw pstats data there for ``snakeviz``/``pstats`` digging.  The table
    goes to stderr so ``--json -`` artifact streams stay parseable.
    """
    if destination is None:
        return fn()
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn()
    finally:
        profiler.disable()
        stream = io.StringIO()
        pstats.Stats(profiler, stream=stream).sort_stats("cumulative").print_stats(25)
        block = stream.getvalue()
        if destination != "-":
            profiler.dump_stats(destination)
            block += f"wrote profile data to {destination}\n"
        _diagnostics.write(block)
    return result


# ---------------------------------------------------------------------------
# repro run: the universal entry point
# ---------------------------------------------------------------------------


def _print_catalog(names, describe, as_json: bool, kind=None) -> None:
    """The preset catalog, human table or machine-readable JSON.

    ``kind`` (optional, a ``name -> str`` callable) tags each entry
    with what running it produces — ``run``'s catalog merges experiment
    and service presets and needs the distinction; ``sweep``'s doesn't.
    """
    if as_json:
        rows = []
        for name in names:
            row = {"name": name, "description": describe(name)}
            if kind is not None:
                row["kind"] = kind(name)
            rows.append(row)
        print(_json.dumps(rows, indent=2))
        return
    for name in names:
        tag = f"  [{kind(name)}]" if kind is not None else ""
        print(f"{name:>18}  {describe(name)}{tag}")


def _load_spec(args: argparse.Namespace) -> ExperimentSpec:
    if args.spec and args.preset:
        raise SpecError("pass either --preset or --spec, not both")
    if args.spec:
        with open(args.spec, encoding="utf-8") as handle:
            spec = ExperimentSpec.from_json(handle.read())
    elif args.preset:
        spec = preset_spec(args.preset)
    else:
        raise SpecError(
            f"pass --preset or --spec; presets: {', '.join(preset_names())}"
        )
    overrides = parse_set_args(args.set or [])
    if overrides:
        spec = apply_overrides(spec, overrides)
    return spec


def _print_queue_stats(result: ExperimentResult) -> None:
    """The event-loop's own counters, alongside the cProfile table."""
    stats = result.env.simulator.queue_stats()
    peak = (
        f", peak {stats['max_pending']}" if "max_pending" in stats else ""
    )
    _diagnostics.write(
        f"event queue: {stats['events_processed']} events processed, "
        f"{stats['cancelled']} cancelled, {stats['pool_reuses']} pool "
        f"reuses, {stats['compactions']} compactions, "
        f"{stats['pending']} still pending{peak}"
    )


def _write_trace(result: ExperimentResult, path: str) -> int:
    collector = result.trace_collector
    if collector is None:  # pragma: no cover - --trace forces obs.enabled
        print("repro run: no trace was collected", file=sys.stderr)
        return 2
    try:
        if path == "-":
            sys.stdout.write(collector.to_jsonl())
        else:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(collector.to_jsonl())
    except OSError as exc:
        print(f"repro run: cannot write {path}: {exc}", file=sys.stderr)
        return 2
    dropped = f" ({collector.dropped} dropped)" if collector.dropped else ""
    destination = "stdout" if path == "-" else path
    print(
        f"wrote {len(collector)} trace events{dropped} to {destination}",
        file=sys.stderr if path == "-" else sys.stdout,
    )
    return 0


def _write_metrics(result: ExperimentResult, path: str) -> int:
    registry = result.metrics_registry
    if registry is None:  # pragma: no cover - --metrics forces it on
        print("repro run: no metrics were collected", file=sys.stderr)
        return 2
    # Format by extension: .prom -> Prometheus text exposition, anything
    # else (and stdout) -> the strict-serde JSON snapshot.
    text = (
        registry.to_prometheus()
        if path.endswith(".prom")
        else registry.to_json() + "\n"
    )
    try:
        if path == "-":
            sys.stdout.write(text)
        else:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
    except OSError as exc:
        print(f"repro run: cannot write {path}: {exc}", file=sys.stderr)
        return 2
    if path != "-":
        print(f"wrote metrics snapshot to {path}")
    return 0


def _print_alerts(result: ExperimentResult) -> None:
    alerts = result.alerts or []
    if not alerts:
        print("\nmonitor: no alerts")
        return
    print(f"\nmonitor: {len(alerts)} alert(s)")
    for alert in alerts:
        print(f"  {alert.render()}")


def _cmd_run(args: argparse.Namespace) -> int:
    if args.list_presets:
        from .service import service_preset_description, service_preset_names

        experiment = list(preset_names())
        service = list(service_preset_names())
        kinds = {name: "experiment" for name in experiment}
        kinds.update({name: "service" for name in service})

        def describe(name: str) -> str:
            if kinds[name] == "service":
                return service_preset_description(name)
            return preset_description(name)

        _print_catalog(
            experiment + service, describe, args.json is not None, kind=kinds.get
        )
        return 0
    try:
        spec = _load_spec(args)
        if args.trace:
            # --trace is the switch: it arms the recorder even when the
            # preset/spec left obs off, without editing the spec file.
            spec = apply_overrides(spec, {"obs.enabled": True})
        if args.metrics:
            # --metrics arms the registry and the invariant monitor the
            # same way; --alert-stderr additionally streams each firing
            # to stderr as it happens.
            overrides: dict = {
                "obs.metrics.enabled": True,
                "obs.monitor.enabled": True,
            }
            if args.alert_stderr:
                overrides["obs.monitor.stderr"] = True
            spec = apply_overrides(spec, overrides)
        result = _profiled(args.profile, lambda: run_experiment(spec))
    except (SpecError, OSError) as exc:
        print(f"repro run: {exc}", file=sys.stderr)
        return 2
    if args.profile is not None:
        _print_queue_stats(result)
    streaming = args.json == "-" or args.trace == "-" or args.metrics == "-"
    if streaming:
        # Streaming an artifact to stdout: keep it parseable by moving
        # the human-readable tables to stderr.
        with contextlib.redirect_stdout(sys.stderr):
            print_result(result)
            if args.metrics:
                _print_alerts(result)
    else:
        print_result(result)
        if args.metrics:
            _print_alerts(result)
    if args.trace:
        status = _write_trace(result, args.trace)
        if status:
            return status
    if args.metrics:
        status = _write_metrics(result, args.metrics)
        if status:
            return status
    return _finish_run(result, args.json)


# ---------------------------------------------------------------------------
# repro serve / repro replay: the engine as a long-running service
# ---------------------------------------------------------------------------


def _load_service_spec(args: argparse.Namespace):
    from .service import ServiceSpec, service_preset_names, service_preset_spec

    if args.spec and args.preset:
        raise SpecError("pass either --preset or --spec, not both")
    if args.spec:
        with open(args.spec, encoding="utf-8") as handle:
            spec = ServiceSpec.from_json(handle.read())
    elif args.preset:
        spec = service_preset_spec(args.preset)
    else:
        raise SpecError(
            f"pass --preset, --spec, or --restore; service presets: "
            f"{', '.join(service_preset_names())}"
        )
    overrides = parse_set_args(args.set or [])
    if overrides:
        spec = apply_overrides(spec, overrides)
    return spec


def _print_service_result(result) -> None:
    metrics = result.metrics
    spec = result.spec
    sources = (
        ", ".join(f"{s.name} ({s.kind})" for s in spec.sources) or "submit_swap only"
    )
    print(f"service {spec.name!r}: accepted {result.accepted} swaps from {sources}")
    windows = result.windows
    if windows:
        shown = windows[-12:]
        if len(windows) > len(shown):
            print(f"\n... {len(windows) - len(shown)} earlier window samples elided")
        print(
            f"\n{'t':>7} | {'total':>5} | {'commit':>6} | {'p50':>7} | "
            f"{'p99':>7} | {'priced':>6} | {'infl':>4}"
        )
        for w in shown:
            print(
                f"{w['t']:>6.1f}s | {w['total']:>5} | {w['commit_rate']:>6.1%} | "
                f"{w['p50_latency']:>6.1f}s | {w['p99_latency']:>6.1f}s | "
                f"{w['priced_out_rate']:>6.1%} | {w['in_flight']:>4}"
            )
    if result.stall is not None:
        print(
            f"\ndrain stalled: reason {result.stall['reason']!r} after "
            f"{result.stall['events']} events"
        )
    print(
        f"\n{metrics.total} swaps over {metrics.makespan:.1f} simulated seconds "
        f"(peak {metrics.max_in_flight} in flight); commit rate "
        f"{metrics.commit_rate:.1%}, {metrics.atomicity_violations} "
        f"atomicity violations"
    )


def _finish_service(result, json_path: str | None, label: str) -> int:
    if json_path:
        if json_path == "-":
            print(result.to_json())
        else:
            try:
                result.save(json_path)
            except OSError as exc:
                print(
                    f"repro {label}: cannot write {json_path}: {exc}",
                    file=sys.stderr,
                )
                return 2
            print(f"\nwrote {json_path}")
    if result.spec.world.adversary.any_enabled:
        return 0
    return 0 if result.metrics.atomicity_violations == 0 else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import SwapService

    try:
        if args.checkpoint_every is not None and args.checkpoint is None:
            raise SpecError("--checkpoint-every needs --checkpoint PATH")
        if args.restore:
            if args.preset or args.spec or args.set:
                raise SpecError(
                    "--restore resumes a checkpointed session; pass either "
                    "--restore or --preset/--spec/--set, not both"
                )
            service = SwapService.restore(args.restore)
        else:
            spec = _load_service_spec(args)
            # Bake --duration into the spec itself so the request log's
            # spec echo is faithful: `repro replay LOG` then runs out the
            # same horizon with no extra flags.  --max-swaps and
            # --checkpoint-every stay per-invocation (stop-now and
            # cadence controls) — baking them would make a checkpointed
            # session's spec echo diverge from the uninterrupted one it
            # must byte-match after restore.
            if args.duration is not None:
                spec = dataclasses.replace(spec, duration=args.duration)
            service = SwapService(spec)
        with contextlib.ExitStack() as stack:
            if args.store:
                from .store import CampaignStore

                store = stack.enter_context(CampaignStore(args.store))
                service.attach_store(store)
            # A restored session's spec already carries whatever was
            # baked at serve time; CLI flags still override per-call.
            service.serve(
                duration=args.duration,
                max_swaps=args.max_swaps,
                checkpoint_path=args.checkpoint,
                checkpoint_every=args.checkpoint_every,
            )
            every = (
                args.checkpoint_every
                if args.checkpoint_every is not None
                else service.spec.checkpoint_every
            )
            if args.checkpoint is not None and every is None:
                # No cadence anywhere: --checkpoint means "one checkpoint
                # at the moment serving stops" (the hand-off primitive).
                service.checkpoint(args.checkpoint)
            service.drain()
            result = service.result()
            if args.request_log:
                service.save_request_log(args.request_log)
    except (SpecError, ServiceError, StoreError, OSError) as exc:
        print(f"repro serve: {exc}", file=sys.stderr)
        return 2
    if args.json == "-":
        with contextlib.redirect_stdout(sys.stderr):
            _print_service_result(result)
    else:
        _print_service_result(result)
    if args.request_log:
        print(f"wrote request log {args.request_log}")
    if args.checkpoint is not None:
        print(f"wrote checkpoint {args.checkpoint}")
    return _finish_service(result, args.json, "serve")


def _cmd_replay(args: argparse.Namespace) -> int:
    from .service import SwapService, dump_request_log, load_request_log

    try:
        with open(args.log, encoding="utf-8") as handle:
            text = handle.read()
        spec, records = load_request_log(text)
        result = SwapService.replay(spec, records)
    except (SpecError, ServiceError, OSError) as exc:
        print(f"repro replay: {exc}", file=sys.stderr)
        return 2
    if args.request_log:
        # The replayed session accepts exactly the loaded records, so
        # its log IS dump(load(original)) — written out for the
        # byte-level `cmp` the CI smoke job runs.
        try:
            with open(args.request_log, "w", encoding="utf-8") as handle:
                handle.write(dump_request_log(spec, records))
        except OSError as exc:
            print(
                f"repro replay: cannot write {args.request_log}: {exc}",
                file=sys.stderr,
            )
            return 2
    if args.json == "-":
        with contextlib.redirect_stdout(sys.stderr):
            _print_service_result(result)
    else:
        _print_service_result(result)
    if args.request_log:
        print(f"wrote request log {args.request_log}")
    return _finish_service(result, args.json, "replay")


# ---------------------------------------------------------------------------
# repro trace: the flight-recorder timeline explorer
# ---------------------------------------------------------------------------


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs import load_trace, render_swap, series_csv, summarize

    try:
        collector = load_trace(args.file)
    except (TraceError, OSError, ValueError) as exc:
        print(f"repro trace: {exc}", file=sys.stderr)
        return 2
    if args.swap is not None:
        try:
            print(render_swap(collector, args.swap))
        except TraceError as exc:
            print(f"repro trace: {exc}", file=sys.stderr)
            return 2
        return 0
    if args.series is not None:
        csv_text = series_csv(collector.events())
        if args.series == "-":
            sys.stdout.write(csv_text)
        else:
            try:
                with open(args.series, "w", encoding="utf-8") as handle:
                    handle.write(csv_text)
            except OSError as exc:
                print(f"repro trace: cannot write {args.series}: {exc}", file=sys.stderr)
                return 2
            print(f"wrote {args.series}")
        return 0
    print(summarize(collector))
    return 0


def _cmd_alerts(args: argparse.Namespace) -> int:
    from .obs import load_trace, render_alerts

    try:
        collector = load_trace(args.file)
    except (TraceError, OSError, ValueError) as exc:
        print(f"repro alerts: {exc}", file=sys.stderr)
        return 2
    sys.stdout.write(render_alerts(collector))
    return 0


# ---------------------------------------------------------------------------
# repro sweep: the multi-point campaign entry point
# ---------------------------------------------------------------------------


def _load_sweep(args: argparse.Namespace) -> SweepSpec:
    if args.spec and args.preset:
        raise SpecError("pass either --preset or --spec, not both")
    if args.spec:
        with open(args.spec, encoding="utf-8") as handle:
            spec = SweepSpec.from_json(handle.read())
    elif args.preset:
        spec = sweep_spec(args.preset)
    else:
        raise SpecError(
            f"pass --preset or --spec; sweeps: {', '.join(sweep_names())}"
        )
    overrides = parse_set_args(args.set or [])
    if overrides:
        # The same dotted-path machinery as ``run``, one level up:
        # --set base.traffic.num_swaps=12 edits the base experiment,
        # --set mode=zip the sweep itself.
        spec = apply_overrides(spec, overrides)
    return spec


def _point_adversary_enabled(point) -> bool:
    """Whether a sweep point's spec echo armed any adversary actor."""
    adversary = point.spec.get("adversary", {})
    return any(
        actor.get("enabled", False)
        for actor in adversary.values()
        if isinstance(actor, dict)
    )


def print_sweep_result(result: SweepResult) -> None:
    """The joined campaign table, one row per executed point."""
    axes = [axis.name for axis in result.spec.axes]
    header = " | ".join(
        [f"{'point':>5}"]
        + [f"{name:>10}" for name in axes]
        + [f"{'swaps':>5}", f"{'commit':>6}", f"{'viol':>4}", f"{'swaps/s':>8}",
           f"{'p50':>7}", f"{'priced':>6}"]
    )
    print(header)
    for row in result.rows():
        cells = [f"{row['index']:>5}"]
        cells += [f"{str(row.get(name, '')):>10}" for name in axes]
        cells += [
            f"{row['total']:>5}",
            f"{row['commit_rate']:>6.1%}",
            f"{row['atomicity_violations']:>4}",
            f"{row['swaps_per_second']:>8.2f}",
            f"{row['p50_latency']:>6.1f}s",
            f"{row['priced_out']:>6}",
        ]
        print(" | ".join(cells))
    for skip in result.skipped:
        coords = ",".join(f"{k}={v}" for k, v in skip.coords.items())
        print(f"skipped [{skip.index:03d}] {coords}: {skip.reason}")
    total = sum(row["total"] for row in result.rows())
    print(
        f"\n{len(result.points)} points ({total} swaps), "
        f"{len(result.skipped)} skipped; "
        f"{result.atomicity_violations} atomicity violations"
    )


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.list_presets:
        _print_catalog(sweep_names(), sweep_description, args.json is not None)
        return 0
    if args.resume and args.store:
        print(
            "repro sweep: --resume DIR and --store DB are mutually "
            "exclusive: both archive the campaign's per-point artifacts, "
            "so pick one backend ('repro store ingest' migrates a resume "
            "directory into a database)",
            file=sys.stderr,
        )
        return 2
    try:
        spec = _load_sweep(args)

        import time as _time

        started = _time.monotonic()
        worker_walls: dict[int, list[float]] = {}

        def progress(point, beat: dict) -> None:
            m = point.metrics
            completed, total = beat["completed"], beat["total"]
            line = (
                f"  [{completed:03d}/{total:03d}] {point.name}: "
                f"commit {m['commit_rate']:.1%}, "
                f"{m['atomicity_violations']} violations"
            )
            if beat["wall"] is not None:
                worker_walls.setdefault(beat["pid"], []).append(beat["wall"])
                executed = sum(len(w) for w in worker_walls.values())
                elapsed = _time.monotonic() - started
                remaining = total - completed
                if remaining and executed and elapsed > 0:
                    rate = executed / elapsed
                    line += (
                        f" | {beat['wall']:.2f}s, running {beat['running']}, "
                        f"ETA {remaining / rate:.1f}s"
                    )
                else:
                    line += f" | {beat['wall']:.2f}s"
            else:
                line += " | resumed"
            _diagnostics.write(line)

        def throughput_summary() -> None:
            for pid in sorted(worker_walls):
                walls = worker_walls[pid]
                busy = sum(walls)
                rate = len(walls) / busy if busy > 0 else 0.0
                _diagnostics.write(
                    f"  worker {pid}: {len(walls)} point(s) in {busy:.2f}s "
                    f"({rate:.2f} pts/s)"
                )

        # Streaming an export to stdout: keep it parseable by moving the
        # narration and the human-readable table to stderr.
        streaming = "-" in (args.csv, args.json)
        narrate = sys.stderr if streaming else sys.stdout
        runner = SweepRunner(
            spec,
            workers=args.workers,
            on_progress=progress if args.progress else None,
            resume_dir=args.resume,
            store=args.store,
        )
        print(
            f"sweep {spec.name!r}: {spec.num_points()} points, "
            f"{args.workers} worker(s)",
            file=narrate,
        )
        result = _profiled(args.profile, runner.run)
        if args.progress and worker_walls:
            throughput_summary()
        if args.resume or args.store:
            source = args.resume or args.store
            print(
                f"resumed {len(runner.resumed)} point(s) from {source}",
                file=narrate,
            )
    except (SpecError, StoreError, OSError) as exc:
        print(f"repro sweep: {exc}", file=sys.stderr)
        return 2
    with contextlib.redirect_stdout(narrate):
        print_sweep_result(result)
    # The violation exit-gate is an *honest-run* tripwire: points that
    # armed an adversary measure violations on purpose, so only
    # violations in adversary-free points fail the command.
    honest_violations = sum(
        point.metrics["atomicity_violations"]
        for point in result.points
        if not _point_adversary_enabled(point)
    )
    status = 0 if honest_violations == 0 else 1
    exports = (
        (args.csv, result.save_csv, result.to_csv),
        (args.json, result.save, result.to_json),
    )
    for path, save, render in exports:
        if not path:
            continue
        if path == "-":
            print(render())
            continue
        try:
            save(path)
        except OSError as exc:
            print(f"repro sweep: cannot write {path}: {exc}", file=sys.stderr)
            return 2
        print(f"wrote {path}", file=narrate)
    return status


# ---------------------------------------------------------------------------
# Legacy scenario subcommands: thin preset aliases
# ---------------------------------------------------------------------------


def _run_alias(
    command: str,
    preset: str,
    overrides: dict,
    json_path: str | None = None,
    printer=print_result,
) -> int:
    try:
        spec = apply_overrides(preset_spec(preset), overrides)
        result = run_experiment(spec)
    except SpecError as exc:
        print(f"repro {command}: {exc}", file=sys.stderr)
        return 2
    printer(result)
    return _finish_run(result, json_path)


def _cmd_swap(args: argparse.Namespace) -> int:
    """Run one AC2T end to end and print the outcome."""
    if args.diameter < 2:
        print("repro swap: --diameter must be at least 2", file=sys.stderr)
        return 2
    overrides: dict = {"protocol": args.protocol, "seed": args.seed}
    overrides["chains.validator_mode"] = args.validator_mode
    if args.diameter != 2:
        overrides["chains.ids"] = [f"chain-{i}" for i in range(args.diameter)]
        overrides["traffic.participants_per_swap"] = args.diameter

    def print_outcome(result: ExperimentResult) -> None:
        (outcome,) = result.outcomes
        print(outcome.summary())
        for name, ts in sorted(outcome.phase_times.items(), key=lambda kv: kv[1]):
            print(f"  {name:20s} t={ts:8.2f}")

    return _run_alias("swap", "swap", overrides, printer=print_outcome)


def _cmd_engine(args: argparse.Namespace) -> int:
    """Run N concurrent AC2Ts through the SwapEngine; print metrics."""
    if args.chains < 1:
        print("repro engine: --chains must be at least 1", file=sys.stderr)
        return 2
    overrides: dict = {
        "protocol": args.protocol,
        "seed": args.seed,
        "chains.ids": [f"chain-{i}" for i in range(args.chains)],
        "chains.validator_mode": args.validator_mode,
        "traffic.num_swaps": args.swaps,
        "traffic.rate": args.rate,
        "traffic.participants_per_swap": args.participants,
    }
    if args.eager is not None:
        overrides["engine.eager"] = args.eager
    return _run_alias("engine", "engine-smoke", overrides, json_path=args.json)


def _cmd_congestion(args: argparse.Namespace) -> int:
    """Oversubscribed fee-market run: congestion prices swaps out."""
    if args.chains < 1:
        print("repro congestion: --chains must be at least 1", file=sys.stderr)
        return 2
    overrides: dict = {
        "protocol": args.protocol,
        "seed": args.seed,
        "chains.ids": [f"chain-{i}" for i in range(args.chains)],
        "chains.validator_mode": args.validator_mode,
        "traffic.num_swaps": args.swaps,
        "traffic.rate": args.rate,
        "traffic.low_fee_share": args.low_share,
        "traffic.crash.rate": args.crash_rate,
        "fee_market.block_weight_budget": args.block_budget,
        "fee_market.capacity_weight": args.capacity,
    }
    if args.eager is not None:
        overrides["engine.eager"] = args.eager
    if args.fee_shock > 0:
        overrides["fee_shocks"] = [
            {
                "at": args.shock_at,
                "count": args.fee_shock,
                "fee_rate": args.shock_fee_rate,
                "chain_id": args.shock_chain,
            }
        ]
    return _run_alias("congestion", "congestion", overrides, json_path=args.json)


def _cmd_crash_sweep(args: argparse.Namespace) -> int:
    """Sweep Bob's crash onset under Nolan and AC3WN (Section 1).

    Each cell is one single-swap experiment spec: the ``swap`` preset
    with a deterministic crash plan against the swap's ``b`` role.
    """
    print(f"{'crash at':>9} | {'Nolan (HTLC)':>24} | {'AC3WN':>22}")
    violations = 0
    for i, start in enumerate(args.onsets):
        results = []
        for protocol in ("nolan", "ac3wn"):
            try:
                spec = apply_overrides(
                    preset_spec("swap"),
                    {
                        "protocol": protocol,
                        "seed": args.seed + i,
                        "traffic.crash.participant": "b",
                        "traffic.crash.delay": start,
                        "traffic.crash.down_for": 500.0,
                    },
                )
                (outcome,) = run_experiment(spec).outcomes
            except SpecError as exc:
                print(f"repro crash-sweep: {exc}", file=sys.stderr)
                return 2
            results.append(outcome)
            if protocol == "nolan" and not outcome.is_atomic:
                violations += 1
        nolan, ac3wn = results
        print(
            f"{start:>8.1f}s | {nolan.decision:>12}/atomic={str(nolan.is_atomic):<5} "
            f"| {ac3wn.decision:>10}/atomic={str(ac3wn.is_atomic):<5}"
        )
    print(f"\nHTLC atomicity violations: {violations}; AC3WN: 0")
    return 0


# ---------------------------------------------------------------------------
# Analytic printouts (no simulation)
# ---------------------------------------------------------------------------


def _cmd_figure10(args: argparse.Namespace) -> int:
    """Print Figure 10's analytic latency curves."""
    print(f"{'Diam(D)':>8} | {'Herlihy (Δ)':>12} | {'AC3WN (Δ)':>10} | speedup")
    for point in figure10_series(args.max_diameter):
        print(
            f"{point.diameter:>8} | {point.herlihy_deltas:>12.0f} | "
            f"{point.ac3wn_deltas:>10.0f} | {point.speedup:.1f}x"
        )
    return 0


def _cmd_witness_depth(args: argparse.Namespace) -> int:
    """Section 6.3: required depth per candidate witness."""
    va = args.value_at_risk
    print(f"value at risk: ${va:,.0f}")
    for choice in PAPER_WITNESS_CANDIDATES:
        depth = choice.depth_for(va)
        hours = choice.confirmation_latency_hours(va)
        print(f"  {choice.chain_id:>14}: d = {depth:>6}  (~{hours:.1f} h of burial)")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    """Table 1 plus the paper's throughput example."""
    for name, _, tps in TABLE1_ROWS:
        print(f"  {name:>14}: {tps:>3} tps")
    example = ac2t_throughput(["ethereum", "litecoin"], "bitcoin")
    print(
        f"\nETH+LTC witnessed by Bitcoin: {example.tps} tps "
        f"(bottleneck: {example.bottleneck})"
    )
    return 0


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

PROTOCOL_CHOICES = ["nolan", "herlihy", "ac3tw", "ac3wn", "mixed"]


# ---------------------------------------------------------------------------
# Campaign datastore subcommands
# ---------------------------------------------------------------------------


def _query_columns(rows: list[dict]) -> list[str]:
    """Identity columns first, then every other key in first-seen order."""
    columns = ["campaign", "campaign_id", "index"]
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    return columns


def _query_cell(value) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return repr(value)
    return str(value)


def _query_csv(rows: list[dict]) -> str:
    columns = _query_columns(rows)
    lines = [",".join(columns)]
    for row in rows:
        cells = []
        for column in columns:
            cell = _query_cell(row.get(column))
            if any(ch in cell for ch in ',"\n'):
                cell = '"' + cell.replace('"', '""') + '"'
            cells.append(cell)
        lines.append(",".join(cells))
    return "\n".join(lines) + "\n"


def _query_table(rows: list[dict]) -> str:
    columns = _query_columns(rows)
    grid = [columns] + [
        [_query_cell(row.get(column)) for column in columns] for row in rows
    ]
    widths = [max(len(line[i]) for line in grid) for i in range(len(columns))]
    return (
        "\n".join(
            " | ".join(cell.rjust(width) for cell, width in zip(line, widths))
            for line in grid
        )
        + "\n"
    )


def _cmd_query(args: argparse.Namespace) -> int:
    """Evaluate one predicate expression over a campaign database."""
    from .store import CampaignStore

    try:
        with CampaignStore(args.db) as store:
            rows = store.query(args.expr, campaign=args.campaign)
    except StoreError as exc:
        print(f"repro query: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        text = _json.dumps(rows, indent=2, sort_keys=True) + "\n"
    elif args.format == "csv":
        text = _query_csv(rows)
    else:
        text = _query_table(rows)
    if args.output and args.output != "-":
        try:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(text)
        except OSError as exc:
            print(
                f"repro query: cannot write {args.output}: {exc}",
                file=sys.stderr,
            )
            return 2
        print(f"wrote {args.output}")
    else:
        sys.stdout.write(text)
    # A query that matches nothing is still a successful query.
    print(f"{len(rows)} matching point(s)", file=sys.stderr)
    return 0


def _print_compare_report(report) -> None:
    a, b = report.campaign_a, report.campaign_b
    print(
        f"A: campaign {a.campaign_id} {a.name!r} ({a.kind}, {a.points} points)"
    )
    print(
        f"B: campaign {b.campaign_id} {b.name!r} ({b.kind}, {b.points} points)"
    )
    print(
        f"joined {report.joined_points} point pair(s) by coordinates; "
        f"threshold {report.threshold:.0%} relative change"
    )
    for label, deltas in (
        ("REGRESSION", report.regressions),
        ("improvement", report.improvements),
        ("changed", report.changes),
    ):
        for d in deltas:
            coords = ",".join(f"{k}={v}" for k, v in d.coords.items())
            rel = (
                "new" if d.rel_change == float("inf") else f"{d.rel_change:+.1%}"
            )
            print(
                f"  {label:>11} [{coords}] {d.metric}: "
                f"{d.a:g} -> {d.b:g} ({rel})"
            )
    for coords in report.only_in_a:
        print(f"  only in A: {coords}")
    for coords in report.only_in_b:
        print(f"  only in B: {coords}")
    print(
        f"{len(report.regressions)} regression(s), "
        f"{len(report.improvements)} improvement(s), "
        f"{len(report.changes)} neutral change(s)"
    )


def _cmd_compare(args: argparse.Namespace) -> int:
    """Join two campaigns by coordinates and flag metric regressions."""
    from .store import CampaignStore, compare_campaigns

    store_a = store_b = None
    try:
        store_a = CampaignStore(args.db_a)
        if args.db_b is not None:
            store_b = CampaignStore(args.db_b)
            campaign_a = store_a.resolve_campaign(args.a)
            campaign_b = store_b.resolve_campaign(args.b)
        else:
            # One database: B is the (latest) candidate campaign and A
            # defaults to the previous same-name campaign — the perf
            # trajectory "did this run regress vs the last one" shape.
            store_b = store_a
            campaign_b = store_b.resolve_campaign(args.b)
            if args.a is not None:
                campaign_a = store_a.resolve_campaign(args.a)
            else:
                campaign_a = (
                    store_a.previous_campaign(campaign_b) or campaign_b
                )
        report = compare_campaigns(
            store_a, campaign_a, store_b, campaign_b, threshold=args.threshold
        )
    except StoreError as exc:
        print(f"repro compare: {exc}", file=sys.stderr)
        return 2
    finally:
        if store_a is not None:
            store_a.close()
        if store_b is not None and store_b is not store_a:
            store_b.close()
    streaming = "-" in (args.csv, args.json)
    narrate = sys.stderr if streaming else sys.stdout
    with contextlib.redirect_stdout(narrate):
        _print_compare_report(report)
    exports = (
        (args.csv, report.to_csv),
        (args.json, lambda: _json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n"),
    )
    for path, render in exports:
        if not path:
            continue
        if path == "-":
            sys.stdout.write(render())
            continue
        try:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(render())
        except OSError as exc:
            print(f"repro compare: cannot write {path}: {exc}", file=sys.stderr)
            return 2
        print(f"wrote {path}", file=narrate)
    return 1 if report.regressions else 0


def _cmd_store(args: argparse.Namespace) -> int:
    """Import and inspect campaign databases (ingest / list / artifact)."""
    from .store import CampaignStore, ingest_path

    try:
        with CampaignStore(args.db) as store:
            if args.action == "ingest":
                for path in args.paths:
                    report = ingest_path(store, path, campaign=args.campaign)
                    print(
                        f"ingested {path} -> campaign {report.campaign_id} "
                        f"{report.campaign!r} ({report.kind}, "
                        f"{report.points} point(s))"
                    )
            elif args.action == "list":
                infos = store.campaigns()
                if args.json:
                    print(
                        _json.dumps(
                            [info.to_dict() for info in infos],
                            indent=2,
                            sort_keys=True,
                        )
                    )
                else:
                    print(
                        f"{args.db}: schema v{store.schema_version}, "
                        f"{len(infos)} campaign(s)"
                    )
                    for info in infos:
                        print(
                            f"  [{info.campaign_id:03d}] {info.name!r} "
                            f"({info.kind}) {info.points} point(s), "
                            f"{info.skipped} skipped, {info.created_at}"
                        )
            else:  # artifact
                info = store.resolve_campaign(args.campaign)
                text = store.get_artifact(info.campaign_id, args.point)
                if args.output and args.output != "-":
                    with open(args.output, "w", encoding="utf-8") as handle:
                        handle.write(text)
                    print(f"wrote {args.output}")
                else:
                    # Byte-exact on stdout too: no trailing newline is
                    # appended, so `repro store artifact > f` == the blob.
                    sys.stdout.write(text)
    except (StoreError, OSError) as exc:
        print(f"repro store: {exc}", file=sys.stderr)
        return 2
    return 0


def _add_common_scenario_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--validator-mode",
        choices=["anchor", "full-replica", "light-client"],
        default="anchor",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Atomic Commitment Across Blockchains' (VLDB 2020)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="run any experiment from a preset or a JSON spec"
    )
    run.add_argument("--preset", default=None, help="named preset (see --list-presets)")
    run.add_argument("--spec", default=None, help="path to an ExperimentSpec JSON file")
    run.add_argument(
        "--set",
        action="append",
        metavar="KEY=VALUE",
        help="dotted-path spec override, e.g. --set traffic.rate=12.0 (repeatable)",
    )
    run.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        help="write the full ExperimentResult JSON here ('-' or no value: "
        "stdout; with --list-presets: emit the catalog as JSON)",
    )
    run.add_argument(
        "--profile",
        nargs="?",
        const="-",
        default=None,
        metavar="FILE",
        help="profile the run under cProfile and print the top 25 "
        "cumulative-time entries to stderr; with FILE, also dump the raw "
        "pstats data there",
    )
    run.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="arm the flight recorder (obs.enabled=true) and write the "
        "trace as JSONL here ('-' for stdout); explore it with "
        "'repro trace PATH'",
    )
    run.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="arm the metrics registry and the invariant monitor "
        "(obs.metrics.enabled / obs.monitor.enabled) and write the final "
        "registry snapshot here: *.prom gets Prometheus text exposition, "
        "anything else the strict JSON snapshot ('-' for stdout)",
    )
    run.add_argument(
        "--alert-stderr",
        action="store_true",
        help="with --metrics: stream each monitor alert to stderr the "
        "moment it fires",
    )
    run.add_argument(
        "--list-presets", action="store_true", help="list the preset catalog and exit"
    )
    run.set_defaults(func=_cmd_run)

    serve = sub.add_parser(
        "serve",
        help="run the engine as a long-running, checkpointable swap service",
    )
    serve.add_argument(
        "--preset",
        default=None,
        help="named service preset (see run --list-presets)",
    )
    serve.add_argument(
        "--spec", default=None, help="path to a ServiceSpec JSON file"
    )
    serve.add_argument(
        "--set",
        action="append",
        metavar="KEY=VALUE",
        help="dotted-path spec override, e.g. --set world.seed=7 (repeatable)",
    )
    serve.add_argument(
        "--duration",
        type=float,
        default=None,
        metavar="SECONDS",
        help="serving horizon in sim-seconds from session start "
        "(overrides the spec)",
    )
    serve.add_argument(
        "--max-swaps",
        type=int,
        default=None,
        metavar="N",
        help="stop accepting after N swaps without advancing to the "
        "horizon (the checkpoint-then-hand-off primitive)",
    )
    serve.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="write a checkpoint here: every --checkpoint-every accepted "
        "swaps, or once when serving stops if no cadence is set",
    )
    serve.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="with --checkpoint: checkpoint cadence in accepted swaps "
        "(overrides the spec)",
    )
    serve.add_argument(
        "--restore",
        default=None,
        metavar="CKPT",
        help="resume a checkpointed session instead of starting fresh "
        "(mutually exclusive with --preset/--spec/--set)",
    )
    serve.add_argument(
        "--request-log",
        default=None,
        metavar="PATH",
        help="write the replayable request log here (re-drive it with "
        "'repro replay PATH')",
    )
    serve.add_argument(
        "--store",
        default=None,
        metavar="DB",
        help="file every checkpoint epoch into this campaign database",
    )
    serve.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        help="write the full ServiceResult JSON here ('-' or no value: stdout)",
    )
    serve.set_defaults(func=_cmd_serve)

    replay = sub.add_parser(
        "replay",
        help="re-execute a recorded request log, reproducing outcomes exactly",
    )
    replay.add_argument("log", help="request log written by serve --request-log")
    replay.add_argument(
        "--request-log",
        default=None,
        metavar="PATH",
        help="re-dump the replayed request log here (byte-compare it "
        "against the original)",
    )
    replay.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        help="write the full ServiceResult JSON here ('-' or no value: stdout)",
    )
    replay.set_defaults(func=_cmd_replay)

    trace = sub.add_parser(
        "trace",
        help="explore a flight-recorder trace written by run --trace",
    )
    trace.add_argument("file", help="trace JSONL file written by run --trace")
    trace.add_argument(
        "--swap",
        type=int,
        default=None,
        metavar="SWAPID",
        help="print the phase-span timeline of one swap",
    )
    trace.add_argument(
        "--series",
        default=None,
        metavar="PATH",
        help="write the sampled time-series gauges as CSV ('-' for stdout)",
    )
    trace.set_defaults(func=_cmd_trace)

    alerts = sub.add_parser(
        "alerts",
        help="list the invariant-monitor alerts recorded in a trace",
    )
    alerts.add_argument("file", help="trace JSONL file written by run --trace")
    alerts.set_defaults(func=_cmd_alerts)

    sweep = sub.add_parser(
        "sweep",
        help="run a multi-point sweep campaign across worker processes",
    )
    sweep.add_argument(
        "--preset", default=None, help="named sweep (see sweep --list-presets)"
    )
    sweep.add_argument("--spec", default=None, help="path to a SweepSpec JSON file")
    sweep.add_argument(
        "--set",
        action="append",
        metavar="KEY=VALUE",
        help="dotted-path sweep override, e.g. --set base.traffic.num_swaps=12",
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (1 = in-process; N = multiprocessing pool)",
    )
    sweep.add_argument(
        "--resume",
        default=None,
        metavar="DIR",
        help="per-point artifact directory: points whose artifact already "
        "exists there are merged from disk instead of re-executed, and "
        "every fresh point is stored for the next resume",
    )
    sweep.add_argument(
        "--store",
        default=None,
        metavar="DB",
        help="campaign database (SQLite): the durable sibling of --resume "
        "with identical per-point resume semantics, plus indexed metrics "
        "for 'repro query' and 'repro compare' (mutually exclusive with "
        "--resume)",
    )
    sweep.add_argument(
        "--csv", default=None, metavar="PATH",
        help="write the summary table as CSV ('-' for stdout)",
    )
    sweep.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        help="write the full SweepResult JSON here ('-' or no value: stdout; "
        "with --list-presets: emit the catalog as JSON)",
    )
    sweep.add_argument(
        "--progress",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="print per-point progress lines to stderr as points finish",
    )
    sweep.add_argument(
        "--profile",
        nargs="?",
        const="-",
        default=None,
        metavar="FILE",
        help="profile the whole sweep under cProfile (top 25 cumulative "
        "entries to stderr; with FILE, also dump raw pstats data)",
    )
    sweep.add_argument(
        "--list-presets", action="store_true", help="list the sweep catalog and exit"
    )
    sweep.set_defaults(func=_cmd_sweep)

    swap = sub.add_parser("swap", help="run one AC2T end to end (preset alias)")
    swap.add_argument("--protocol", choices=["ac3wn", "herlihy", "nolan"], default="ac3wn")
    swap.add_argument("--diameter", type=int, default=2)
    _add_common_scenario_flags(swap)
    swap.set_defaults(func=_cmd_swap)

    engine = sub.add_parser(
        "engine", help="run N concurrent AC2Ts through the SwapEngine (preset alias)"
    )
    engine.add_argument(
        "--protocol",
        choices=PROTOCOL_CHOICES,
        default="ac3wn",
        help="protocol for every swap, or 'mixed' to round-robin all four",
    )
    engine.add_argument("--swaps", type=int, default=50)
    engine.add_argument("--rate", type=float, default=5.0, help="arrivals per second")
    engine.add_argument("--chains", type=int, default=3, help="number of asset chains")
    engine.add_argument("--participants", type=int, default=2, help="per swap")
    engine.add_argument(
        "--eager",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="advance drivers on block hooks (default: on; --no-eager for A/B)",
    )
    engine.add_argument("--json", default=None, help="write the result JSON here")
    _add_common_scenario_flags(engine)
    engine.set_defaults(func=_cmd_engine)

    congestion = sub.add_parser(
        "congestion",
        help="oversubscribed fee-market run (preset alias)",
    )
    congestion.add_argument(
        "--protocol",
        choices=PROTOCOL_CHOICES,
        default="ac3wn",
        help="protocol for every swap, or 'mixed' to round-robin all four",
    )
    congestion.add_argument("--swaps", type=int, default=60)
    congestion.add_argument("--rate", type=float, default=12.0, help="arrivals per second")
    congestion.add_argument("--chains", type=int, default=2, help="number of asset chains")
    congestion.add_argument(
        "--block-budget", type=int, default=16, help="block space per block (weight units)"
    )
    congestion.add_argument(
        "--capacity", type=int, default=96, help="mempool capacity (weight units)"
    )
    congestion.add_argument(
        "--low-share", type=float, default=0.5, help="fraction of price-insensitive swaps"
    )
    congestion.add_argument(
        "--crash-rate", type=float, default=0.0, help="fraction of swaps crashed mid-protocol"
    )
    congestion.add_argument(
        "--fee-shock", type=int, default=0, help="burst size of whale spam (0 = off)"
    )
    congestion.add_argument(
        "--shock-at", type=float, default=5.0, help="burst time, seconds after warm-up"
    )
    congestion.add_argument(
        "--shock-chain",
        default=None,
        help="chain to flood (default: the protocol's contended chain)",
    )
    congestion.add_argument(
        "--shock-fee-rate", type=int, default=8, help="fee rate the whale pays"
    )
    congestion.add_argument(
        "--eager",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="advance drivers on block hooks (preset default: off — re-baselined)",
    )
    congestion.add_argument("--json", default=None, help="write the result JSON here")
    _add_common_scenario_flags(congestion)
    congestion.set_defaults(func=_cmd_congestion)

    crash_sweep = sub.add_parser(
        "crash-sweep", help="Section 1 crash comparison (spec-driven sweep)"
    )
    crash_sweep.add_argument("--seed", type=int, default=0)
    crash_sweep.add_argument(
        "--onsets",
        type=float,
        nargs="+",
        # Under the eager cadence the HTLC vulnerability window sits
        # ~2-3.5s after the swap's arrival: onsets 2.0/3.0 produce the
        # paper's mixed settlements, the rest abort or commit cleanly.
        default=[0.0, 2.0, 3.0, 4.5, 12.0],
        help="crash onsets (seconds after the swap's arrival)",
    )
    crash_sweep.set_defaults(func=_cmd_crash_sweep)

    fig10 = sub.add_parser("figure10", help="print Figure 10's latency curves")
    fig10.add_argument("--max-diameter", type=int, default=14)
    fig10.set_defaults(func=_cmd_figure10)

    depth = sub.add_parser("witness-depth", help="Section 6.3 depth rule")
    depth.add_argument("--value-at-risk", type=float, default=1_000_000.0)
    depth.set_defaults(func=_cmd_witness_depth)

    table1 = sub.add_parser("table1", help="Table 1 + Section 6.4 example")
    table1.set_defaults(func=_cmd_table1)

    query = sub.add_parser(
        "query",
        help="evaluate a predicate over a campaign database",
        description="Evaluate a predicate expression over the points of a "
        "campaign database, e.g. \"commit_rate < 0.5 AND protocol='nolan'\". "
        "Comparisons hit the indexed metric columns; AND/OR/NOT and "
        "parentheses compose them.",
    )
    query.add_argument(
        "expr",
        help="predicate expression, e.g. \"violation_rate > 0 AND "
        "protocol='nolan'\"",
    )
    query.add_argument(
        "--db", default="repro.db", metavar="DB",
        help="campaign database to query (default: %(default)s)",
    )
    query.add_argument(
        "--campaign",
        default=None,
        metavar="ID|NAME",
        help="pin one campaign (id or name, latest wins); default: all",
    )
    query.add_argument(
        "--format",
        choices=("table", "csv", "json"),
        default="table",
        help="output shape (default: %(default)s)",
    )
    query.add_argument(
        "--output", "-o", default="-", metavar="PATH",
        help="write the rendered rows here ('-' for stdout)",
    )
    query.set_defaults(func=_cmd_query)

    compare = sub.add_parser(
        "compare",
        help="join two campaigns and flag metric regressions",
        description="Join the points of campaign A (baseline) and campaign B "
        "(candidate) by their expansion coordinates and diff every shared "
        "numeric metric.  Exits 1 when any directed metric regressed beyond "
        "the threshold.  With one database and no selectors, compares the "
        "latest campaign against the previous campaign of the same name.",
    )
    compare.add_argument("db_a", help="baseline campaign database")
    compare.add_argument(
        "db_b",
        nargs="?",
        default=None,
        help="candidate campaign database (default: compare within db_a)",
    )
    compare.add_argument(
        "--a", default=None, metavar="ID|NAME",
        help="baseline campaign selector (default: latest, or the previous "
        "same-name campaign when comparing within one database)",
    )
    compare.add_argument(
        "--b", default=None, metavar="ID|NAME",
        help="candidate campaign selector (default: latest)",
    )
    compare.add_argument(
        "--threshold",
        type=float,
        default=0.05,
        help="relative change a directed metric must exceed to count as a "
        "regression/improvement (default: %(default)s)",
    )
    compare.add_argument(
        "--csv", default=None, metavar="PATH",
        help="write every metric delta as CSV ('-' for stdout)",
    )
    compare.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the full comparison report as JSON ('-' for stdout)",
    )
    compare.set_defaults(func=_cmd_compare)

    store = sub.add_parser(
        "store",
        help="import and inspect campaign databases",
    )
    store_sub = store.add_subparsers(dest="action", required=True)
    ingest = store_sub.add_parser(
        "ingest",
        help="import resume directories, result JSONs, or bench timing "
        "JSONs into a campaign database",
    )
    ingest.add_argument(
        "paths", nargs="+", metavar="PATH",
        help="point-NNNNN.json directory, ExperimentResult JSON, or bench "
        "timing JSON",
    )
    ingest.add_argument(
        "--db", default="repro.db", metavar="DB",
        help="campaign database to ingest into (default: %(default)s)",
    )
    ingest.add_argument(
        "--campaign", default=None, metavar="NAME",
        help="campaign name (default: each path's basename)",
    )
    ingest.set_defaults(func=_cmd_store)
    store_list = store_sub.add_parser(
        "list", help="list the campaigns a database holds"
    )
    store_list.add_argument(
        "--db", default="repro.db", metavar="DB",
        help="campaign database to list (default: %(default)s)",
    )
    store_list.add_argument(
        "--json", action="store_true", help="emit the campaign list as JSON"
    )
    store_list.set_defaults(func=_cmd_store)
    artifact = store_sub.add_parser(
        "artifact",
        help="recover one point's byte-exact ExperimentResult JSON",
    )
    artifact.add_argument(
        "--db", default="repro.db", metavar="DB",
        help="campaign database to read (default: %(default)s)",
    )
    artifact.add_argument(
        "--campaign", default=None, metavar="ID|NAME",
        help="campaign (id or name, latest wins); default: latest",
    )
    artifact.add_argument(
        "--point", type=int, required=True, metavar="INDEX",
        help="point index within the campaign",
    )
    artifact.add_argument(
        "--output", "-o", default="-", metavar="PATH",
        help="write the artifact bytes here ('-' for stdout)",
    )
    artifact.set_defaults(func=_cmd_store)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:  # pragma: no cover - e.g. `repro trace | head`
        # The downstream reader closed the pipe; not an error.  Detach
        # stdout so the interpreter's shutdown flush cannot raise again.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
