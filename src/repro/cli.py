"""Command-line interface: run the paper's experiments from a shell.

::

    python -m repro swap --protocol ac3wn --diameter 3
    python -m repro figure10 --max-diameter 8
    python -m repro crash-sweep
    python -m repro witness-depth --value-at-risk 1000000
    python -m repro table1

Each subcommand builds a fresh simulated world, runs the experiment, and
prints paper-style output.  Seeds default to 0 for reproducibility.
"""

from __future__ import annotations

import argparse
import sys

from .analysis.cost import congestion_cost_report
from .analysis.latency import figure10_series
from .analysis.security import PAPER_WITNESS_CANDIDATES
from .analysis.throughput import TABLE1_ROWS, ac2t_throughput, engine_throughput_report
from .core.ac3wn import run_ac3wn
from .core.herlihy import run_herlihy
from .core.nolan import run_nolan
from .economy import FeePolicy
from .engine import PROTOCOLS, SwapEngine
from .sim.failures import FailureSchedule
from .workloads.graphs import ring_with_diameter, two_party_swap
from .workloads.scenarios import (
    LOW_FEE_BUDGET,
    build_multi_scenario,
    build_scenario,
    congestion_swap_traffic,
    poisson_swap_traffic,
    schedule_fee_shock,
)


def _cmd_swap(args: argparse.Namespace) -> int:
    """Run one AC2T end to end and print the outcome."""
    if args.diameter == 2:
        graph = two_party_swap(chain_a="chain-0", chain_b="chain-1", timestamp=args.seed)
    else:
        chain_ids = [f"chain-{i}" for i in range(args.diameter)]
        graph = ring_with_diameter(args.diameter, chain_ids=chain_ids, timestamp=args.seed)
    env = build_scenario(graph=graph, seed=args.seed, validator_mode=args.validator_mode)
    env.warm_up(2)
    if args.protocol == "ac3wn":
        outcome = run_ac3wn(env, graph, witness_chain_id="witness")
    elif args.protocol == "herlihy":
        outcome = run_herlihy(env, graph)
    else:
        outcome = run_nolan(env, graph)
    print(outcome.summary())
    for name, ts in sorted(outcome.phase_times.items(), key=lambda kv: kv[1]):
        print(f"  {name:20s} t={ts:8.2f}")
    return 0 if outcome.is_atomic else 1


def _cmd_figure10(args: argparse.Namespace) -> int:
    """Print Figure 10's analytic latency curves."""
    print(f"{'Diam(D)':>8} | {'Herlihy (Δ)':>12} | {'AC3WN (Δ)':>10} | speedup")
    for point in figure10_series(args.max_diameter):
        print(
            f"{point.diameter:>8} | {point.herlihy_deltas:>12.0f} | "
            f"{point.ac3wn_deltas:>10.0f} | {point.speedup:.1f}x"
        )
    return 0


def _cmd_crash_sweep(args: argparse.Namespace) -> int:
    """Sweep Bob's crash onset under Nolan and AC3WN (Section 1)."""
    print(f"{'crash at':>9} | {'Nolan (HTLC)':>24} | {'AC3WN':>22}")
    violations = 0
    for i, start in enumerate((0.0, 4.5, 6.5, 8.5, 12.0)):
        results = []
        for protocol in ("nolan", "ac3wn"):
            graph = two_party_swap(chain_a="a", chain_b="b", timestamp=args.seed + i)
            env = build_scenario(graph=graph, seed=args.seed + i)
            env.apply_failures(FailureSchedule().crash("bob", start=start, end=start + 500))
            env.warm_up(2)
            if protocol == "nolan":
                outcome = run_nolan(env, graph)
            else:
                outcome = run_ac3wn(
                    env, graph, witness_chain_id="witness", settle_timeout=600.0
                )
            results.append(outcome)
            if protocol == "nolan" and not outcome.is_atomic:
                violations += 1
        nolan, ac3wn = results
        print(
            f"{start:>8.1f}s | {nolan.decision:>12}/atomic={str(nolan.is_atomic):<5} "
            f"| {ac3wn.decision:>10}/atomic={str(ac3wn.is_atomic):<5}"
        )
    print(f"\nHTLC atomicity violations: {violations}; AC3WN: 0")
    return 0


def _cmd_witness_depth(args: argparse.Namespace) -> int:
    """Section 6.3: required depth per candidate witness."""
    va = args.value_at_risk
    print(f"value at risk: ${va:,.0f}")
    for choice in PAPER_WITNESS_CANDIDATES:
        depth = choice.depth_for(va)
        hours = choice.confirmation_latency_hours(va)
        print(f"  {choice.chain_id:>14}: d = {depth:>6}  (~{hours:.1f} h of burial)")
    return 0


def _cmd_engine(args: argparse.Namespace) -> int:
    """Run N concurrent AC2Ts through the SwapEngine; print metrics."""
    for name, value, minimum in (
        ("--swaps", args.swaps, 1),
        ("--chains", args.chains, 1),
        ("--participants", args.participants, 2),
    ):
        if value < minimum:
            print(f"repro engine: {name} must be at least {minimum}", file=sys.stderr)
            return 2
    if args.rate <= 0:
        print("repro engine: --rate must be positive", file=sys.stderr)
        return 2
    if args.protocol in ("nolan", "mixed") and args.participants != 2:
        print(
            "repro engine: Nolan's protocol is strictly two-party; "
            f"--protocol {args.protocol} requires --participants 2",
            file=sys.stderr,
        )
        return 2
    chain_ids = [f"chain-{i}" for i in range(args.chains)]
    traffic = poisson_swap_traffic(
        args.swaps,
        rate=args.rate,
        seed=args.seed,
        chain_ids=chain_ids,
        participants_per_swap=args.participants,
    )
    env = build_multi_scenario(
        [graph for _, graph in traffic],
        seed=args.seed,
        validator_mode=args.validator_mode,
    )
    env.warm_up(2)
    engine = SwapEngine(
        env,
        default_protocol="ac3wn" if args.protocol == "mixed" else args.protocol,
        eager=args.eager,
    )
    # Arrivals were generated from t=0; shift them past the warm-up so
    # the schedule stays genuinely open-loop (no clamped head batch).
    offset = env.simulator.now
    if args.protocol == "mixed":
        for index, (at, graph) in enumerate(traffic):
            engine.submit(
                graph, protocol=PROTOCOLS[index % len(PROTOCOLS)], at=offset + at
            )
    else:
        engine.submit_many(traffic, offset=offset)
    result = engine.run()

    print(
        f"{'protocol':>8} | {'swaps':>5} | {'commit':>6} | {'viol':>4} | "
        f"{'swaps/s':>8} | {'p50':>7} | {'p99':>7} | {'peak':>4}"
    )
    for row in engine_throughput_report(result):
        peak = str(row.max_in_flight) if row.max_in_flight else "-"
        print(
            f"{row.protocol:>8} | {row.total:>5} | {row.commit_rate:>6.1%} | "
            f"{row.atomicity_violations:>4} | {row.swaps_per_second:>8.2f} | "
            f"{row.p50_latency:>6.1f}s | {row.p99_latency:>6.1f}s | "
            f"{peak:>4}"
        )
    print(
        f"\n{result.metrics.total} swaps over {result.metrics.makespan:.1f} "
        f"simulated seconds (peak {result.metrics.max_in_flight} in flight); "
        f"{result.metrics.atomicity_violations} atomicity violations"
    )
    return 0 if result.metrics.atomicity_violations == 0 else 1


def _cmd_congestion(args: argparse.Namespace) -> int:
    """Oversubscribed fee-market run: congestion prices swaps out."""
    if args.swaps < 1 or args.chains < 1 or args.rate <= 0:
        print("repro congestion: --swaps/--chains/--rate must be positive", file=sys.stderr)
        return 2
    if not 0.0 <= args.low_share <= 1.0 or not 0.0 <= args.crash_rate <= 1.0:
        print("repro congestion: --low-share/--crash-rate must be in [0,1]", file=sys.stderr)
        return 2
    if args.block_budget < 1 or args.capacity < 1:
        print(
            "repro congestion: --block-budget/--capacity must be at least 1",
            file=sys.stderr,
        )
        return 2
    chain_ids = [f"chain-{i}" for i in range(args.chains)]
    traffic = congestion_swap_traffic(
        args.swaps,
        rate=args.rate,
        seed=args.seed,
        chain_ids=chain_ids,
        low_fee_share=args.low_share,
        crash_rate=args.crash_rate,
    )
    policy = FeePolicy(
        block_weight_budget=args.block_budget, capacity_weight=args.capacity
    )
    extra = ["whale"] if args.fee_shock > 0 else None
    env = build_multi_scenario(
        [item.graph for item in traffic],
        seed=args.seed,
        validator_mode=args.validator_mode,
        fee_policy=policy,
        extra_participants=extra,
    )
    env.warm_up(2)
    if args.fee_shock > 0:
        # Shock the chain the chosen protocol actually competes on: the
        # witness chain is only contended when AC3WN swaps coordinate
        # there; the HTLC-style protocols live on the asset chains.
        shock_chain = args.shock_chain or (
            env.witness_chain_id
            if args.protocol in ("ac3wn", "mixed")
            else chain_ids[0]
        )
        schedule_fee_shock(
            env,
            shock_chain,
            at=env.simulator.now + args.shock_at,
            count=args.fee_shock,
            fee_rate=args.shock_fee_rate,
        )
    engine = SwapEngine(
        env,
        default_protocol="ac3wn" if args.protocol == "mixed" else args.protocol,
        eager=args.eager,
    )
    offset = env.simulator.now
    for index, item in enumerate(traffic):
        protocol = (
            PROTOCOLS[index % len(PROTOCOLS)] if args.protocol == "mixed" else None
        )
        engine.submit(
            item.graph,
            protocol=protocol,
            at=offset + item.at,
            fee_budget=item.fee_budget,
            crash=item.crash,
        )
    result = engine.run()
    metrics = result.metrics

    # Fee-class breakdown: who did congestion price out?
    print(f"{'class':>6} | {'swaps':>5} | {'commit':>6} | {'priced out':>10} | {'fee/commit':>10}")
    for label, wanted in (("low", True), ("high", False)):
        slice_ = [
            o
            for o in result.outcomes
            if (o.fee_cap is not None and o.fee_cap <= LOW_FEE_BUDGET.cap) == wanted
        ]
        if not slice_:
            continue
        committed = [o for o in slice_ if o.decision == "commit"]
        fee_per = (
            sum(o.fees_paid for o in committed) / len(committed) if committed else 0.0
        )
        print(
            f"{label:>6} | {len(slice_):>5} | "
            f"{len(committed) / len(slice_):>6.1%} | "
            f"{sum(1 for o in slice_ if o.priced_out):>10} | {fee_per:>10.1f}"
        )

    fees = env.chains[chain_ids[0]].params.fees
    print(
        f"\n{'protocol':>8} | {'swaps':>5} | {'commit':>6} | {'priced':>6} | "
        f"{'evict':>5} | {'bumps':>5} | {'fee/commit':>10} | {'model':>7} | premium"
    )
    for row in congestion_cost_report(result.outcomes, fd=fees.deploy, ffc=fees.call):
        print(
            f"{row.protocol:>8} | {row.swaps:>5} | "
            f"{row.committed / row.swaps if row.swaps else 0.0:>6.1%} | "
            f"{row.priced_out:>6} | {row.evictions:>5} | {row.fee_bumps:>5} | "
            f"{row.fee_per_commit:>10.1f} | {row.model_fee_per_commit:>7.1f} | "
            f"{row.congestion_premium:.2f}x"
        )

    print(f"\n{'chain':>10} | {'mined':>5} | {'evicted':>7} | {'replaced':>8} | {'rej fee':>7} | {'miner fees':>10}")
    for chain_id in sorted(env.mempools):
        pool = env.mempools[chain_id]
        miner = env.miners[chain_id]
        print(
            f"{chain_id:>10} | {miner.blocks_mined:>5} | "
            f"{getattr(pool, 'evicted', 0):>7} | {getattr(pool, 'replaced', 0):>8} | "
            f"{getattr(pool, 'rejected_fee', 0):>7} | {miner.fees_earned:>10}"
        )

    print(
        f"\n{metrics.total} swaps over {metrics.makespan:.1f} simulated seconds; "
        f"commit rate {metrics.commit_rate:.1%}, priced out "
        f"{metrics.priced_out} ({metrics.priced_out_rate:.1%}), "
        f"{metrics.evictions} evictions, {metrics.fee_bumps} fee bumps, "
        f"{metrics.injected_crashes} injected crashes; "
        f"{metrics.atomicity_violations} atomicity violations"
    )
    return 0 if metrics.atomicity_violations == 0 else 1


def _cmd_table1(args: argparse.Namespace) -> int:
    """Table 1 plus the paper's throughput example."""
    for name, _, tps in TABLE1_ROWS:
        print(f"  {name:>14}: {tps:>3} tps")
    example = ac2t_throughput(["ethereum", "litecoin"], "bitcoin")
    print(
        f"\nETH+LTC witnessed by Bitcoin: {example.tps} tps "
        f"(bottleneck: {example.bottleneck})"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Atomic Commitment Across Blockchains' (VLDB 2020)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    swap = sub.add_parser("swap", help="run one AC2T end to end")
    swap.add_argument("--protocol", choices=["ac3wn", "herlihy", "nolan"], default="ac3wn")
    swap.add_argument("--diameter", type=int, default=2)
    swap.add_argument("--seed", type=int, default=0)
    swap.add_argument(
        "--validator-mode",
        choices=["anchor", "full-replica", "light-client"],
        default="anchor",
    )
    swap.set_defaults(func=_cmd_swap)

    fig10 = sub.add_parser("figure10", help="print Figure 10's latency curves")
    fig10.add_argument("--max-diameter", type=int, default=14)
    fig10.set_defaults(func=_cmd_figure10)

    sweep = sub.add_parser("crash-sweep", help="Section 1 crash comparison")
    sweep.add_argument("--seed", type=int, default=0)
    sweep.set_defaults(func=_cmd_crash_sweep)

    depth = sub.add_parser("witness-depth", help="Section 6.3 depth rule")
    depth.add_argument("--value-at-risk", type=float, default=1_000_000.0)
    depth.set_defaults(func=_cmd_witness_depth)

    table1 = sub.add_parser("table1", help="Table 1 + Section 6.4 example")
    table1.set_defaults(func=_cmd_table1)

    engine = sub.add_parser(
        "engine", help="run N concurrent AC2Ts through the SwapEngine"
    )
    engine.add_argument(
        "--protocol",
        choices=list(PROTOCOLS) + ["mixed"],
        default="ac3wn",
        help="protocol for every swap, or 'mixed' to round-robin all four",
    )
    engine.add_argument("--swaps", type=int, default=50)
    engine.add_argument("--rate", type=float, default=5.0, help="arrivals per second")
    engine.add_argument("--chains", type=int, default=3, help="number of asset chains")
    engine.add_argument("--participants", type=int, default=2, help="per swap")
    engine.add_argument("--seed", type=int, default=0)
    engine.add_argument(
        "--eager",
        action="store_true",
        help="advance drivers on block hooks, not just poll ticks",
    )
    engine.add_argument(
        "--validator-mode",
        choices=["anchor", "full-replica", "light-client"],
        default="anchor",
    )
    engine.set_defaults(func=_cmd_engine)

    congestion = sub.add_parser(
        "congestion",
        help="oversubscribed fee-market run: congestion prices swaps out",
    )
    congestion.add_argument(
        "--protocol",
        choices=list(PROTOCOLS) + ["mixed"],
        default="ac3wn",
        help="protocol for every swap, or 'mixed' to round-robin all four",
    )
    congestion.add_argument("--swaps", type=int, default=60)
    congestion.add_argument("--rate", type=float, default=12.0, help="arrivals per second")
    congestion.add_argument("--chains", type=int, default=2, help="number of asset chains")
    congestion.add_argument("--seed", type=int, default=0)
    congestion.add_argument(
        "--block-budget", type=int, default=16, help="block space per block (weight units)"
    )
    congestion.add_argument(
        "--capacity", type=int, default=96, help="mempool capacity (weight units)"
    )
    congestion.add_argument(
        "--low-share", type=float, default=0.5, help="fraction of price-insensitive swaps"
    )
    congestion.add_argument(
        "--crash-rate", type=float, default=0.0, help="fraction of swaps crashed mid-protocol"
    )
    congestion.add_argument(
        "--fee-shock", type=int, default=0, help="burst size of whale spam (0 = off)"
    )
    congestion.add_argument(
        "--shock-at", type=float, default=5.0, help="burst time, seconds after warm-up"
    )
    congestion.add_argument(
        "--shock-chain",
        default=None,
        help="chain to flood (default: the protocol's contended chain)",
    )
    congestion.add_argument(
        "--shock-fee-rate", type=int, default=8, help="fee rate the whale pays"
    )
    congestion.add_argument("--eager", action="store_true")
    congestion.add_argument(
        "--validator-mode",
        choices=["anchor", "full-replica", "light-client"],
        default="anchor",
    )
    congestion.set_defaults(func=_cmd_congestion)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
