"""Adversary subsystem: declarative attacks as experiment inputs.

Section 6.3 argues AC3WN's atomicity holds as long as no attacker can
fork the witness chain deeper than ``d``; this package makes that claim
*measurable*.  An :class:`AdversarySpec` (a strict-serde node on
:class:`~repro.experiment.ExperimentSpec`) declares a roster of
adversarial actors — a budgeted reorg attacker, a censoring miner, a
Byzantine participant, and a phase-keyed eclipse — and
:func:`build_roster` wires them into a live
:class:`~repro.engine.SwapEngine` run.  Attack exposure is attributed
per swap into :class:`~repro.core.protocol.SwapOutcome` /
:class:`~repro.engine.EngineMetrics`, and the ``security-matrix`` sweep
preset turns the whole thing into the paper's empirical depth-vs-cost
trade-off surface.

The public surface:

* :class:`AdversarySpec` and the per-actor spec nodes
  (:mod:`repro.adversary.spec`);
* the live actors and :class:`AdversaryRoster`
  (:mod:`repro.adversary.actors`);
* :func:`build_roster` — spec + environment + engine -> armed roster.
"""

from .actors import (
    AdversaryRoster,
    AttackRecord,
    ByzantineParticipant,
    CensoringMiner,
    EclipseActor,
    ReorgAttacker,
    build_roster,
    decision_chain,
)
from .spec import (
    BYZANTINE_BEHAVIORS,
    DRIVER_PHASES,
    AdversarySpec,
    ByzantineSpec,
    CensorSpec,
    EclipseSpec,
    ReorgAttackSpec,
)

__all__ = [
    "BYZANTINE_BEHAVIORS",
    "DRIVER_PHASES",
    "AdversaryRoster",
    "AdversarySpec",
    "AttackRecord",
    "ByzantineParticipant",
    "ByzantineSpec",
    "CensorSpec",
    "CensoringMiner",
    "EclipseActor",
    "EclipseSpec",
    "ReorgAttackSpec",
    "ReorgAttacker",
    "build_roster",
    "decision_chain",
]
