"""The adversary schema: attacks as declarative, sweepable spec nodes.

Section 6.3's threat model — a malicious participant who rents hash
power to fork the witness chain and flip an already-observed decision —
plus the companion Byzantine behaviours (censorship, signature
withholding, settle refusal, phase-keyed eclipses) are described here
as one strict-serde :class:`AdversarySpec` hanging off
:class:`~repro.experiment.spec.ExperimentSpec`.  Every actor is a
singleton node with an ``enabled`` flag so sweep axes can address its
parameters with plain dotted paths (``adversary.reorg.hashpower``,
``adversary.reorg.enabled``) — the mechanism behind the
``security-matrix`` campaign.

The spec layer contains no execution logic; see
:mod:`repro.adversary.actors` for the engine-scheduled actors and
:func:`repro.adversary.build_roster` for the wiring.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

#: Byzantine participant behaviours.
BYZANTINE_BEHAVIORS = ("withhold-settle", "decline", "withhold-signature")

#: Phases the built-in protocol drivers announce (see
#: ``ProtocolDriver._set_phase``): Herlihy's publish/settle rolling
#: phase, AC3WN's four Δ-phases, AC3TW's deploy/settle.  An eclipse
#: keyed to a phase its protocol never enters would silently disarm, so
#: the spec only accepts phases some driver actually fires.
DRIVER_PHASES = ("publish", "scw-wait", "deploy", "decision-wait", "settle")


@dataclass(frozen=True)
class ReorgAttackSpec:
    """A rented-hashpower reorg attacker (Section 6.3's 51% attack).

    The attacker watches ``chain_id`` for a decision reaching
    ``trigger_depth`` confirmations — an AC3WN ``authorize_redeem``
    settling on the witness chain, or an HTLC ``redeem`` settling on an
    asset chain — then forks the chain from the block *before* the
    decision and mines a private branch at ``hashpower`` times the
    honest block rate.  The private branch censors the decision and
    (for witness targets) carries the attacker's own ``flip_function``
    call; it is published the moment it out-works the public branch.

    The budget comes from the paper's cost model: each private block
    costs ``hourly_cost / blocks_per_hour`` USD and a rational attacker
    never spends more than ``value_at_risk``, so at most
    ``floor(value_at_risk * blocks_per_hour / hourly_cost)`` blocks are
    ever mined per attack — precisely one block short of
    :func:`repro.analysis.security.required_depth`, which is why the
    measured violation rate drops to zero once ``d`` reaches the
    analytic bound.

    Attributes:
        enabled: arm the attacker.
        chain_id: target chain (None = the protocol's decision chain —
            the witness chain for witness-coordinated runs, else the
            first asset chain).
        hashpower: attacker block rate relative to the honest chain
            (2.0 = mines twice as fast as the public network).
        value_at_risk: ``Va`` — USD the attacker stands to gain.
        hourly_cost: ``Ch`` — USD per hour of 51% hash power.
        blocks_per_hour: ``dh`` — the modelled chain's block rate.
        trigger_depth: confirmations at which a decision counts as
            observed and the attack launches (None = the target chain's
            ``confirmation_depth`` — attack exactly when honest
            participants act on the decision).
        trigger_functions: call-message functions that count as
            decisions worth flipping.
        flip_function: the counter-decision the attacker mines into its
            private branch when the trigger was a witness-contract
            authorization ("" disables the flip).
        exploit: after winning a witness-chain reorg, spend the flipped
            decision — submit refund calls carrying the new ``RFauth``
            evidence against the victim swap's still-open contracts.
        max_attacks: cap on launched attacks (None = every affordable
            trigger while idle).
        attacker: name of the adversary's funded on-chain identity.
    """

    enabled: bool = False
    chain_id: str | None = None
    hashpower: float = 2.0
    value_at_risk: float = 175_000.0
    hourly_cost: float = 300_000.0
    blocks_per_hour: float = 6.0
    trigger_depth: int | None = None
    trigger_functions: tuple[str, ...] = ("authorize_redeem", "redeem")
    flip_function: str = "authorize_refund"
    exploit: bool = True
    max_attacks: int | None = None
    attacker: str = "mallory"

    def block_cost_usd(self) -> float:
        """Cost of renting 51% hash power for one block interval."""
        return self.hourly_cost / self.blocks_per_hour

    def budget_blocks(self) -> int:
        """Private blocks a rational attacker can afford per attack."""
        return math.floor(
            self.value_at_risk * self.blocks_per_hour / self.hourly_cost
        )

    def required_depth(self) -> int:
        """The analytic safety bound for these cost-model parameters."""
        from ..analysis.security import required_depth

        return required_depth(
            self.value_at_risk, self.hourly_cost, self.blocks_per_hour
        )


@dataclass(frozen=True)
class CensorSpec:
    """A censoring miner: excludes matching messages from its templates.

    The target chain's miner keeps mining normally but never includes a
    message matching any of the criteria (OR across criteria; a
    criterion left empty does not match).  Censored messages are
    re-queued, so they stay pending forever — the liveness attack of
    Section 5's discussion.

    Attributes:
        enabled: arm the censor.
        chain_id: chain whose miner censors (None = the protocol's
            decision chain, like :class:`ReorgAttackSpec`).
        functions: call-message function names to censor
            (per-contract-class decision censorship, e.g.
            ``("authorize_redeem",)``).
        contract_classes: deploy-message contract classes to censor.
        participants: sender names to censor — full names, swap-role
            letters (``"b"`` matches every ``swapNNNN.b``), or name
            prefixes ending in ``.`` / ``*`` (``"swap0007."`` censors
            one swap's entire traffic).
    """

    enabled: bool = False
    chain_id: str | None = None
    functions: tuple[str, ...] = ()
    contract_classes: tuple[str, ...] = ()
    participants: tuple[str, ...] = ()


@dataclass(frozen=True)
class ByzantineSpec:
    """A Byzantine swap participant (one corrupted role per swap).

    Attributes:
        enabled: arm the actor.
        role: the corrupted participant — a swap-local role letter
            (``"b"`` resolves to ``swapNNNN.b`` per swap) or a literal
            participant name.
        behavior: ``"withhold-settle"`` (participate honestly until the
            settle phase, then refuse every settle step),
            ``"decline"`` (never publish the role's asset contracts), or
            ``"withhold-signature"`` (withhold the role's signature
            from ``ms(D)`` so registration validity fails on-chain;
            falls back to ``decline`` for protocols without a
            multisignature).
        share: fraction of swaps corrupted, drawn per swap from the
            ``adversary/byzantine`` RNG stream in submission order.
    """

    enabled: bool = False
    role: str = "b"
    behavior: str = "withhold-settle"
    share: float = 1.0


@dataclass(frozen=True)
class EclipseSpec:
    """A phase-keyed eclipse: isolate a participant at a protocol step.

    Rather than a wall-clock :class:`~repro.sim.failures.FailureSchedule`
    window, the eclipse fires exactly when the victim's swap enters
    ``phase`` — the victim crashes (and is partitioned from the
    network, when one exists) for ``duration`` seconds, then recovers.

    Attributes:
        enabled: arm the actor.
        role: victim role letter or literal participant name.
        phase: driver phase that triggers the eclipse (one of
            :data:`DRIVER_PHASES`; ``"settle"`` fires for every
            protocol, the others are protocol-specific).
        duration: seconds the victim stays isolated.
        share: fraction of swaps eclipsed (``adversary/eclipse``
            stream, submission order).
    """

    enabled: bool = False
    role: str = "a"
    phase: str = "settle"
    duration: float = 3.0
    share: float = 1.0


@dataclass(frozen=True)
class AdversarySpec:
    """The adversarial roster of one experiment (all actors optional)."""

    reorg: ReorgAttackSpec = field(default_factory=ReorgAttackSpec)
    censor: CensorSpec = field(default_factory=CensorSpec)
    byzantine: ByzantineSpec = field(default_factory=ByzantineSpec)
    eclipse: EclipseSpec = field(default_factory=EclipseSpec)

    @property
    def any_enabled(self) -> bool:
        return (
            self.reorg.enabled
            or self.censor.enabled
            or self.byzantine.enabled
            or self.eclipse.enabled
        )

    def validate(self, fail, known_chains: set[str]) -> None:
        """Semantic checks, reporting through ``fail(message)``."""
        reorg = self.reorg
        if reorg.enabled:
            if reorg.hashpower <= 0:
                fail("adversary.reorg.hashpower must be positive")
            if reorg.value_at_risk < 0:
                fail("adversary.reorg.value_at_risk must be non-negative")
            if reorg.hourly_cost <= 0 or reorg.blocks_per_hour <= 0:
                fail(
                    "adversary.reorg.hourly_cost and .blocks_per_hour "
                    "must be positive"
                )
            if reorg.trigger_depth is not None and reorg.trigger_depth < 1:
                fail("adversary.reorg.trigger_depth must be at least 1")
            if not reorg.trigger_functions:
                fail("adversary.reorg.trigger_functions must not be empty")
            if reorg.max_attacks is not None and reorg.max_attacks < 1:
                fail("adversary.reorg.max_attacks must be at least 1")
            if not reorg.attacker:
                fail("adversary.reorg.attacker needs a name")
            if reorg.chain_id is not None and reorg.chain_id not in known_chains:
                fail(f"adversary.reorg names unknown chain {reorg.chain_id!r}")
        censor = self.censor
        if censor.enabled:
            if not (
                censor.functions or censor.contract_classes or censor.participants
            ):
                fail(
                    "adversary.censor needs at least one criterion "
                    "(functions, contract_classes, or participants)"
                )
            if censor.chain_id is not None and censor.chain_id not in known_chains:
                fail(f"adversary.censor names unknown chain {censor.chain_id!r}")
        byzantine = self.byzantine
        if byzantine.enabled:
            if byzantine.behavior not in BYZANTINE_BEHAVIORS:
                fail(
                    f"adversary.byzantine.behavior must be one of "
                    f"{BYZANTINE_BEHAVIORS}, got {byzantine.behavior!r}"
                )
            if not byzantine.role:
                fail("adversary.byzantine.role needs a name")
            if not 0.0 <= byzantine.share <= 1.0:
                fail("adversary.byzantine.share must be within [0, 1]")
        eclipse = self.eclipse
        if eclipse.enabled:
            if not eclipse.role:
                fail("adversary.eclipse.role needs a name")
            if eclipse.phase not in DRIVER_PHASES:
                fail(
                    f"adversary.eclipse.phase must be one of {DRIVER_PHASES}, "
                    f"got {eclipse.phase!r}"
                )
            if eclipse.duration <= 0:
                fail("adversary.eclipse.duration must be positive")
            if not 0.0 <= eclipse.share <= 1.0:
                fail("adversary.eclipse.share must be within [0, 1]")
