"""Engine-scheduled adversarial actors.

Each actor here executes one :mod:`repro.adversary.spec` node against a
live simulation:

* :class:`ReorgAttacker` — the Section 6.3 attack, generalized from
  :class:`repro.chain.miner.AttackMiner` into a self-scheduling actor:
  it watches the target chain for observed decisions, rents hash power
  (budgeted by the paper's cost model), mines a censoring private
  branch carrying its own counter-decision, publishes it the moment it
  out-works the public branch, and — on a won witness-chain fork —
  spends the flipped decision by refunding the victim's asset contracts
  with fresh ``RFauth`` evidence;
* :class:`CensoringMiner` — installs a censorship predicate on a
  chain's honest miner (messages matching it are never mined);
* :class:`ByzantineParticipant` — corrupts one role per targeted swap:
  refuses its settle step, declines to publish, or withholds its
  ``ms(D)`` signature;
* :class:`EclipseActor` — isolates a role for a fixed window keyed to a
  protocol *phase* (the :attr:`ProtocolDriver.on_phase` hook) rather
  than wall clock.

:class:`AdversaryRoster` owns the actors, attributes per-swap attack
exposure onto :class:`~repro.core.protocol.SwapOutcome` records, and
summarizes itself as a JSON-able report.  Everything draws only from
named deterministic RNG streams, so an attacked run is exactly as
seed-reproducible as an honest one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..chain.messages import CallMessage, DeployMessage, sign_message
from ..chain.miner import AttackMiner
from ..chain.pow import work_for_bits
from ..chain.transaction import TxInput, TxOutput
from ..core.ac3tw import AC3TWConfig
from ..core.ac3wn import AC3WNConfig
from ..core.evidence import AUTHORIZING_FUNCTIONS, build_state_evidence
from ..core.herlihy import HerlihyConfig
from ..errors import ProtocolError, ReproError, ValidationError
from .spec import (
    AdversarySpec,
    ByzantineSpec,
    CensorSpec,
    EclipseSpec,
    ReorgAttackSpec,
)


@dataclass
class AttackRecord:
    """One reorg attack, launched or forgone, and how it resolved."""

    chain_id: str
    target_contract: bytes
    trigger_function: str
    fork_height: int
    public_lead: int
    launched_at: float
    launched: bool
    resolved_at: float | None = None
    won: bool | None = None
    blocks: int = 0
    cost: float = 0.0
    exploit_refunds: int = 0

    def to_dict(self) -> dict:
        return {
            "chain_id": self.chain_id,
            "target_contract": self.target_contract.hex(),
            "trigger_function": self.trigger_function,
            "fork_height": self.fork_height,
            "public_lead": self.public_lead,
            "launched_at": self.launched_at,
            "launched": self.launched,
            "resolved_at": self.resolved_at,
            "won": self.won,
            "blocks": self.blocks,
            "cost": self.cost,
            "exploit_refunds": self.exploit_refunds,
        }


@dataclass
class _ActiveAttack:
    record: AttackRecord
    fork_hash: bytes
    flip_call: CallMessage | None
    pending_messages: list
    #: Outpoints the flip call spends, reserved for the attack's
    #: lifetime and released if the private branch never publishes.
    flip_outpoints: tuple = ()


class ReorgAttacker:
    """The rented-hashpower fork attacker (see module docstring)."""

    kind = "reorg"

    def __init__(self, env, engine, spec: ReorgAttackSpec, chain_id: str) -> None:
        self.env = env
        self.engine = engine
        self.spec = spec
        self.chain_id = chain_id
        self.chain = env.chain(chain_id)
        params = self.chain.params
        self.trigger_depth = (
            spec.trigger_depth
            if spec.trigger_depth is not None
            else params.confirmation_depth
        )
        self.budget_blocks = spec.budget_blocks()
        self.block_cost = spec.block_cost_usd()
        self._work_per_block = work_for_bits(params.difficulty_bits)
        self._interval = params.block_interval / spec.hashpower
        self._rng = env.simulator.stream(f"adversary/reorg/{chain_id}")
        self._miner = AttackMiner(self.chain)
        self._attacker = env.participants.get(spec.attacker)
        self._used_outpoints: set = set()
        self._seen: set[bytes] = set()
        self._scanned = self.chain.height
        self._active: _ActiveAttack | None = None
        self.records: list[AttackRecord] = []
        self.chain.add_block_listener(self._on_block)

    # -- trigger watching --------------------------------------------------

    def _on_block(self, block) -> None:
        horizon = self.chain.height - self.trigger_depth + 1
        while self._scanned < horizon:
            self._scanned += 1
            if self._active is None:
                self._scan_height(self._scanned)

    def _scan_height(self, height: int) -> None:
        if self.spec.max_attacks is not None:
            launched = sum(1 for r in self.records if r.launched)
            if launched >= self.spec.max_attacks:
                return
        attacker_key = (
            self._attacker.public_key if self._attacker is not None else None
        )
        for message in self.chain.block_at_height(height).messages:
            if not isinstance(message, CallMessage):
                continue
            if message.function not in self.spec.trigger_functions:
                continue
            if attacker_key is not None and message.sender == attacker_key:
                continue  # never attack our own counter-decisions
            message_id = message.message_id()
            if message_id in self._seen:
                continue
            self._seen.add(message_id)
            self._launch(message, height)
            return  # one rented fleet: at most one attack at a time

    # -- the attack --------------------------------------------------------

    def _launch(self, trigger: CallMessage, height: int) -> None:
        sim = self.env.simulator
        fork_height = height - 1
        public_lead = self.chain.height - fork_height
        record = AttackRecord(
            chain_id=self.chain_id,
            target_contract=trigger.contract_id,
            trigger_function=trigger.function,
            fork_height=fork_height,
            public_lead=public_lead,
            launched_at=sim.now,
            launched=False,
        )
        self.records.append(record)
        collector = self.engine.collector
        if self.budget_blocks < public_lead + 1:
            # The cost model says this decision is buried too deep to
            # flip profitably — the rational attacker walks away.  This
            # is exactly the depth-d defense paying off.
            record.resolved_at = sim.now
            record.won = False
            if collector is not None:
                collector.emit(
                    "adversary",
                    "forgone",
                    swap_id=self.engine.trace_swap_for(record.target_contract),
                    chain_id=self.chain_id,
                    actor="reorg",
                    trigger=record.trigger_function,
                    public_lead=public_lead,
                    budget_blocks=self.budget_blocks,
                )
            return
        record.launched = True
        if collector is not None:
            collector.emit(
                "adversary",
                "launch",
                swap_id=self.engine.trace_swap_for(record.target_contract),
                chain_id=self.chain_id,
                actor="reorg",
                trigger=record.trigger_function,
                fork_height=fork_height,
                public_lead=public_lead,
                target=record.target_contract.hex()[:16],
            )
        fork_hash = self.chain.block_at_height(fork_height).block_id()
        self._miner.fork_from(fork_hash)
        flip = None
        if (
            trigger.function in AUTHORIZING_FUNCTIONS
            and self.spec.flip_function
            and self._attacker is not None
        ):
            flip = self._build_flip(trigger, fork_hash)
        self._active = _ActiveAttack(
            record=record,
            fork_hash=fork_hash,
            flip_call=flip,
            pending_messages=[flip] if flip is not None else [],
            flip_outpoints=(
                tuple(inp.outpoint for inp in flip.inputs) if flip is not None else ()
            ),
        )
        self._schedule_mine()

    def _schedule_mine(self) -> None:
        if self.chain.params.deterministic_intervals:
            delay = self._interval
        else:
            delay = self._rng.expovariate(1.0 / self._interval)
        self.env.simulator.schedule(
            delay, self._mine_step, label=f"reorg attacker {self.chain_id}"
        )

    def _mine_step(self) -> None:
        attack = self._active
        if attack is None:
            return
        sim = self.env.simulator
        record = attack.record
        messages, attack.pending_messages = attack.pending_messages, []
        try:
            self._miner.extend(messages, timestamp=sim.now)
        except ValidationError:
            # The counter-decision no longer applies on the fork state;
            # keep censoring with an empty block instead (and release
            # the never-mined flip's funding).
            attack.flip_call = None
            self._used_outpoints.difference_update(attack.flip_outpoints)
            attack.flip_outpoints = ()
            self._miner.extend([], timestamp=sim.now)
        record.blocks += 1
        record.cost += self.block_cost
        private_work = (
            self.chain.cumulative_work(attack.fork_hash)
            + record.blocks * self._work_per_block
        )
        if private_work > self.chain.cumulative_work(self.chain.head_hash):
            self._miner.release()
            record.won = True
            record.resolved_at = sim.now
            self._active = None
            collector = self.engine.collector
            if collector is not None:
                collector.emit(
                    "adversary",
                    "won",
                    swap_id=self.engine.trace_swap_for(record.target_contract),
                    chain_id=self.chain_id,
                    actor="reorg",
                    blocks=record.blocks,
                    cost=record.cost,
                )
            if self.spec.exploit:
                if attack.flip_call is not None:
                    record.exploit_refunds = self._exploit(attack)
                    if collector is not None and record.exploit_refunds:
                        collector.emit(
                            "adversary",
                            "exploit",
                            swap_id=self.engine.trace_swap_for(
                                record.target_contract
                            ),
                            chain_id=self.chain_id,
                            actor="reorg",
                            refunds=record.exploit_refunds,
                            mode="evidence",
                        )
                else:
                    self._schedule_timelock_exploit(attack)
            return
        if record.blocks >= self.budget_blocks:
            # Budget exhausted while still behind: the honest chain won
            # the race.  Abandon the private branch unpublished; the
            # flip's funding was never spent on-chain, so it is
            # released for the next attack's counter-decision.
            self._miner.private_blocks.clear()
            self._used_outpoints.difference_update(attack.flip_outpoints)
            record.won = False
            record.resolved_at = sim.now
            self._active = None
            collector = self.engine.collector
            if collector is not None:
                collector.emit(
                    "adversary",
                    "lost",
                    swap_id=self.engine.trace_swap_for(record.target_contract),
                    chain_id=self.chain_id,
                    actor="reorg",
                    blocks=record.blocks,
                    cost=record.cost,
                )
            return
        self._schedule_mine()

    # -- the counter-decision and its exploitation -------------------------

    def _build_flip(self, trigger: CallMessage, fork_hash: bytes):
        """The attacker's own flip call, funded from the fork-point state.

        Never submitted to a mempool: it exists only inside the private
        branch, which is what makes the censorship + flip atomic.
        """
        attacker = self._attacker
        fee = self.chain.params.fees.call
        state = self.chain.state_at(fork_hash)
        selected: list[TxInput] = []
        total = 0
        for outpoint in state.utxos.outpoints_of(attacker.address):
            if outpoint in self._used_outpoints:
                continue
            if total >= fee:
                break
            selected.append(TxInput(outpoint))
            total += state.utxos.get(outpoint).value
        if total < fee:
            return None
        self._used_outpoints.update(inp.outpoint for inp in selected)
        change = (
            (TxOutput(attacker.address, total - fee),) if total > fee else ()
        )
        call = CallMessage(
            sender=attacker.public_key,
            contract_id=trigger.contract_id,
            function=self.spec.flip_function,
            args=(),
            fee=fee,
            inputs=tuple(selected),
            change=change,
            nonce=attacker.next_nonce(),
        )
        return sign_message(call, attacker.keypair)

    def _exploit(self, attack: _ActiveAttack) -> int:
        """Spend a won witness fork: refund the victim's open contracts.

        The flipped coordinator now shows the counter-decision buried at
        the private branch's full depth, so the attacker can build
        ``RFauth`` state evidence and refund every asset contract the
        honest side has not settled yet — the profit step that turns a
        won fork into an atomicity violation.
        """
        state_name = AUTHORIZING_FUNCTIONS.get(self.spec.flip_function)
        victim = None
        for request in self.engine.requests:
            outcome = (
                request.driver.outcome
                if request.driver is not None
                else request.outcome
            )
            if outcome is None:
                continue
            if outcome.coordinator_contract_id == attack.record.target_contract:
                victim = outcome
                break
        if victim is None or state_name is None:
            return 0
        refunds = 0
        for record in victim.contracts.values():
            if not record.contract_id:
                continue
            chain = self.env.chains.get(record.edge.chain_id)
            if chain is None or not chain.has_contract(record.contract_id):
                continue
            contract = chain.contract(record.contract_id)
            if getattr(contract, "state", None) != "P":
                continue
            try:
                evidence = build_state_evidence(
                    self.chain,
                    attack.record.target_contract,
                    attack.flip_call,
                    state_name,
                    anchor=getattr(contract, "witness_anchor", None),
                )
                self._attacker.call_contract(
                    record.edge.chain_id,
                    record.contract_id,
                    "refund",
                    args=(evidence,),
                )
            except ReproError:
                continue
            refunds += 1
        return refunds

    def _schedule_timelock_exploit(self, attack: _ActiveAttack) -> None:
        """Spend a won asset-chain fork: refund past the timelock.

        Erasing an HTLC redemption resets the contract to ``P``; the
        honest recipient already acted on the observed settlement and
        does not retry, so once the timelock expires the attacker
        claims the refund arm — Section 1's double-settlement, executed
        with rented hash power.
        """
        target = attack.record.target_contract
        if not self.chain.has_contract(target):
            return
        contract = self.chain.contract(target)
        if getattr(contract, "state", None) != "P":
            return
        timelock = getattr(contract, "timelock", None)
        if timelock is None:
            return  # not a timelock contract (e.g. a PermissionlessSC)
        sim = self.env.simulator
        sim.schedule(
            max(0.0, timelock - sim.now),
            lambda: self._timelock_refund(attack),
            label=f"reorg attacker refund {self.chain_id}",
        )

    def _timelock_refund(self, attack: _ActiveAttack) -> None:
        target = attack.record.target_contract
        if self._attacker is None or not self.chain.has_contract(target):
            return
        if self.chain.contract(target).state != "P":
            return
        try:
            self._attacker.call_contract(self.chain_id, target, "refund", args=(b"",))
        except ReproError:
            return
        attack.record.exploit_refunds += 1
        collector = self.engine.collector
        if collector is not None:
            collector.emit(
                "adversary",
                "exploit",
                swap_id=self.engine.trace_swap_for(target),
                chain_id=self.chain_id,
                actor="reorg",
                refunds=attack.record.exploit_refunds,
                mode="timelock",
            )

    # -- reporting ---------------------------------------------------------

    def summary(self) -> dict:
        launched = [r for r in self.records if r.launched]
        resolved = [r for r in launched if r.won is not None]
        by_depth: dict[str, dict[str, int]] = {}
        for record in resolved:
            cell = by_depth.setdefault(
                str(record.public_lead), {"won": 0, "lost": 0}
            )
            cell["won" if record.won else "lost"] += 1
        return {
            "kind": self.kind,
            "chain_id": self.chain_id,
            "trigger_depth": self.trigger_depth,
            "budget_blocks": self.budget_blocks,
            "required_depth": self.spec.required_depth(),
            "attacks_launched": len(launched),
            "attacks_forgone": len(self.records) - len(launched),
            "reorgs_won": sum(1 for r in resolved if r.won),
            "reorgs_lost": sum(1 for r in resolved if not r.won),
            "blocks_mined": sum(r.blocks for r in self.records),
            "cost_spent": sum(r.cost for r in self.records),
            "value_at_risk": self.spec.value_at_risk,
            "outcomes_by_depth": dict(sorted(by_depth.items())),
            "attacks": [r.to_dict() for r in self.records],
        }


class CensoringMiner:
    """Installs a censorship predicate on one chain's honest miner."""

    kind = "censor"

    def __init__(self, env, spec: CensorSpec, chain_id: str) -> None:
        self.env = env
        self.spec = spec
        self.chain_id = chain_id
        self.miner = env.miners[chain_id]
        self.censored_names = self._resolve_participants()
        self._censored_addresses = {
            env.participants[name].address.raw for name in self.censored_names
        }
        self.miner.censor = self._predicate

    def _resolve_participants(self) -> set[str]:
        names: set[str] = set()
        for pattern in self.spec.participants:
            for name in self.env.participants:
                if (
                    name == pattern
                    or (len(pattern) == 1 and name.endswith(f".{pattern}"))
                    or (pattern.endswith((".", "*")) and name.startswith(pattern.rstrip("*")))
                ):
                    names.add(name)
        return names

    def _predicate(self, message) -> bool:
        if isinstance(message, DeployMessage):
            if message.contract_class in self.spec.contract_classes:
                return True
            return message.sender.address().raw in self._censored_addresses
        if isinstance(message, CallMessage):
            if message.function in self.spec.functions:
                return True
            return message.sender.address().raw in self._censored_addresses
        return False

    def summary(self) -> dict:
        return {
            "kind": self.kind,
            "chain_id": self.chain_id,
            "messages_censored": self.miner.messages_censored,
            "censored_participants": sorted(self.censored_names),
        }


def _resolve_role(graph, role: str) -> str | None:
    """A swap-local role letter or literal name -> participant name."""
    names = graph.participant_names()
    if role in names:
        return role
    if len(role) == 1:
        for name in names:
            if name.endswith(f".{role}"):
                return name
    return None


class ByzantineParticipant:
    """Corrupts one role of each targeted swap (see :class:`ByzantineSpec`)."""

    kind = "byzantine"

    def __init__(self, env, engine, spec: ByzantineSpec) -> None:
        self.env = env
        self.engine = engine
        self.spec = spec
        self._rng = env.simulator.stream("adversary/byzantine")
        self.corrupted: dict[int, str] = {}
        engine.launch_hooks.append(self._on_request)
        engine.driver_hooks.append(self._on_driver)

    def _on_request(self, request) -> None:
        if self._rng.random() >= self.spec.share:
            return
        victim = _resolve_role(request.graph, self.spec.role)
        if victim is None:
            return
        self.corrupted[request.swap_id] = victim
        collector = self.engine.collector
        if collector is not None:
            collector.emit(
                "adversary",
                "corrupt",
                swap_id=request.swap_id,
                actor="byzantine",
                victim=victim,
                behavior=self.spec.behavior,
            )
        behavior = self.spec.behavior
        if behavior == "withhold-signature" and request.protocol not in (
            "ac3wn",
            "ac3tw",
        ):
            behavior = "decline"  # no multisignature to withhold from
        if behavior == "decline":
            self._apply_config(request, decliners=frozenset({victim}))
        elif behavior == "withhold-signature":
            self._apply_config(request, omit_signers=frozenset({victim}))
        # withhold-settle acts through the driver hook below.

    def _apply_config(self, request, **changes) -> None:
        import dataclasses

        config = request.config
        if config is None:
            if request.protocol in ("nolan", "herlihy"):
                config = HerlihyConfig()
            elif request.protocol == "ac3tw":
                config = AC3TWConfig()
            elif request.protocol == "ac3wn":
                config = AC3WNConfig(witness_chain_id=self.engine.witness_chain_id)
            else:
                return  # unknown plug-in protocol: leave it alone
        merged = {
            key: getattr(config, key) | value for key, value in changes.items()
        }
        request.config = dataclasses.replace(config, **merged)

    def _on_driver(self, request, driver) -> None:
        victim_name = self.corrupted.get(request.swap_id)
        if victim_name is None or self.spec.behavior != "withhold-settle":
            return
        victim = self.env.participant(victim_name)

        def on_phase(phase: str, victim=victim, driver=driver) -> None:
            if phase == "settle" and not victim.crashed:
                victim.crash()
                driver.outcome.notes.append(
                    f"byzantine: {victim.name} refuses its settle step"
                )

        driver.on_phase.append(on_phase)

    def summary(self) -> dict:
        return {
            "kind": self.kind,
            "behavior": self.spec.behavior,
            "role": self.spec.role,
            "swaps_corrupted": len(self.corrupted),
        }


class EclipseActor:
    """Phase-keyed isolation windows (see :class:`EclipseSpec`)."""

    kind = "eclipse"

    def __init__(self, env, engine, spec: EclipseSpec) -> None:
        self.env = env
        self.engine = engine
        self.spec = spec
        self._rng = env.simulator.stream("adversary/eclipse")
        self.eclipsed: dict[int, str] = {}
        engine.driver_hooks.append(self._on_driver)

    def _on_driver(self, request, driver) -> None:
        if self._rng.random() >= self.spec.share:
            return
        victim_name = _resolve_role(request.graph, self.spec.role)
        if victim_name is None:
            return
        victim = self.env.participant(victim_name)
        fired = []

        def on_phase(phase: str) -> None:
            if phase != self.spec.phase or fired:
                return
            fired.append(self.env.simulator.now)
            self.eclipsed[request.swap_id] = victim_name
            collector = self.engine.collector
            if collector is not None:
                collector.emit(
                    "adversary",
                    "eclipse",
                    swap_id=request.swap_id,
                    actor="eclipse",
                    victim=victim_name,
                    phase=phase,
                    duration=self.spec.duration,
                )
            victim.crash()
            network = getattr(self.env, "network", None)
            if network is not None:
                network.partition({victim_name}, self.spec.duration)
            self.env.simulator.schedule(
                self.spec.duration,
                victim.recover,
                label=f"eclipse heal {victim_name}",
            )
            driver.outcome.notes.append(
                f"eclipse: {victim_name} isolated for "
                f"{self.spec.duration}s at phase {phase!r}"
            )

        driver.on_phase.append(on_phase)

    def summary(self) -> dict:
        return {
            "kind": self.kind,
            "role": self.spec.role,
            "phase": self.spec.phase,
            "duration": self.spec.duration,
            "swaps_eclipsed": len(self.eclipsed),
        }


class AdversaryRoster:
    """The live adversary of one run: actors, attribution, report."""

    def __init__(self, spec: AdversarySpec) -> None:
        self.spec = spec
        self._violations_emitted: set[int] = set()
        self.reorg: ReorgAttacker | None = None
        self.censor: CensoringMiner | None = None
        self.byzantine: ByzantineParticipant | None = None
        self.eclipse: EclipseActor | None = None

    def actors(self) -> list:
        return [
            actor
            for actor in (self.reorg, self.censor, self.byzantine, self.eclipse)
            if actor is not None
        ]

    # -- per-swap attribution ----------------------------------------------

    def attribute(self, requests) -> None:
        """Stamp attack exposure onto the outcomes (idempotent).

        A reorg attack is attributed to the swap owning the targeted
        contract (coordinator or asset); censorship, Byzantine roles,
        and eclipses to the swaps they corrupted.  When any fork was
        won, final states are first re-audited against chain truth.
        """
        self._audit(requests)
        outcomes = {
            request.swap_id: request.outcome
            for request in requests
            if request.outcome is not None
        }
        by_contract: dict[bytes, int] = {}
        for request in requests:
            outcome = outcomes.get(request.swap_id)
            if outcome is None:
                continue
            outcome.attacked_by = []
            outcome.attacks_launched = 0
            outcome.reorgs_won = 0
            outcome.reorgs_lost = 0
            outcome.attack_blocks = 0
            outcome.attack_cost = 0.0
            if outcome.coordinator_contract_id:
                by_contract[outcome.coordinator_contract_id] = request.swap_id
            for record in outcome.contracts.values():
                if record.contract_id:
                    by_contract[record.contract_id] = request.swap_id
        if self.reorg is not None:
            for record in self.reorg.records:
                swap_id = by_contract.get(record.target_contract)
                outcome = outcomes.get(swap_id) if swap_id is not None else None
                if outcome is None:
                    continue
                if "reorg" not in outcome.attacked_by:
                    outcome.attacked_by.append("reorg")
                if record.launched:
                    outcome.attacks_launched += 1
                    if record.won:
                        outcome.reorgs_won += 1
                    elif record.won is not None:
                        outcome.reorgs_lost += 1
                outcome.attack_blocks += record.blocks
                outcome.attack_cost += record.cost
        if self.censor is not None and self.censor.censored_names:
            for request in requests:
                outcome = outcomes.get(request.swap_id)
                if outcome is None:
                    continue
                names = set(request.graph.participant_names())
                if names & self.censor.censored_names:
                    if "censor" not in outcome.attacked_by:
                        outcome.attacked_by.append("censor")
        for actor, kind in ((self.byzantine, "byzantine"), (self.eclipse, "eclipse")):
            if actor is None:
                continue
            for swap_id in actor.corrupted if kind == "byzantine" else actor.eclipsed:
                outcome = outcomes.get(swap_id)
                if outcome is not None and kind not in outcome.attacked_by:
                    outcome.attacked_by.append(kind)

    def _audit(self, requests) -> None:
        """Re-derive recorded final states from the chains (idempotent).

        A driver's outcome is a snapshot of what its participants
        *observed*; a reorg attacker can rewrite settled history after
        that snapshot was taken.  Atomicity is a property of chain
        state, so under an active reorg attacker the chains are the
        measurement of record — an erased redemption followed by the
        attacker's refund becomes a *measured* violation instead of a
        stale "commit".
        """
        if self.reorg is None or not any(r.won for r in self.reorg.records):
            return
        env = self.reorg.env
        collector = self.reorg.engine.collector
        for request in requests:
            outcome = request.outcome
            if outcome is None:
                continue
            was_atomic = outcome.is_atomic
            rewritten = 0
            for key, record in outcome.contracts.items():
                if not record.contract_id:
                    continue
                chain = env.chains.get(record.edge.chain_id)
                if chain is None:
                    continue
                if chain.has_contract(record.contract_id):
                    truth = chain.contract(record.contract_id).state
                else:
                    truth = "unpublished"
                if truth != record.final_state:
                    outcome.notes.append(
                        f"reorg rewrote {key}: observed "
                        f"{record.final_state!r}, chain says {truth!r}"
                    )
                    record.final_state = truth
                    rewritten += 1
            # The outcome event already went out (with the snapshot the
            # drivers observed); a flip discovered here is a *new* fact
            # the live monitor must see, so emit it as its own event —
            # once per swap, since the audit is idempotent.
            if (
                rewritten
                and was_atomic
                and not outcome.is_atomic
                and collector is not None
                and request.swap_id not in self._violations_emitted
            ):
                self._violations_emitted.add(request.swap_id)
                collector.emit(
                    "swap",
                    "violation",
                    swap_id=request.swap_id,
                    decision=outcome.decision,
                    rewritten=rewritten,
                )

    def report(self) -> dict:
        """A JSON-able summary of everything the adversary did."""
        return {actor.kind: actor.summary() for actor in self.actors()}


def decision_chain(protocol: str, asset_ids, witness_chain_id: str) -> str:
    """The chain an unpinned adversary contends: the witness chain for
    witness-coordinated protocols, else the first asset chain."""
    if protocol in ("ac3wn", "mixed"):
        return witness_chain_id
    return asset_ids[0]


def build_roster(spec, env, engine) -> AdversaryRoster | None:
    """Wire the spec's enabled actors into a live environment + engine.

    Returns None when no actor is enabled, so honest runs carry zero
    adversary machinery.
    """
    adversary: AdversarySpec = spec.adversary
    if not adversary.any_enabled:
        return None
    roster = AdversaryRoster(adversary)
    default_chain = decision_chain(
        spec.protocol, spec.chains.asset_ids(), spec.chains.witness
    )
    if adversary.reorg.enabled:
        chain_id = adversary.reorg.chain_id or default_chain
        if chain_id not in env.chains:
            raise ProtocolError(f"adversary.reorg targets unknown chain {chain_id!r}")
        roster.reorg = ReorgAttacker(env, engine, adversary.reorg, chain_id)
    if adversary.censor.enabled:
        chain_id = adversary.censor.chain_id or default_chain
        if chain_id not in env.miners:
            raise ProtocolError(f"adversary.censor targets unknown chain {chain_id!r}")
        roster.censor = CensoringMiner(env, adversary.censor, chain_id)
    if adversary.byzantine.enabled:
        roster.byzantine = ByzantineParticipant(env, engine, adversary.byzantine)
    if adversary.eclipse.enabled:
        roster.eclipse = EclipseActor(env, engine, adversary.eclipse)
    engine.attach_adversary(roster)
    return roster
