"""Canonical wire encoding for consensus-critical hashing.

Blocks commit to their messages through a Merkle tree over *message ids*,
and a message id is the SHA-256 of the message's canonical encoding.  Two
structurally equal messages must therefore encode to identical bytes on
every node.  This module defines that encoding: a deterministic
tag-length-value scheme over a small universe of types.

Supported values: ``None``, ``bool``, ``int``, ``str``, ``bytes``,
``tuple``/``list`` (encoded identically), ``dict`` with string keys
(encoded in sorted key order), and any object exposing ``to_wire()``
returning a supported value.  Floats are intentionally rejected: they
have no place in consensus data.
"""

from __future__ import annotations

import hashlib
from typing import Any

_TAG_NONE = b"N"
_TAG_FALSE = b"F"
_TAG_TRUE = b"T"
_TAG_INT = b"I"
_TAG_STR = b"S"
_TAG_BYTES = b"B"
_TAG_LIST = b"L"
_TAG_DICT = b"D"


def _encode_into(value: Any, out: bytearray) -> None:
    if value is None:
        out += _TAG_NONE
        return
    if value is True:
        out += _TAG_TRUE
        return
    if value is False:
        out += _TAG_FALSE
        return
    if isinstance(value, int):
        body = str(value).encode("ascii")
        out += _TAG_INT + len(body).to_bytes(4, "big") + body
        return
    if isinstance(value, str):
        body = value.encode("utf-8")
        out += _TAG_STR + len(body).to_bytes(4, "big") + body
        return
    if isinstance(value, (bytes, bytearray, memoryview)):
        body = bytes(value)
        out += _TAG_BYTES + len(body).to_bytes(4, "big") + body
        return
    if isinstance(value, (tuple, list)):
        out += _TAG_LIST + len(value).to_bytes(4, "big")
        for item in value:
            _encode_into(item, out)
        return
    if isinstance(value, dict):
        keys = sorted(value)
        if any(not isinstance(k, str) for k in keys):
            raise TypeError("wire dicts must have string keys")
        out += _TAG_DICT + len(keys).to_bytes(4, "big")
        for key in keys:
            _encode_into(key, out)
            _encode_into(value[key], out)
        return
    to_wire = getattr(value, "to_wire", None)
    if callable(to_wire):
        _encode_into(to_wire(), out)
        return
    if isinstance(value, float):
        raise TypeError("floats are not allowed in consensus data")
    raise TypeError(f"cannot wire-encode {type(value).__name__}")


def canonical_encode(value: Any) -> bytes:
    """Encode ``value`` into canonical deterministic bytes."""
    out = bytearray()
    _encode_into(value, out)
    return bytes(out)


def wire_hash(value: Any, domain: str = "repro/wire") -> bytes:
    """SHA-256 of the canonical encoding, domain-separated by ``domain``."""
    return hash_encoded(canonical_encode(value), domain)


def hash_encoded(encoded: bytes, domain: str = "repro/wire") -> bytes:
    """Domain-separated SHA-256 over an already-canonical encoding.

    Messages derive several digests (message id, signing digest, contract
    id) from the *same* canonical bytes; callers that cache the encoding
    use this to skip re-encoding for each domain.
    """
    hasher = hashlib.sha256()
    hasher.update(domain.encode("utf-8"))
    hasher.update(b"\x00")
    hasher.update(encoded)
    return hasher.digest()
