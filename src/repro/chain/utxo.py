"""The unspent-transaction-output set.

Miners validate that "an asset cannot be spent twice" (Section 2.3); the
UTXO set is the data structure that enforces it.  Spending an outpoint
removes it; a second spend of the same outpoint raises
:class:`~repro.errors.DoubleSpendError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crypto.keys import Address
from ..errors import DoubleSpendError, ValidationError
from .transaction import OutPoint, Transaction, TxOutput


@dataclass
class UTXOSet:
    """Mapping of unspent outpoints to their outputs."""

    entries: dict[OutPoint, TxOutput] = field(default_factory=dict)

    def copy(self) -> "UTXOSet":
        """A shallow copy (entries are immutable, sharing them is safe)."""
        return UTXOSet(dict(self.entries))

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, outpoint: OutPoint) -> bool:
        return outpoint in self.entries

    def get(self, outpoint: OutPoint) -> TxOutput:
        """Return the unspent output at ``outpoint`` or raise."""
        try:
            return self.entries[outpoint]
        except KeyError:
            raise DoubleSpendError(f"outpoint {outpoint!r} is unknown or already spent")

    def balance_of(self, owner: Address) -> int:
        """Total unspent value owned by ``owner``."""
        return sum(out.value for out in self.entries.values() if out.owner == owner)

    def outpoints_of(self, owner: Address) -> list[OutPoint]:
        """All outpoints currently owned by ``owner`` (deterministic order)."""
        owned = [op for op, out in self.entries.items() if out.owner == owner]
        return sorted(owned, key=lambda op: (op.txid, op.index))

    def total_value(self) -> int:
        """Sum of all unspent values (the circulating supply)."""
        return sum(out.value for out in self.entries.values())

    # -- mutation ------------------------------------------------------------

    def add(self, outpoint: OutPoint, output: TxOutput) -> None:
        if outpoint in self.entries:
            raise ValidationError(f"outpoint {outpoint!r} already exists")
        self.entries[outpoint] = output

    def spend(self, outpoint: OutPoint) -> TxOutput:
        """Remove and return the output at ``outpoint``."""
        output = self.get(outpoint)
        del self.entries[outpoint]
        return output

    def apply_transaction(self, tx: Transaction, min_fee: int = 0) -> int:
        """Validate and apply ``tx``; returns the fee it pays.

        Validation: every input spends an existing output whose owner
        matches the input's pubkey, every signature verifies, inputs
        cover outputs plus ``min_fee``, and no outpoint is spent twice
        (including twice within this transaction).
        """
        if tx.is_coinbase:
            for index, out in enumerate(tx.outputs):
                self.add(OutPoint(tx.txid(), index), out)
            return 0

        seen: set[OutPoint] = set()
        digest = tx.signing_digest()
        total_in = 0
        for inp in tx.inputs:
            if inp.outpoint in seen:
                raise DoubleSpendError(f"outpoint {inp.outpoint!r} spent twice in one tx")
            seen.add(inp.outpoint)
            spent = self.get(inp.outpoint)
            if inp.pubkey is None or inp.signature is None:
                raise ValidationError("input lacks a pubkey or signature")
            if inp.pubkey.address() != spent.owner:
                raise ValidationError(
                    f"input pubkey does not own the spent output "
                    f"({inp.pubkey.address()} != {spent.owner})"
                )
            if not inp.pubkey.verify(digest, inp.signature):
                raise ValidationError("input signature failed verification")
            total_in += spent.value

        total_out = tx.total_output()
        if total_in < total_out + min_fee:
            raise ValidationError(
                f"inputs ({total_in}) do not cover outputs ({total_out}) "
                f"plus fee ({min_fee})"
            )

        for inp in tx.inputs:
            self.spend(inp.outpoint)
        txid = tx.txid()
        for index, out in enumerate(tx.outputs):
            self.add(OutPoint(txid, index), out)
        return total_in - total_out
