"""The mempool: messages waiting to be mined.

End-users multicast messages to miners (Section 2.1); the mempool is the
miner-side buffer.  Admission runs a light validation against the current
head state so obviously-invalid messages are rejected at submission time,
which gives protocol drivers immediate feedback.
"""

from __future__ import annotations

from collections import OrderedDict

from ..errors import ValidationError
from .chain import Blockchain
from .messages import CallMessage, ChainMessage, DeployMessage, TransferMessage


class Mempool:
    """FIFO pool of pending messages for one chain."""

    def __init__(self, chain: Blockchain) -> None:
        self.chain = chain
        self._pending: "OrderedDict[bytes, ChainMessage]" = OrderedDict()
        #: Total rejected submissions, with a per-cause breakdown.
        self.rejected = 0
        self.rejected_duplicate = 0
        self.rejected_invalid = 0
        self._eviction_listeners: list = []
        #: Optional flight recorder (set by :func:`repro.obs.instrument`);
        #: emit sites guard on ``is not None``.
        self.collector = None

    # -- eviction notifications --------------------------------------------
    #
    # The FIFO pool never evicts, but the listener API lives here so
    # event-driven protocol drivers can subscribe uniformly; the
    # fee-market PriorityMempool fires it whenever a pending message
    # loses its place (capacity eviction or replace-by-fee).

    def add_eviction_listener(self, listener) -> None:
        """Call ``listener(message_id)`` when a pending message is evicted."""
        self._eviction_listeners.append(listener)

    def remove_eviction_listener(self, listener) -> None:
        """Remove an eviction listener (no-op if absent)."""
        if listener in self._eviction_listeners:
            self._eviction_listeners.remove(listener)

    def _notify_eviction(self, message_id: bytes) -> None:
        for listener in list(self._eviction_listeners):
            listener(message_id)

    def __len__(self) -> int:
        return len(self._pending)

    def __contains__(self, message_id: bytes) -> bool:
        return message_id in self._pending

    def submit(self, message: ChainMessage) -> bytes:
        """Admit ``message``; returns its id.  Raises on obvious invalidity.

        Admission checks are necessarily optimistic: final validation
        happens when a miner applies the message to a concrete state.
        """
        message_id = message.message_id()
        # find_message is O(1) via the chain's main-chain height index,
        # so the inclusion check costs the same as the pending check.
        if message_id in self._pending:
            self.rejected += 1
            self.rejected_duplicate += 1
            raise ValidationError("message already pending")
        if self.chain.find_message(message_id) is not None:
            self.rejected += 1
            self.rejected_duplicate += 1
            raise ValidationError("message already included in the chain")
        try:
            self._light_validate(message)
        except ValidationError:
            self.rejected += 1
            self.rejected_invalid += 1
            raise
        self._pending[message_id] = message
        if self.collector is not None:
            self.collector.emit(
                "mempool",
                "submit",
                chain_id=self.chain.params.chain_id,
                msg=message.kind,
                pending=len(self._pending),
            )
        return message_id

    def _light_validate(self, message: ChainMessage) -> None:
        if isinstance(message, TransferMessage):
            if message.tx.is_coinbase:
                raise ValidationError("coinbase transactions cannot be submitted")
            return
        if isinstance(message, (DeployMessage, CallMessage)):
            if message.signature is None:
                raise ValidationError("message is unsigned")
            if isinstance(message, CallMessage):
                # The contract may be deployed by an earlier pending
                # message, so only reject calls on ids that cannot exist.
                if len(message.contract_id) != 32:
                    raise ValidationError("malformed contract id")
            return
        raise ValidationError(f"unknown message kind {message.kind!r}")

    def take(self, limit: int) -> list[ChainMessage]:
        """Remove and return up to ``limit`` messages in FIFO order."""
        batch: list[ChainMessage] = []
        while self._pending and len(batch) < limit:
            _, message = self._pending.popitem(last=False)
            batch.append(message)
        return batch

    def take_block(
        self, limit: int, weight_budget: int | None = None, exclude=None
    ) -> list[ChainMessage]:
        """Messages for one block: FIFO here; fee-greedy and block-space
        limited in :class:`~repro.economy.mempool.PriorityMempool`.

        ``weight_budget`` is ignored by the FIFO pool (messages have no
        weight without a fee policy).  ``exclude`` (a censoring miner's
        predicate) skips matching messages *in place*: they stay
        pending without consuming any of the template's ``limit``."""
        if exclude is None:
            return self.take(limit)
        selected = [
            message_id
            for message_id, message in self._pending.items()
            if not exclude(message)
        ][:limit]
        return [self._pending.pop(message_id) for message_id in selected]

    def requeue(self, messages: list[ChainMessage]) -> None:
        """Put messages back at the front (after a failed block build)."""
        items = [(m.message_id(), m) for m in messages]
        for message_id, message in reversed(items):
            self._pending[message_id] = message
            self._pending.move_to_end(message_id, last=False)

    def drop_included(self) -> int:
        """Drop any pending message that already made it into the chain."""
        included = [
            message_id
            for message_id in self._pending
            if self.chain.find_message(message_id) is not None
        ]
        for message_id in included:
            del self._pending[message_id]
        return len(included)
