"""Blockchain substrate: UTXO ledgers, PoW, contracts, miners, light clients."""

from .block import Block, BlockHeader, decode_time, encode_time
from .chain import Blockchain, MessageLocation, default_miner_address
from .gossip import GossipStats, ReplicaMiner, ReplicatedChain
from .contracts import (
    DEFAULT_REGISTRY,
    ContractRegistry,
    ExecutionContext,
    Receipt,
    SmartContract,
    register_contract,
    requires,
)
from .lightclient import LightClient, verify_header_linkage
from .mempool import Mempool
from .messages import (
    CallMessage,
    ChainMessage,
    DeployMessage,
    TransferMessage,
    sign_message,
)
from .miner import AttackMiner, MinerNode
from .params import (
    ATTACK_COST_PER_HOUR_USD,
    TABLE1_TPS,
    ChainParams,
    FeeSchedule,
    bitcoin_cash_like,
    bitcoin_like,
    ethereum_like,
    fast_chain,
    litecoin_like,
    table1_presets,
)
from .pow import check_pow, mine_header, target_for_bits, work_for_bits
from .state import ChainState
from .transaction import (
    OutPoint,
    Transaction,
    TxInput,
    TxOutput,
    make_coinbase,
    sign_transaction,
)
from .utxo import UTXOSet
from .wire import canonical_encode, wire_hash

__all__ = [
    "ATTACK_COST_PER_HOUR_USD",
    "AttackMiner",
    "Block",
    "BlockHeader",
    "Blockchain",
    "CallMessage",
    "ChainMessage",
    "ChainParams",
    "ChainState",
    "ContractRegistry",
    "DEFAULT_REGISTRY",
    "DeployMessage",
    "ExecutionContext",
    "FeeSchedule",
    "GossipStats",
    "LightClient",
    "Mempool",
    "MessageLocation",
    "MinerNode",
    "OutPoint",
    "Receipt",
    "ReplicaMiner",
    "ReplicatedChain",
    "SmartContract",
    "TABLE1_TPS",
    "Transaction",
    "TransferMessage",
    "TxInput",
    "TxOutput",
    "UTXOSet",
    "bitcoin_cash_like",
    "bitcoin_like",
    "canonical_encode",
    "check_pow",
    "decode_time",
    "default_miner_address",
    "encode_time",
    "ethereum_like",
    "fast_chain",
    "litecoin_like",
    "make_coinbase",
    "mine_header",
    "register_contract",
    "requires",
    "sign_message",
    "sign_transaction",
    "table1_presets",
    "target_for_bits",
    "verify_header_linkage",
    "wire_hash",
    "work_for_bits",
]
