"""Miner actors: turn mempool messages into blocks on the simulator clock.

A :class:`MinerNode` drives one chain: every block interval it takes a
batch of pending messages, assembles a block on the current head, mines
the proof of work, and connects it.  Messages that fail validation at
block-build time are dropped individually so one bad message cannot stall
a chain.

:class:`AttackMiner` mines a *private branch* from a chosen fork point —
the 51%-attack tool used by the Section 6.3 experiments.
"""

from __future__ import annotations

from typing import Callable

from ..crypto.keys import Address, KeyPair
from ..errors import InvalidBlockError, ValidationError
from .block import TIME_SCALE, Block, encode_time
from .chain import Blockchain
from .mempool import Mempool
from .messages import ChainMessage
from ..sim.network import Network
from ..sim.node import Node
from ..sim.simulator import Simulator


class MinerNode(Node):
    """The canonical miner of one chain.

    With ``params.deterministic_intervals`` blocks arrive exactly every
    ``block_interval`` seconds; otherwise intervals are exponential with
    that mean (Poisson mining, like real PoW networks).
    """

    def __init__(
        self,
        simulator: Simulator,
        chain: Blockchain,
        mempool: Mempool,
        name: str | None = None,
        network: Network | None = None,
        address: Address | None = None,
        weight_budget: int | None = None,
    ) -> None:
        super().__init__(simulator, name or f"miner/{chain.params.chain_id}", network)
        self.chain = chain
        self.mempool = mempool
        self.address = address or KeyPair.from_seed(self.name).address
        #: Block-space budget in weight units per block.  None defers to
        #: the mempool's fee policy (fee-market pools) or no limit (FIFO
        #: pools, where only ``max_messages_per_block`` caps a block).
        self.weight_budget = weight_budget
        self.blocks_mined = 0
        self.messages_dropped = 0
        self.fees_earned = 0
        #: Optional censorship predicate (adversarial mining): messages
        #: for which it returns True are skipped by this miner's block
        #: templates *in place* — they stay pending forever without
        #: consuming template capacity or block space.
        self.censor: Callable[[ChainMessage], bool] | None = None
        self.messages_censored = 0
        self._running = False
        self._rng = simulator.stream(f"miner/{chain.params.chain_id}")
        self.on_block: list[Callable[[Block], None]] = []

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Begin the mining loop."""
        if self._running:
            return
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        self._running = False

    def _interval(self) -> float:
        params = self.chain.params
        if params.deterministic_intervals:
            return params.block_interval
        return self._rng.expovariate(1.0 / params.block_interval)

    def _schedule_next(self) -> None:
        if not self._running:
            return
        self.after(self._interval(), self._mine_once, label=f"{self.name} block")

    # -- block production ----------------------------------------------------------

    def _mine_once(self) -> None:
        if self._running and not self.crashed:
            self.mine_block()
        self._schedule_next()

    def mine_block(self) -> Block | None:
        """Assemble, mine, and connect one block immediately.

        Returns the block, or None if every candidate message was invalid
        and the block would have been empty... empty blocks are still
        mined (chains advance even when idle, which is what lets
        confirmation depth accumulate).
        """
        limit = self.chain.params.max_messages_per_block
        # Fee-market mempools hand back a fee-greedy template within the
        # block-space budget; FIFO pools ignore the budget (see take_block).
        exclude = None
        if self.censor is not None:

            def exclude(message: ChainMessage) -> bool:
                if self.censor(message):
                    self.messages_censored += 1
                    return True
                return False

        batch = self.mempool.take_block(limit, self.weight_budget, exclude)
        parent_hash = self.chain.head_hash
        # The template pass runs at the quantized time the header will
        # carry, so its receipts double as the block's commitment and
        # make_block skips a second trial application of the whole batch.
        block_time = (
            max(encode_time(self.simulator.now), self.chain.head.header.time_ticks)
            / TIME_SCALE
        )
        valid, statuses = self._filter_valid(batch, block_time)
        block = self.chain.make_block(
            valid, self.address, self.simulator.now, statuses=statuses
        )
        try:
            self.chain.add_block(block)
        except InvalidBlockError:
            # Should not happen after filtering; drop the batch and move on.
            self.messages_dropped += len(valid)
            return None
        self.blocks_mined += 1
        # Fee revenue: the state's fee counter advanced by this block.
        self.fees_earned += (
            self.chain.state_at(block.block_id()).fees_collected
            - self.chain.state_at(parent_hash).fees_collected
        )
        for callback in self.on_block:
            callback(block)
        return block

    def _filter_valid(
        self, batch: list[ChainMessage], block_time: float
    ) -> tuple[list[ChainMessage], list[tuple[bytes, str]] | None]:
        """Greedily keep messages that apply cleanly on the head state.

        Returns the valid messages plus their ``(message_id, status)``
        receipts, reusable as the block's receipts commitment.  When a
        message is dropped the trial state is no longer a clean run of
        the surviving messages, so the receipts are returned as ``None``
        and ``make_block`` re-derives them on a fresh clone.
        """
        state = self.chain.state_at().clone()
        params = self.chain.params
        head = self.chain.head
        valid: list[ChainMessage] = []
        statuses: list[tuple[bytes, str]] | None = []
        for message in batch:
            try:
                receipt = state.apply_message(
                    message,
                    params,
                    block_height=head.header.height + 1,
                    block_time=block_time,
                    registry=self.chain.registry,
                    validators=self.chain.validators,
                )
            except ValidationError:
                self.messages_dropped += 1
                statuses = None
            else:
                valid.append(message)
                if statuses is not None:
                    statuses.append((receipt.message_id, receipt.status))
        return valid, statuses


class AttackMiner:
    """Mines a private branch — the fork tool for 51%-attack experiments.

    The attacker picks a fork point, mines blocks that (optionally) carry
    its own messages, and *withholds* them; :meth:`release` connects the
    whole private branch at once.  If the private branch carries more
    cumulative work than the public one, the release reorgs the chain —
    exactly the attack Section 6.3's depth rule defends against.
    """

    def __init__(self, chain: Blockchain, address: Address | None = None) -> None:
        self.chain = chain
        self.address = address or KeyPair.from_seed("attacker").address
        self.private_blocks: list[Block] = []
        self._tip: bytes | None = None
        self._tip_header = None
        self._tip_state = None

    def fork_from(self, block_hash: bytes) -> None:
        """Start the private branch at ``block_hash``."""
        block = self.chain.block(block_hash)  # raises if unknown
        self.private_blocks.clear()
        self._tip = block_hash
        self._tip_header = block.header
        self._tip_state = self.chain.state_at(block_hash)

    def extend(self, messages: list[ChainMessage], timestamp: float) -> Block:
        """Mine one private block on the private tip (not yet connected).

        The attacker maintains its own view of the branch state, so the
        withheld blocks never touch the public chain until released.
        """
        if self._tip is None:
            raise ValidationError("call fork_from() before extend()")
        block = self.chain.make_block(
            messages,
            self.address,
            timestamp,
            parent_hash=self._tip,
            parent_header=self._tip_header,
            parent_state=self._tip_state,
        )
        # Advance the private state past this block.
        state = self._tip_state.clone()
        state.apply_block(block, self.chain.params, self.chain.registry, self.chain.validators)
        self._tip_state = state
        self.private_blocks.append(block)
        self._tip = block.block_id()
        self._tip_header = block.header
        return block

    def release(self) -> bool:
        """Connect the private branch; returns True if it became the head."""
        became_head = False
        for block in self.private_blocks:
            if not self.chain.has_block(block.block_id()):
                became_head = self.chain.add_block(block)
        self.private_blocks.clear()
        return became_head

    @property
    def private_length(self) -> int:
        return len(self.private_blocks)
