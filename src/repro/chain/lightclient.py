"""Light clients: header-only chain tracking with SPV inclusion proofs.

Section 4.3 describes light nodes as nodes that "download only the block
headers of a blockchain, verify the proof of work of these block headers,
and download only the blockchain branches that are associated with the
transactions of interest".  :class:`LightClient` implements exactly that:
it accepts headers (verifying linkage and PoW), tracks the best header
chain, and verifies Merkle inclusion proofs of messages against stored
headers at a required depth.
"""

from __future__ import annotations

from ..crypto.merkle import MerkleProof
from ..errors import EvidenceError, InvalidBlockError
from .block import BlockHeader
from .chain import Blockchain
from .params import ChainParams
from .pow import check_pow


def verify_header_linkage(headers: list[BlockHeader], expect_pow: bool = True) -> None:
    """Check that ``headers`` form a contiguous, PoW-valid chain segment.

    Raises :class:`~repro.errors.EvidenceError` on the first violation.
    This is the core check shared by light clients and the Section 4.3
    relay-contract validator.
    """
    for i, header in enumerate(headers):
        if expect_pow and header.height > 0 and not check_pow(header):
            raise EvidenceError(f"header at height {header.height} fails proof of work")
        if i == 0:
            continue
        prev = headers[i - 1]
        if header.prev_hash != prev.block_id():
            raise EvidenceError(
                f"header at height {header.height} does not link to its predecessor"
            )
        if header.height != prev.height + 1:
            raise EvidenceError("header heights are not consecutive")
        if header.time_ticks < prev.time_ticks:
            raise EvidenceError("header timestamps decrease")
        if header.chain_id != prev.chain_id:
            raise EvidenceError("header chain ids differ within one segment")


class LightClient:
    """Tracks one chain's headers and answers SPV inclusion queries."""

    def __init__(self, params: ChainParams, genesis_header: BlockHeader) -> None:
        if genesis_header.height != 0:
            raise InvalidBlockError("light client must be anchored at genesis")
        self.params = params
        self.headers: list[BlockHeader] = [genesis_header]

    # -- syncing ------------------------------------------------------------

    @property
    def height(self) -> int:
        return self.headers[-1].height

    def accept_header(self, header: BlockHeader) -> None:
        """Append one header extending the current best chain."""
        verify_header_linkage([self.headers[-1], header])
        if header.chain_id != self.params.chain_id:
            raise EvidenceError("header belongs to a different chain")
        self.headers.append(header)

    def accept_headers(self, headers: list[BlockHeader]) -> int:
        """Append a run of headers; returns how many were new.

        Headers at or below the current height are checked for equality
        with the stored ones (a mismatch means the server is on a fork
        this client does not follow — rejected; real light clients would
        evaluate cumulative work, which single-miner simulations and the
        stable-header discipline make unnecessary here).
        """
        accepted = 0
        for header in headers:
            if header.height <= self.height:
                stored = self.headers[header.height]
                if stored.block_id() != header.block_id():
                    raise EvidenceError("header conflicts with stored chain")
                continue
            if header.height != self.height + 1:
                raise EvidenceError(
                    f"header gap: have {self.height}, got {header.height}"
                )
            self.accept_header(header)
            accepted += 1
        return accepted

    def sync_from(self, chain: Blockchain) -> int:
        """Pull all new main-chain headers from a full node."""
        start = self.height + 1
        if start > chain.height:
            return 0
        return self.accept_headers(chain.header_chain(start))

    # -- queries ------------------------------------------------------------

    def header_at(self, height: int) -> BlockHeader:
        if not 0 <= height <= self.height:
            raise EvidenceError(f"no header at height {height}")
        return self.headers[height]

    def depth_of_height(self, height: int) -> int:
        """Confirmations of the block at ``height`` (1 = tip)."""
        if height > self.height:
            return 0
        return self.height - height + 1

    def verify_inclusion(
        self,
        message_id: bytes,
        proof: MerkleProof,
        height: int,
        min_depth: int | None = None,
    ) -> bool:
        """SPV check: is ``message_id`` included at ``height`` and stable?

        Verifies the Merkle proof against the stored header's root and
        that the block is buried under at least ``min_depth`` headers
        (default: the chain's confirmation depth).
        """
        min_depth = self.params.confirmation_depth if min_depth is None else min_depth
        if height > self.height:
            return False
        if proof.leaf != message_id:
            return False
        header = self.headers[height]
        if not proof.verify(header.merkle_root):
            return False
        return self.depth_of_height(height) >= min_depth
