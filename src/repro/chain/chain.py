"""The blockchain: block tree, fork choice, reorgs, and state queries.

The chain keeps *every* valid block it has seen in a tree and selects the
head by cumulative proof-of-work ("longest chain" generalized to heaviest
chain, first-seen winning ties).  This is the fork-resolution mechanism
AC3WN leans on: when a fork puts ``SCw`` in ``RDauth`` on one branch and
``RFauth`` on another, waiting until one branch leads by depth ``d``
converges the contract to a single state (Section 4.2, Lemma 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator

from ..crypto.keys import Address, KeyPair
from ..crypto.merkle import MerkleProof, MerkleTree
from ..errors import InvalidBlockError, UnknownBlockError, ValidationError
from .block import Block, BlockHeader, encode_time, receipts_merkle_tree
from .contracts import DEFAULT_REGISTRY, ContractRegistry, Receipt, SmartContract
from .messages import ChainMessage, TransferMessage
from .params import ChainParams
from .pow import check_pow, mine_header, work_for_bits
from .state import ChainState
from .transaction import make_coinbase

GENESIS_PREV = b"\x00" * 32


@dataclass(frozen=True)
class MessageLocation:
    """Where a message landed: block hash, height, and index within it."""

    block_hash: bytes
    height: int
    index: int


class Blockchain:
    """One permissionless blockchain with fork handling and contract state.

    Args:
        params: static chain configuration.
        genesis_allocations: initial coin distribution, a list of
            ``(address, value)`` pairs minted in the genesis block.
        registry: contract class registry (defaults to the global one).
        validators: opaque cross-chain validator registry passed into
            contract execution contexts (see :mod:`repro.core.evidence`).
    """

    def __init__(
        self,
        params: ChainParams,
        genesis_allocations: list[tuple[Address, int]] | None = None,
        registry: ContractRegistry | None = None,
        validators: Any = None,
    ) -> None:
        self.params = params
        self.registry = registry or DEFAULT_REGISTRY
        self.validators = validators
        self._blocks: dict[bytes, Block] = {}
        self._children: dict[bytes, list[bytes]] = {}
        self._work: dict[bytes, int] = {}
        self._states: dict[bytes, ChainState] = {}
        self._message_index: dict[bytes, list[MessageLocation]] = {}
        #: height -> block hash along the current main chain, maintained
        #: incrementally on connect/reorg so main-chain membership,
        #: block_at_height, and message_depth are all O(1).
        self._height_index: dict[int, bytes] = {}
        #: block hash -> ((message_id, status) list in block order, receipts
        #: Merkle tree).  Filled at connect time, where the tree is built
        #: anyway to check the header commitment; evidence construction
        #: reuses it instead of rebuilding a tree per proof.
        self._receipt_data: dict[bytes, tuple[list[tuple[bytes, str]], MerkleTree]] = {}
        #: one-entry memo for header_chain(): evidence built for several
        #: edges against the same head repeats the identical query.
        self._header_chain_memo: tuple | None = None
        self._head_hash: bytes = b""
        self.orphans_rejected = 0
        self._block_listeners: list[Callable[[Block], None]] = []
        self._reorg_listeners: list[Callable[[int, int], None]] = []
        self.reorgs = 0

        genesis = self._build_genesis(genesis_allocations or [])
        self._connect(genesis, check_work=False)

    # -- genesis ------------------------------------------------------------

    def _build_genesis(self, allocations: list[tuple[Address, int]]) -> Block:
        messages = tuple(
            TransferMessage(make_coinbase(address, value, nonce=i))
            for i, (address, value) in enumerate(allocations)
        )
        receipts_root = receipts_merkle_tree(
            [(message.message_id(), "ok") for message in messages]
        ).root()
        header = BlockHeader(
            chain_id=self.params.chain_id,
            height=0,
            prev_hash=GENESIS_PREV,
            merkle_root=Block(
                header=None, messages=messages  # type: ignore[arg-type]
            ).compute_merkle_root(),
            receipts_root=receipts_root,
            time_ticks=0,
            difficulty_bits=0,  # genesis carries no work requirement
            nonce=0,
            miner=Address(b"\x00" * 20),
        )
        return Block(header=header, messages=messages)

    # -- core accessors -----------------------------------------------------

    @property
    def genesis_hash(self) -> bytes:
        return self._genesis_hash

    @property
    def head(self) -> Block:
        return self._blocks[self._head_hash]

    @property
    def head_hash(self) -> bytes:
        return self._head_hash

    @property
    def height(self) -> int:
        return self.head.header.height

    def block(self, block_hash: bytes) -> Block:
        try:
            return self._blocks[block_hash]
        except KeyError:
            raise UnknownBlockError(f"unknown block {block_hash.hex()[:12]}…")

    def has_block(self, block_hash: bytes) -> bool:
        return block_hash in self._blocks

    def cumulative_work(self, block_hash: bytes) -> int:
        if block_hash not in self._work:
            raise UnknownBlockError(f"unknown block {block_hash.hex()[:12]}…")
        return self._work[block_hash]

    # -- validation + connection ---------------------------------------------

    def add_block(self, block: Block) -> bool:
        """Validate and connect ``block``; returns True if it became head.

        Invalid blocks raise :class:`~repro.errors.InvalidBlockError`.
        Blocks whose parent is unknown are rejected (no orphan pool; the
        simulator delivers blocks in causal order per miner).
        """
        self._validate_structure(block)
        became_head = self._connect(block, check_work=True)
        for listener in list(self._block_listeners):
            listener(block)
        return became_head

    # -- block listeners -----------------------------------------------------

    def add_block_listener(self, listener: Callable[[Block], None]) -> None:
        """Subscribe ``listener`` to every successfully connected block.

        Listeners fire synchronously after the block (and its state) are
        installed, in subscription order — the on-block-mined hook that
        event-driven protocol drivers advance on.
        """
        self._block_listeners.append(listener)

    def remove_block_listener(self, listener: Callable[[Block], None]) -> None:
        """Unsubscribe ``listener``; missing listeners are a no-op."""
        try:
            self._block_listeners.remove(listener)
        except ValueError:
            pass

    # -- reorg listeners -----------------------------------------------------

    def add_reorg_listener(self, listener: Callable[[int, int], None]) -> None:
        """Subscribe ``listener(abandoned_depth, adopted_depth)`` to reorgs.

        Fired on every head switch that *abandons* part of the previous
        main chain (a plain head extension is not a reorg): the
        arguments are how many blocks of the old branch fell off the
        main chain and how many blocks of the new branch replaced them,
        both measured from the fork point.  Listeners fire after the
        height index has been repointed (the chain already answers
        queries from the new branch) and before the block listeners of
        the head-switching block — so drivers and metrics observe
        reorgs directly instead of re-deriving them from height queries.
        """
        self._reorg_listeners.append(listener)

    def remove_reorg_listener(self, listener: Callable[[int, int], None]) -> None:
        """Unsubscribe ``listener``; missing listeners are a no-op."""
        try:
            self._reorg_listeners.remove(listener)
        except ValueError:
            pass

    def _validate_structure(self, block: Block) -> None:
        header = block.header
        if header.chain_id != self.params.chain_id:
            raise InvalidBlockError(
                f"block for chain {header.chain_id!r} offered to {self.params.chain_id!r}"
            )
        if header.prev_hash not in self._blocks:
            self.orphans_rejected += 1
            raise InvalidBlockError("unknown parent block")
        parent = self._blocks[header.prev_hash]
        if header.height != parent.header.height + 1:
            raise InvalidBlockError(
                f"height {header.height} does not extend parent height "
                f"{parent.header.height}"
            )
        if header.time_ticks < parent.header.time_ticks:
            raise InvalidBlockError("block timestamp precedes its parent")
        if header.merkle_root != block.compute_merkle_root():
            raise InvalidBlockError("merkle root does not match messages")
        if not check_pow(header):
            raise InvalidBlockError("proof of work below target")

    def _connect(self, block: Block, check_work: bool) -> bool:
        block_hash = block.block_id()
        if block_hash in self._blocks:
            return False  # duplicate
        parent_hash = block.header.prev_hash
        if block.header.height == 0:
            parent_state = ChainState()
            parent_work = 0
            self._genesis_hash = block_hash
        else:
            parent_state = self.state_at(parent_hash)
            parent_work = self._work[parent_hash]

        # Apply messages on a clone; rejection leaves the chain untouched.
        state = parent_state.clone()
        try:
            receipts = state.apply_block(block, self.params, self.registry, self.validators)
        except ValidationError as exc:
            raise InvalidBlockError(f"block payload invalid: {exc}") from exc
        statuses = [(r.message_id, r.status) for r in receipts]
        receipts_tree = receipts_merkle_tree(statuses)
        if block.header.receipts_root != receipts_tree.root():
            raise InvalidBlockError("receipts root does not match execution")

        self._blocks[block_hash] = block
        self._receipt_data[block_hash] = (statuses, receipts_tree)
        self._children.setdefault(parent_hash, []).append(block_hash)
        self._work[block_hash] = parent_work + work_for_bits(block.header.difficulty_bits)
        self._states[block_hash] = state
        for index, message in enumerate(block.messages):
            self._message_index.setdefault(message.message_id(), []).append(
                MessageLocation(block_hash, block.header.height, index)
            )

        became_head = False
        if not self._head_hash or self._work[block_hash] > self._work[self._head_hash]:
            old_head = self._head_hash
            reorg_depths: tuple[int, int] | None = None
            if old_head and block.header.prev_hash != old_head:
                # A head switch that does not extend the old head is a
                # reorg: locate the fork point with the *old* height
                # index (still pointing at the abandoned branch).
                cursor = block_hash
                while True:
                    header = self._blocks[cursor].header
                    if (
                        self._height_index.get(header.height) == cursor
                        or header.height == 0
                    ):
                        break
                    cursor = header.prev_hash
                fork_height = self._blocks[cursor].header.height
                reorg_depths = (
                    self._blocks[old_head].header.height - fork_height,
                    block.header.height - fork_height,
                )
            self._head_hash = block_hash
            self._reindex_main_chain(block_hash)
            became_head = True
            if reorg_depths is not None:
                self.reorgs += 1
                for listener in list(self._reorg_listeners):
                    listener(*reorg_depths)
        return became_head

    def _reindex_main_chain(self, new_head: bytes) -> None:
        """Repoint the height index at the branch ending in ``new_head``.

        Walks back from the new head only until the index already agrees
        (the fork point), so extending the head is O(1) and a reorg costs
        the depth of the fork — never a full-chain walk.
        """
        new_height = self._blocks[new_head].header.height
        for height in range(new_height + 1, len(self._height_index)):
            del self._height_index[height]
        cursor = new_head
        while True:
            header = self._blocks[cursor].header
            if self._height_index.get(header.height) == cursor:
                break
            self._height_index[header.height] = cursor
            if header.height == 0:
                break
            cursor = header.prev_hash

    # -- state queries --------------------------------------------------------

    def state_at(self, block_hash: bytes | None = None) -> ChainState:
        """The ledger state at ``block_hash`` (default: current head)."""
        block_hash = block_hash or self._head_hash
        if block_hash not in self._states:
            raise UnknownBlockError(f"no state for block {block_hash.hex()[:12]}…")
        return self._states[block_hash]

    def contract(self, contract_id: bytes, block_hash: bytes | None = None) -> SmartContract:
        """The contract instance as of ``block_hash`` (default head)."""
        return self.state_at(block_hash).contract(contract_id)

    def has_contract(self, contract_id: bytes) -> bool:
        return self.state_at().has_contract(contract_id)

    def balance_of(self, owner: Address) -> int:
        return self.state_at().balance_of(owner)

    def receipt(self, message_id: bytes) -> Receipt | None:
        return self.state_at().receipts.get(message_id)

    # -- main-chain geometry ---------------------------------------------------

    def main_chain(self) -> Iterator[Block]:
        """Blocks from genesis to head along the winning branch."""
        return iter(
            self._blocks[self._height_index[height]]
            for height in range(self.height + 1)
        )

    def block_at_height(self, height: int) -> Block:
        """The main-chain block at ``height`` (O(1) via the height index)."""
        if not 0 <= height <= self.height:
            raise UnknownBlockError(f"no main-chain block at height {height}")
        return self._blocks[self._height_index[height]]

    def is_in_main_chain(self, block_hash: bytes) -> bool:
        block = self.block(block_hash)
        return self._height_index.get(block.header.height) == block_hash

    def depth_of(self, block_hash: bytes) -> int:
        """Confirmations of a block: 1 when it is the head, 0 off-chain.

        A block at depth >= ``params.confirmation_depth`` is *stable* in
        the sense of Section 4.3.
        """
        if not self.is_in_main_chain(block_hash):
            return 0
        return self.height - self.block(block_hash).header.height + 1

    def is_stable(self, block_hash: bytes) -> bool:
        return self.depth_of(block_hash) >= self.params.confirmation_depth

    def stable_header(self) -> BlockHeader:
        """The newest stable main-chain header (depth == confirmation_depth)."""
        height = max(0, self.height - self.params.confirmation_depth + 1)
        return self.block_at_height(height).header

    def header_chain(self, start_height: int, end_height: int | None = None) -> list[BlockHeader]:
        """Main-chain headers from ``start_height`` to ``end_height`` inclusive."""
        end_height = self.height if end_height is None else end_height
        key = (self._head_hash, start_height, end_height)
        memo = self._header_chain_memo
        if memo is not None and memo[0] == key:
            return list(memo[1])
        headers = [
            self.block_at_height(h).header for h in range(start_height, end_height + 1)
        ]
        self._header_chain_memo = (key, headers)
        return list(headers)

    def receipts_data(self, block_hash: bytes) -> tuple[list[tuple[bytes, str]], MerkleTree]:
        """The ``(message_id, status)`` list and receipts Merkle tree of a
        connected block, in block order (cached from connect time)."""
        try:
            return self._receipt_data[block_hash]
        except KeyError:
            raise UnknownBlockError(f"no receipts for block {block_hash.hex()[:12]}…")

    # -- message queries --------------------------------------------------------

    def find_message(self, message_id: bytes) -> MessageLocation | None:
        """Main-chain location of a message, or None if not included."""
        for location in self._message_index.get(message_id, []):
            if self.is_in_main_chain(location.block_hash):
                return location
        return None

    def message_depth(self, message_id: bytes) -> int:
        """Confirmations of the block containing the message (0 if absent)."""
        location = self.find_message(message_id)
        if location is None:
            return 0
        return self.depth_of(location.block_hash)

    def inclusion_proof(self, message_id: bytes) -> tuple[MerkleProof, BlockHeader] | None:
        """Merkle proof that a message is included in a main-chain block."""
        location = self.find_message(message_id)
        if location is None:
            return None
        block = self.block(location.block_hash)
        proof = block.merkle_tree().proof(location.index)
        return proof, block.header

    # -- block building ------------------------------------------------------------

    def make_block(
        self,
        messages: list[ChainMessage],
        miner: Address,
        timestamp: float,
        parent_hash: bytes | None = None,
        parent_header: "BlockHeader | None" = None,
        parent_state: ChainState | None = None,
        statuses: list[tuple[bytes, str]] | None = None,
    ) -> Block:
        """Assemble and mine a block on ``parent_hash`` (default: head).

        The block is *not* connected; call :meth:`add_block`.  Building on
        a non-head parent is how fork/attack experiments create branches.
        ``parent_header``/``parent_state`` let a caller extend a parent
        the chain has not connected yet (withheld private branches).
        ``statuses`` lets a caller that already trial-applied ``messages``
        at this block's quantized time (the miner's template pass) supply
        the ``(message_id, status)`` receipts commitment directly instead
        of paying a second trial application here.
        """
        parent_hash = parent_hash or self._head_hash
        if parent_header is not None:
            parent = Block(header=parent_header, messages=())
        else:
            parent = self.block(parent_hash)
        time_ticks = max(encode_time(timestamp), parent.header.time_ticks)
        height = parent.header.height + 1
        block_time = time_ticks / 1000
        if statuses is None:
            # Trial-apply the messages to compute the receipts commitment.
            base_state = parent_state if parent_state is not None else self.state_at(parent_hash)
            trial = base_state.clone()
            statuses = []
            for message in messages:
                receipt = trial.apply_message(
                    message,
                    self.params,
                    block_height=height,
                    block_time=block_time,
                    registry=self.registry,
                    validators=self.validators,
                )
                statuses.append((receipt.message_id, receipt.status))
        candidate = Block(
            header=BlockHeader(
                chain_id=self.params.chain_id,
                height=height,
                prev_hash=parent_hash,
                merkle_root=Block(header=None, messages=tuple(messages)).compute_merkle_root(),  # type: ignore[arg-type]
                receipts_root=receipts_merkle_tree(statuses).root(),
                time_ticks=time_ticks,
                difficulty_bits=self.params.difficulty_bits,
                nonce=0,
                miner=miner,
            ),
            messages=tuple(messages),
        )
        mined_header = mine_header(candidate.header)
        return Block(header=mined_header, messages=candidate.messages)


def default_miner_address() -> Address:
    """A throwaway miner identity for tests and single-miner chains."""
    return KeyPair.from_seed("default-miner").address
