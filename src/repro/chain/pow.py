"""Proof-of-work: target checks and deterministic mining.

The protocols rely on PoW twice: the longest-(most-work-)chain rule that
resolves forks in the witness network (Section 4.2), and the header-chain
verification of the Section 4.3 relay validator, which must check that
every evidence header "has valid proof of work".  Difficulty is kept tiny
in simulation — the *rule* matters, not the hash rate — but the check is
a real inequality over real double-SHA-256 block ids.
"""

from __future__ import annotations

from ..errors import InvalidBlockError
from .block import BlockHeader

MAX_TARGET = 1 << 256


def target_for_bits(difficulty_bits: int) -> int:
    """Block ids must be strictly below this target."""
    if not 0 <= difficulty_bits <= 255:
        raise InvalidBlockError(f"difficulty bits {difficulty_bits} out of range")
    return MAX_TARGET >> difficulty_bits


def work_for_bits(difficulty_bits: int) -> int:
    """Expected hashes to find a block at this difficulty (2^bits).

    Cumulative work — the sum of this over a branch — is the fork-choice
    metric ("longest chain" generalized to heaviest chain).
    """
    return 1 << difficulty_bits


def check_pow(header: BlockHeader) -> bool:
    """Return True iff the header's block id meets its difficulty target."""
    block_id = int.from_bytes(header.block_id(), "big")
    return block_id < target_for_bits(header.difficulty_bits)


def mine_header(template: BlockHeader, max_iterations: int = 10_000_000) -> BlockHeader:
    """Find a nonce satisfying the template's difficulty.

    Nonces are searched from 0 upward, so mining is deterministic: the
    same template always yields the same mined header.
    """
    target = target_for_bits(template.difficulty_bits)
    for nonce in range(max_iterations):
        candidate = template.with_nonce(nonce)
        if int.from_bytes(candidate.block_id(), "big") < target:
            return candidate
    raise InvalidBlockError(
        f"no nonce below target within {max_iterations} iterations "
        f"(difficulty_bits={template.difficulty_bits})"
    )
