"""Multi-miner chains with block gossip and natural forks.

The default scenario runs one miner per chain — sufficient for protocol
experiments because the protocols only observe the canonical chain.
This module adds the fuller permissionless picture of Section 2.1: an
open set of miners, each holding *its own replica* of the chain, racing
Poisson clocks and gossiping mined blocks.  Two miners who mine near-
simultaneously create a real fork; replicas converge via the heaviest-
chain rule as gossip spreads ("miners accept the first received mined
block after verifying it").

Used by the fork/atomicity experiments to produce *organic* forks (as
opposed to the adversarial, withheld branches of
:class:`~repro.chain.miner.AttackMiner`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.keys import Address, KeyPair
from ..errors import InvalidBlockError
from ..sim.network import Network
from ..sim.node import Node
from ..sim.simulator import Simulator
from .block import Block
from .chain import Blockchain
from .mempool import Mempool
from .messages import ChainMessage
from .params import ChainParams


@dataclass
class GossipStats:
    """Counters describing one replica's gossip activity."""

    blocks_mined: int = 0
    blocks_accepted: int = 0
    blocks_rejected: int = 0
    reorgs: int = 0


class ReplicaMiner(Node):
    """One mining node: full replica + Poisson miner + gossip.

    Each replica validates received blocks independently against its own
    copy (the paper's "miners accept the first received mined block
    after verifying it"); blocks arriving before their parent are parked
    in a small orphan buffer and retried on every later arrival.
    """

    def __init__(
        self,
        simulator: Simulator,
        network: Network,
        params: ChainParams,
        genesis_allocations: list[tuple[Address, int]],
        name: str,
        hash_share: float = 1.0,
    ) -> None:
        super().__init__(simulator, name, network)
        self.chain = Blockchain(params, genesis_allocations)
        self.mempool = Mempool(self.chain)
        self.address = KeyPair.from_seed(name).address
        self.hash_share = hash_share
        self.stats = GossipStats()
        self.peers: list[str] = []
        self._running = False
        self._rng = simulator.stream(f"replica/{name}")
        self._orphans: dict[bytes, Block] = {}

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        self._running = False

    def _interval(self) -> float:
        """Exponential inter-block time scaled by this miner's share.

        With shares summing to 1 across replicas, the *network* block
        rate matches ``params.block_interval`` in expectation.
        """
        mean = self.chain.params.block_interval / max(self.hash_share, 1e-9)
        return self._rng.expovariate(1.0 / mean)

    def _schedule_next(self) -> None:
        if self._running:
            self.after(self._interval(), self._mine_once, label=f"{self.name} mine")

    # -- mining ---------------------------------------------------------------

    def _mine_once(self) -> None:
        if not self._running or self.crashed:
            self._schedule_next()
            return
        batch = self.mempool.take(self.chain.params.max_messages_per_block)
        valid = self._filter_valid(batch)
        block = self.chain.make_block(valid, self.address, self.simulator.now)
        try:
            self.chain.add_block(block)
        except InvalidBlockError:
            self.mempool.requeue(valid)
        else:
            self.stats.blocks_mined += 1
            for peer in self.peers:
                self.send(peer, ("block", block))
        self._schedule_next()

    def _filter_valid(self, batch: list[ChainMessage]) -> list[ChainMessage]:
        state = self.chain.state_at().clone()
        head = self.chain.head
        valid: list[ChainMessage] = []
        for message in batch:
            try:
                state.apply_message(
                    message,
                    self.chain.params,
                    block_height=head.header.height + 1,
                    block_time=self.simulator.now,
                    registry=self.chain.registry,
                    validators=self.chain.validators,
                )
            except Exception:
                continue
            valid.append(message)
        return valid

    # -- gossip ---------------------------------------------------------------

    def submit(self, message: ChainMessage) -> None:
        """Inject a message at this replica and gossip it to peers."""
        self.mempool.submit(message)
        for peer in self.peers:
            self.send(peer, ("message", message))

    def handle(self, sender: str, payload) -> None:
        kind, body = payload
        if kind == "block":
            self._accept_block(body, forward_from=sender)
        elif kind == "message":
            try:
                self.mempool.submit(body)
            except Exception:
                pass  # duplicate or already included

    def _accept_block(self, block: Block, forward_from: str | None = None) -> None:
        block_hash = block.block_id()
        if self.chain.has_block(block_hash):
            return
        if not self.chain.has_block(block.header.prev_hash):
            self._orphans[block.header.prev_hash] = block
            self.stats.blocks_rejected += 1
            return
        old_head = self.chain.head_hash
        try:
            self.chain.add_block(block)
        except InvalidBlockError:
            self.stats.blocks_rejected += 1
            return
        self.stats.blocks_accepted += 1
        new_head = self.chain.head_hash
        if new_head != old_head and new_head != block_hash:
            # Head changed to something other than a simple extension of
            # our previous view: impossible here, kept for completeness.
            self.stats.reorgs += 1
        elif new_head == block_hash and block.header.prev_hash != old_head:
            self.stats.reorgs += 1
        # Forward to peers (simple flooding; duplicates are ignored).
        for peer in self.peers:
            if peer != forward_from:
                self.send(peer, ("block", block))
        # Retry any orphan waiting on this block.
        child = self._orphans.pop(block_hash, None)
        if child is not None:
            self._accept_block(child)


class ReplicatedChain:
    """A chain run by ``n`` gossiping replicas.

    Provides convergence queries used by the organic-fork experiments:
    how often replicas disagree, and whether they agree at depth d.
    """

    def __init__(
        self,
        simulator: Simulator,
        network: Network,
        params: ChainParams,
        genesis_allocations: list[tuple[Address, int]],
        num_replicas: int = 3,
        shares: list[float] | None = None,
    ) -> None:
        if num_replicas < 1:
            raise ValueError("need at least one replica")
        shares = shares or [1.0 / num_replicas] * num_replicas
        if len(shares) != num_replicas:
            raise ValueError("one hash share per replica required")
        self.replicas: list[ReplicaMiner] = []
        for i, share in enumerate(shares):
            replica = ReplicaMiner(
                simulator,
                network,
                params,
                genesis_allocations,
                name=f"replica/{params.chain_id}/{i}",
                hash_share=share,
            )
            self.replicas.append(replica)
        names = [r.name for r in self.replicas]
        for replica in self.replicas:
            replica.peers = [n for n in names if n != replica.name]

    def start(self) -> None:
        for replica in self.replicas:
            replica.start()

    def submit(self, message: ChainMessage) -> None:
        """Submit via the first replica (gossip spreads it)."""
        self.replicas[0].submit(message)

    # -- convergence queries ---------------------------------------------------

    def heads(self) -> set[bytes]:
        return {replica.chain.head_hash for replica in self.replicas}

    def tips_agree(self) -> bool:
        return len(self.heads()) == 1

    def agree_at_depth(self, depth: int) -> bool:
        """Do all replicas share the chain prefix buried ``depth`` deep?

        Tips may race (and replicas may momentarily sit at different
        heights while gossip propagates), but the prefix ending ``depth``
        blocks below the *lowest* replica's head must be common — this is
        the operational meaning of "wait for depth d" (Section 4.2).
        """
        common_height = min(r.chain.height for r in self.replicas) - depth + 1
        if common_height < 0:
            return False
        prefix_blocks = {
            replica.chain.block_at_height(common_height).block_id()
            for replica in self.replicas
        }
        return len(prefix_blocks) == 1

    def total_forks_observed(self) -> int:
        return sum(replica.stats.reorgs for replica in self.replicas)
