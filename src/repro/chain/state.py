"""Chain state: UTXO set + deployed contracts + receipts.

The state at a block is a pure function of the message sequence from
genesis to that block, which is what makes fork handling correct: after
a reorg the chain simply exposes the state of the new winning branch
(computed by replay / incremental application along that branch).

Message application rules:

* Transfers follow the UTXO rules of :mod:`repro.chain.utxo`.
* Deploys instantiate the referenced contract class, lock ``msg.value``
  in it, and run the constructor.  A failing constructor makes the whole
  message invalid (miners never include it).
* Calls execute a public function.  A failing ``requires`` clause
  *reverts* the contract mutation but still charges the fee, mirroring
  Ethereum's gas-on-revert semantics.
* Fees are collected from each message's funding inputs and minted to
  the block's miner at the end of the block, so total value is conserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..crypto.keys import Address
from ..errors import (
    ContractRequireError,
    FeeError,
    UnknownContractError,
    ValidationError,
)
from .block import Block
from .contracts import (
    DEFAULT_REGISTRY,
    ContractRegistry,
    ExecutionContext,
    Receipt,
    SmartContract,
)
from .messages import CallMessage, ChainMessage, DeployMessage, TransferMessage
from .params import ChainParams
from .transaction import OutPoint, TxOutput
from .utxo import UTXOSet
from .wire import wire_hash


@dataclass
class ChainState:
    """Mutable ledger state at one block."""

    utxos: UTXOSet = field(default_factory=UTXOSet)
    contracts: dict[bytes, SmartContract] = field(default_factory=dict)
    receipts: dict[bytes, Receipt] = field(default_factory=dict)
    fees_collected: int = 0
    deploy_count: int = 0
    call_count: int = 0
    transfer_count: int = 0

    def clone(self) -> "ChainState":
        """Copy-on-write copy: UTXO entries are immutable and shared, and
        contract *instances* are shared too — the call runtime mutates a
        working copy and installs it into the owning state only on
        success (see :meth:`_apply_call`), so a shared instance is never
        written through.  This makes clone O(#contracts) dict copies
        instead of a deep copy of every contract."""
        return ChainState(
            utxos=self.utxos.copy(),
            contracts=dict(self.contracts),
            receipts=dict(self.receipts),
            fees_collected=self.fees_collected,
            deploy_count=self.deploy_count,
            call_count=self.call_count,
            transfer_count=self.transfer_count,
        )

    # -- queries ---------------------------------------------------------

    def contract(self, contract_id: bytes) -> SmartContract:
        if contract_id not in self.contracts:
            raise UnknownContractError(f"contract {contract_id.hex()[:12]}… not deployed")
        return self.contracts[contract_id]

    def has_contract(self, contract_id: bytes) -> bool:
        return contract_id in self.contracts

    def balance_of(self, owner: Address) -> int:
        return self.utxos.balance_of(owner)

    # -- funding helpers ---------------------------------------------------

    def _consume_funding(
        self,
        message: DeployMessage | CallMessage,
        min_fee: int,
    ) -> int:
        """Spend funding inputs, emit change, return the fee paid.

        Funding inputs must be owned by the message sender; the single
        message-level signature authorizes all of them.
        """
        sender_address = message.sender.address()
        total_in = 0
        seen: set[OutPoint] = set()
        for inp in message.inputs:
            if inp.outpoint in seen:
                raise ValidationError("funding outpoint used twice in one message")
            seen.add(inp.outpoint)
            spent = self.utxos.get(inp.outpoint)
            if spent.owner != sender_address:
                raise ValidationError("funding input not owned by message sender")
            total_in += spent.value
        change_total = sum(out.value for out in message.change)
        required = message.value + change_total + min_fee
        if total_in < required:
            raise FeeError(
                f"funding {total_in} below required {required} "
                f"(value={message.value}, change={change_total}, min_fee={min_fee})"
            )
        for inp in message.inputs:
            self.utxos.spend(inp.outpoint)
        message_id = message.message_id()
        for index, out in enumerate(message.change):
            self.utxos.add(OutPoint(message_id, index), out)
        return total_in - message.value - change_total

    def _mint(self, recipient: Address, amount: int, tag: dict) -> None:
        """Create a fresh UTXO out of thin air (contract payout / fees)."""
        txid = wire_hash(tag, domain="repro/mint")
        self.utxos.add(OutPoint(txid, 0), TxOutput(recipient, amount))

    def _apply_contract_transfers(
        self,
        contract: SmartContract,
        ctx: ExecutionContext,
        message_id: bytes,
    ) -> None:
        total = sum(amount for _, amount in ctx._transfers)
        if total > contract.balance:
            raise ContractRequireError(
                f"contract tried to transfer {total} with balance {contract.balance}"
            )
        contract.balance -= total
        for seq, (recipient, amount) in enumerate(ctx._transfers):
            if amount > 0:
                self._mint(
                    recipient,
                    amount,
                    {"msg": message_id, "seq": seq, "contract": contract.contract_id},
                )

    # -- message application -------------------------------------------------

    def apply_message(
        self,
        message: ChainMessage,
        params: ChainParams,
        block_height: int,
        block_time: float,
        registry: ContractRegistry | None = None,
        validators: Any = None,
        allow_coinbase: bool = False,
    ) -> Receipt:
        """Validate and apply one message; returns its receipt.

        Raises :class:`~repro.errors.ValidationError` (or a subclass) for
        structurally invalid messages — miners must not include those.
        Contract-call reverts do *not* raise; they yield a "reverted"
        receipt, because a failed redeem/refund attempt is a legitimate
        on-chain event the protocols reason about.
        """
        registry = registry or DEFAULT_REGISTRY
        message_id = message.message_id()
        if message_id in self.receipts:
            raise ValidationError("message already applied (replay)")

        if isinstance(message, TransferMessage):
            receipt = self._apply_transfer(message, params, allow_coinbase, message_id)
        elif isinstance(message, DeployMessage):
            receipt = self._apply_deploy(
                message, params, block_height, block_time, registry, validators, message_id
            )
        elif isinstance(message, CallMessage):
            receipt = self._apply_call(
                message, params, block_height, block_time, validators, message_id
            )
        else:
            raise ValidationError(f"unknown message kind {message.kind!r}")

        self.receipts[message_id] = receipt
        self.fees_collected += receipt.fee_paid
        return receipt

    def _apply_transfer(
        self,
        message: TransferMessage,
        params: ChainParams,
        allow_coinbase: bool,
        message_id: bytes,
    ) -> Receipt:
        if message.tx.is_coinbase and not allow_coinbase:
            raise ValidationError("coinbase transactions only allowed at genesis")
        min_fee = 0 if message.tx.is_coinbase else params.fees.transfer
        fee = self.utxos.apply_transaction(message.tx, min_fee=min_fee)
        self.transfer_count += 1
        return Receipt(message_id=message_id, status="ok", fee_paid=fee)

    def _verify_message_signature(self, message: DeployMessage | CallMessage) -> None:
        if message.signature is None:
            raise ValidationError("message is unsigned")
        if not message.sender.verify(message.signing_digest(), message.signature):
            raise ValidationError("message signature failed verification")

    def _apply_deploy(
        self,
        message: DeployMessage,
        params: ChainParams,
        block_height: int,
        block_time: float,
        registry: ContractRegistry,
        validators: Any,
        message_id: bytes,
    ) -> Receipt:
        self._verify_message_signature(message)
        cls = registry.resolve(message.contract_class)
        contract_id = message.contract_id()
        if contract_id in self.contracts:
            raise ValidationError("contract id already deployed")
        fee = self._consume_funding(message, params.fees.deploy)

        contract = cls()
        contract.contract_id = contract_id
        contract.balance = message.value
        contract.owner = message.sender.address()
        ctx = ExecutionContext(
            chain_id=params.chain_id,
            block_height=block_height,
            block_time=block_time,
            sender=message.sender.address(),
            sender_pubkey=message.sender,
            value=message.value,
            validators=validators,
            message_id=message_id,
        )
        # A failing constructor invalidates the whole message: the
        # funding spend above is rolled back by the caller discarding
        # this state (block-level all-or-nothing application).
        contract.constructor(ctx, *message.args)
        self._apply_contract_transfers(contract, ctx, message_id)
        self.contracts[contract_id] = contract
        self.deploy_count += 1
        return Receipt(
            message_id=message_id,
            status="ok",
            events=tuple(ctx._events),
            fee_paid=fee,
            contract_id=contract_id,
        )

    def _apply_call(
        self,
        message: CallMessage,
        params: ChainParams,
        block_height: int,
        block_time: float,
        validators: Any,
        message_id: bytes,
    ) -> Receipt:
        self._verify_message_signature(message)
        # Never mutate the stored instance: other states may share it
        # (copy-on-write clone).  Run the call against a working copy and
        # install the copy only if the invocation succeeds.
        contract = self.contract(message.contract_id)._execution_copy()
        fee = self._consume_funding(message, params.fees.call)
        contract.balance += message.value
        ctx = ExecutionContext(
            chain_id=params.chain_id,
            block_height=block_height,
            block_time=block_time,
            sender=message.sender.address(),
            sender_pubkey=message.sender,
            value=message.value,
            validators=validators,
            message_id=message_id,
        )
        function = contract.public_function(message.function)
        try:
            function(ctx, *message.args)
            self._apply_contract_transfers(contract, ctx, message_id)
        except ContractRequireError as exc:
            # Revert by dropping the working copy; fee stays with the
            # miner and the attached value returns to the sender.
            if message.value > 0:
                self._mint(
                    message.sender.address(),
                    message.value,
                    {"msg": message_id, "revert_refund": True},
                )
            self.call_count += 1
            return Receipt(
                message_id=message_id,
                status="reverted",
                error=str(exc),
                fee_paid=fee,
                contract_id=message.contract_id,
            )
        self.contracts[message.contract_id] = contract
        self.call_count += 1
        return Receipt(
            message_id=message_id,
            status="ok",
            events=tuple(ctx._events),
            fee_paid=fee,
            contract_id=message.contract_id,
        )

    # -- block application ------------------------------------------------------

    def apply_block(
        self,
        block: Block,
        params: ChainParams,
        registry: ContractRegistry | None = None,
        validators: Any = None,
    ) -> list[Receipt]:
        """Apply every message in ``block``; mint fees to the miner.

        Returns the per-message receipts in block order.  Raises on any
        invalid message — the caller treats the whole block as invalid in
        that case (this state must then be discarded).
        """
        is_genesis = block.header.height == 0
        # The genesis block is hardcoded, not mined, so the block-capacity
        # cap (which models mining throughput) does not apply to it.
        if not is_genesis and len(block.messages) > params.max_messages_per_block:
            raise ValidationError(
                f"block has {len(block.messages)} messages, "
                f"cap is {params.max_messages_per_block}"
            )
        fees_before = self.fees_collected
        receipts: list[Receipt] = []
        for message in block.messages:
            receipts.append(
                self.apply_message(
                    message,
                    params,
                    block_height=block.header.height,
                    block_time=block.header.timestamp,
                    registry=registry,
                    validators=validators,
                    allow_coinbase=is_genesis,
                )
            )
        block_fees = self.fees_collected - fees_before
        if block_fees > 0:
            self._mint(
                block.header.miner,
                block_fees,
                {
                    "fees_of": {
                        "prev": block.header.prev_hash,
                        "root": block.header.merkle_root,
                        "height": block.header.height,
                    }
                },
            )
        return receipts
