"""Blocks and block headers.

A header commits to its parent (hash chaining — the "tamper-proof chain
of blocks" of Section 2.1), to its message set (Merkle root), and to the
proof of work (nonce + difficulty).  Everything a light client or the
Section 4.3 relay validator needs lives in the header.

Headers and blocks are immutable, so the block hash, message-id list,
and messages Merkle tree are each computed once and cached on the
instance (evidence construction walks these repeatedly).  The caches are
``init=False`` slots: ``dataclasses.replace`` — how tests forge tampered
headers — resets them, and the forged copy hashes afresh.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crypto.hashing import double_sha256
from ..crypto.keys import Address
from ..crypto.merkle import MerkleTree
from .wire import canonical_encode

#: Millisecond fixed-point factor for header timestamps (headers are
#: consensus data, so they store ints, not floats).
TIME_SCALE = 1000


def encode_time(seconds: float) -> int:
    """Convert simulator seconds to integer header time."""
    return round(seconds * TIME_SCALE)


def decode_time(ticks: int) -> float:
    """Convert integer header time back to simulator seconds."""
    return ticks / TIME_SCALE


@dataclass(frozen=True, slots=True)
class BlockHeader:
    """The consensus-critical summary of a block."""

    chain_id: str
    height: int
    prev_hash: bytes
    merkle_root: bytes
    receipts_root: bytes
    time_ticks: int
    difficulty_bits: int
    nonce: int
    miner: Address
    _id: bytes | None = field(default=None, init=False, repr=False, compare=False)

    def to_wire(self):
        return {
            "chain_id": self.chain_id,
            "height": self.height,
            "prev_hash": self.prev_hash,
            "merkle_root": self.merkle_root,
            "receipts_root": self.receipts_root,
            "time_ticks": self.time_ticks,
            "difficulty_bits": self.difficulty_bits,
            "nonce": self.nonce,
            "miner": self.miner.raw,
        }

    def block_id(self) -> bytes:
        """The block hash (double SHA-256 of the header, Bitcoin-style)."""
        block_id = self._id
        if block_id is None:
            block_id = double_sha256(canonical_encode(self.to_wire()))
            object.__setattr__(self, "_id", block_id)
        return block_id

    @property
    def timestamp(self) -> float:
        return decode_time(self.time_ticks)

    def with_nonce(self, nonce: int) -> "BlockHeader":
        """Copy with a different nonce (used during mining)."""
        return BlockHeader(
            chain_id=self.chain_id,
            height=self.height,
            prev_hash=self.prev_hash,
            merkle_root=self.merkle_root,
            receipts_root=self.receipts_root,
            time_ticks=self.time_ticks,
            difficulty_bits=self.difficulty_bits,
            nonce=nonce,
            miner=self.miner,
        )

    def __repr__(self) -> str:
        return (
            f"BlockHeader({self.chain_id} h={self.height} "
            f"id={self.block_id().hex()[:8]}…)"
        )


def messages_merkle_tree(message_ids: list[bytes]) -> MerkleTree:
    """The Merkle tree a block builds over its message ids."""
    return MerkleTree(list(message_ids))


def receipt_leaf(message_id: bytes, status: str) -> bytes:
    """Canonical leaf bytes committing to one message's execution status.

    Headers carry a ``receipts_root`` over these leaves so that light
    clients can verify not only that a call was *included* but that it
    *succeeded* — a reverted ``AuthorizeRedeem`` must not count as a
    commit decision (Section 4.3 evidence).
    """
    return canonical_encode({"msg": message_id, "status": status})


def receipts_merkle_tree(statuses: list[tuple[bytes, str]]) -> MerkleTree:
    """Merkle tree over ``(message_id, status)`` receipt leaves."""
    return MerkleTree([receipt_leaf(mid, status) for mid, status in statuses])


@dataclass(frozen=True, slots=True)
class Block:
    """A header plus the ordered list of messages it includes.

    ``messages`` are chain messages (transfers, deployments, calls — see
    :mod:`repro.chain.messages`); the header's ``merkle_root`` must equal
    the root over their ids.
    """

    header: BlockHeader
    messages: tuple
    _ids: tuple | None = field(default=None, init=False, repr=False, compare=False)
    _tree: MerkleTree | None = field(default=None, init=False, repr=False, compare=False)

    def block_id(self) -> bytes:
        return self.header.block_id()

    def message_ids(self) -> list[bytes]:
        ids = self._ids
        if ids is None:
            ids = tuple(message.message_id() for message in self.messages)
            object.__setattr__(self, "_ids", ids)
        return list(ids)

    def merkle_tree(self) -> MerkleTree:
        tree = self._tree
        if tree is None:
            # MerkleTree memoizes its levels internally and is read-only
            # after construction, so one shared instance per block is safe.
            tree = messages_merkle_tree(self.message_ids())
            object.__setattr__(self, "_tree", tree)
        return tree

    def compute_merkle_root(self) -> bytes:
        return self.merkle_tree().root()

    @property
    def height(self) -> int:
        return self.header.height

    def __repr__(self) -> str:
        return (
            f"Block({self.header.chain_id} h={self.height} "
            f"msgs={len(self.messages)} id={self.block_id().hex()[:8]}…)"
        )
