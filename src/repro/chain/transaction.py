"""UTXO transactions: transfers that merge and split assets.

Section 2.3 of the paper: "A transaction takes one or more input assets
owned by one identity and results in one or more output assets where each
output asset is owned by one identity. Therefore, transactions are used
to merge or split assets."  Figure 2's ``TX1`` (merge) and ``TX2``
(split) are directly expressible here, and the miners enforce — in the
storage layer — that end-users transact only on assets they own.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crypto.ecdsa import EcdsaSignature
from ..crypto.keys import Address, PublicKey
from ..errors import ValidationError
from .wire import wire_hash


@dataclass(frozen=True)
class OutPoint:
    """A reference to the ``index``-th output of transaction ``txid``."""

    txid: bytes
    index: int

    def to_wire(self):
        return {"txid": self.txid, "index": self.index}

    def __repr__(self) -> str:
        return f"OutPoint({self.txid.hex()[:8]}…, {self.index})"


@dataclass(frozen=True)
class TxOutput:
    """An asset: ``value`` units owned by ``owner``."""

    owner: Address
    value: int

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValidationError("output value must be non-negative")

    def to_wire(self):
        return {"owner": self.owner.raw, "value": self.value}


@dataclass(frozen=True)
class TxInput:
    """Spends an existing output; carries the owner's authorization.

    ``pubkey`` must hash to the spent output's owner address and
    ``signature`` must be the owner's signature over the transaction's
    signing digest — this is the digital-signature transfer of ownership
    described in Section 2.3.
    """

    outpoint: OutPoint
    pubkey: PublicKey | None = None
    signature: EcdsaSignature | None = None

    def to_wire(self):
        return {
            "outpoint": self.outpoint,
            "pubkey": self.pubkey.to_bytes() if self.pubkey else b"",
        }


@dataclass(frozen=True)
class Transaction:
    """A transfer of asset ownership (merge/split capable).

    A transaction with no inputs is a *coinbase*: it mints new assets and
    is only valid as the block reward / genesis allocation.
    """

    inputs: tuple[TxInput, ...]
    outputs: tuple[TxOutput, ...]
    nonce: int = 0  # distinguishes otherwise-identical coinbases

    kind: str = field(default="transfer", init=False)

    def to_wire(self):
        return {
            "kind": self.kind,
            "inputs": list(self.inputs),
            "outputs": list(self.outputs),
            "nonce": self.nonce,
        }

    # -- identity ------------------------------------------------------------

    def signing_digest(self) -> bytes:
        """Digest the owner signs: inputs' outpoints plus all outputs.

        Signatures are excluded (they cannot sign themselves); pubkeys are
        included so a signature cannot be replayed under another key.
        """
        payload = {
            "outpoints": [inp.outpoint for inp in self.inputs],
            "pubkeys": [inp.pubkey.to_bytes() if inp.pubkey else b"" for inp in self.inputs],
            "outputs": list(self.outputs),
            "nonce": self.nonce,
        }
        return wire_hash(payload, domain="repro/tx-signing")

    def txid(self) -> bytes:
        """The transaction id (hash of the canonical encoding)."""
        return wire_hash(self.to_wire(), domain="repro/txid")

    # -- properties -----------------------------------------------------------

    @property
    def is_coinbase(self) -> bool:
        return not self.inputs

    def total_output(self) -> int:
        return sum(out.value for out in self.outputs)

    def outpoints(self) -> list[OutPoint]:
        return [inp.outpoint for inp in self.inputs]


def make_coinbase(owner: Address, value: int, nonce: int = 0) -> Transaction:
    """Mint ``value`` new units to ``owner`` (genesis / block reward)."""
    return Transaction(inputs=(), outputs=(TxOutput(owner, value),), nonce=nonce)


def sign_transaction(unsigned: Transaction, keypairs) -> Transaction:
    """Attach per-input pubkeys and signatures.

    ``keypairs`` is one :class:`~repro.crypto.keys.KeyPair` per input (or
    a single keypair reused for all inputs).  The returned transaction is
    fully signed and ready for submission.
    """
    from ..crypto.keys import KeyPair

    if isinstance(keypairs, KeyPair):
        keypairs = [keypairs] * len(unsigned.inputs)
    if len(keypairs) != len(unsigned.inputs):
        raise ValidationError("need one keypair per transaction input")
    # First pass: bind pubkeys (they are part of the signing digest).
    with_keys = Transaction(
        inputs=tuple(
            TxInput(inp.outpoint, kp.public_key, None)
            for inp, kp in zip(unsigned.inputs, keypairs)
        ),
        outputs=unsigned.outputs,
        nonce=unsigned.nonce,
    )
    digest = with_keys.signing_digest()
    signed_inputs = tuple(
        TxInput(inp.outpoint, kp.public_key, kp.sign(digest))
        for inp, kp in zip(unsigned.inputs, keypairs)
    )
    return Transaction(inputs=signed_inputs, outputs=unsigned.outputs, nonce=unsigned.nonce)
