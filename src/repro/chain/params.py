"""Per-chain parameters and presets modelled on real networks.

The evaluation (Section 6) quotes the throughput of the top-4
permissionless cryptocurrencies (Table 1), Bitcoin's 6-blocks/hour rate,
and per-operation fees.  These presets capture those published numbers so
experiments can instantiate "a Bitcoin-like chain" or "an Ethereum-like
chain" with one call.  Simulation-friendly presets (`fast_chain`) shrink
block intervals so integration tests finish in milliseconds without
changing any protocol-relevant ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class FeeSchedule:
    """Fees charged by miners, in the chain's smallest unit.

    ``fd`` (deploy) and ``ffc`` (function call) follow the paper's
    notation in Section 6.2; ``transfer`` is the plain-transaction fee.
    """

    deploy: int = 0
    call: int = 0
    transfer: int = 0


@dataclass(frozen=True)
class ChainParams:
    """Static configuration of one blockchain.

    Attributes:
        chain_id: unique name, e.g. ``"bitcoin"``.
        symbol: ticker used in displays, e.g. ``"BTC"``.
        block_interval: mean seconds between blocks.
        confirmation_depth: depth ``d`` at which a block is *stable*
            (Section 4.3's stable-block definition; 6 for Bitcoin).
        difficulty_bits: leading zero bits required of a block id.  Kept
            tiny so simulation mining is cheap; the *rule* is what the
            protocols rely on, not the work factor.
        max_messages_per_block: block capacity; together with
            ``block_interval`` this yields the chain's throughput (tps).
        fees: the chain's :class:`FeeSchedule`.
        deterministic_intervals: if True blocks arrive exactly every
            ``block_interval`` seconds; if False intervals are
            exponentially distributed with that mean (Poisson mining).
    """

    chain_id: str
    symbol: str = "TOK"
    block_interval: float = 10.0
    confirmation_depth: int = 6
    difficulty_bits: int = 8
    max_messages_per_block: int = 1000
    fees: FeeSchedule = field(default_factory=FeeSchedule)
    deterministic_intervals: bool = True

    @property
    def tps(self) -> float:
        """Maximum sustained transactions per second."""
        return self.max_messages_per_block / self.block_interval

    @property
    def blocks_per_hour(self) -> float:
        """Expected blocks mined per hour (``dh`` in Section 6.3)."""
        return 3600.0 / self.block_interval

    def with_overrides(self, **changes) -> "ChainParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


# ---------------------------------------------------------------------------
# Presets mirroring the paper's published numbers
# ---------------------------------------------------------------------------

#: Table 1 throughput (tps) of the top-4 permissionless cryptocurrencies.
TABLE1_TPS: dict[str, int] = {
    "bitcoin": 7,
    "ethereum": 25,
    "litecoin": 56,
    "bitcoin-cash": 61,
}

#: Hourly 51%-attack cost in USD quoted in Section 6.3 (crypto51.app, 2019).
ATTACK_COST_PER_HOUR_USD: dict[str, float] = {
    "bitcoin": 300_000.0,
    "ethereum": 100_000.0,
    "litecoin": 25_000.0,
    "bitcoin-cash": 10_000.0,
}


def bitcoin_like() -> ChainParams:
    """Bitcoin: 10-minute blocks, depth 6, 7 tps."""
    return ChainParams(
        chain_id="bitcoin",
        symbol="BTC",
        block_interval=600.0,
        confirmation_depth=6,
        max_messages_per_block=4200,  # 7 tps * 600 s
        fees=FeeSchedule(deploy=200, call=100, transfer=50),
    )


def ethereum_like() -> ChainParams:
    """Ethereum (2019-era PoW): 15-second blocks, depth 12, 25 tps."""
    return ChainParams(
        chain_id="ethereum",
        symbol="ETH",
        block_interval=15.0,
        confirmation_depth=12,
        max_messages_per_block=375,  # 25 tps * 15 s
        fees=FeeSchedule(deploy=200, call=100, transfer=21),
    )


def litecoin_like() -> ChainParams:
    """Litecoin: 2.5-minute blocks, 56 tps."""
    return ChainParams(
        chain_id="litecoin",
        symbol="LTC",
        block_interval=150.0,
        confirmation_depth=6,
        max_messages_per_block=8400,  # 56 tps * 150 s
        fees=FeeSchedule(deploy=150, call=80, transfer=30),
    )


def bitcoin_cash_like() -> ChainParams:
    """Bitcoin Cash: 10-minute blocks, 61 tps."""
    return ChainParams(
        chain_id="bitcoin-cash",
        symbol="BCH",
        block_interval=600.0,
        confirmation_depth=6,
        max_messages_per_block=36600,  # 61 tps * 600 s
        fees=FeeSchedule(deploy=150, call=80, transfer=10),
    )


def fast_chain(
    chain_id: str,
    block_interval: float = 1.0,
    confirmation_depth: int = 2,
    **overrides,
) -> ChainParams:
    """A small, fast chain for tests and simulations.

    Protocol behaviour depends on ratios (Δ ≈ depth × interval), not on
    absolute durations, so tests use second-scale blocks.
    """
    params = ChainParams(
        chain_id=chain_id,
        symbol=chain_id[:3].upper(),
        block_interval=block_interval,
        confirmation_depth=confirmation_depth,
        difficulty_bits=4,
        max_messages_per_block=1000,
        fees=FeeSchedule(deploy=10, call=5, transfer=1),
    )
    if overrides:
        params = params.with_overrides(**overrides)
    return params


def table1_presets() -> list[ChainParams]:
    """The four chains of Table 1 in market-cap order."""
    return [bitcoin_like(), ethereum_like(), litecoin_like(), bitcoin_cash_like()]
