"""Smart-contract base class, execution context, and class registry.

"We adopt Herlihy's notion of a smart contract as an object in
programming languages.  A smart contract has a state, a constructor that
is called when a smart contract is first deployed in the blockchain, and
a set of functions that could alter the state of the smart contract."
(Section 2.3.)

Contracts here are plain Python objects.  The runtime (in
:mod:`repro.chain.state`) instantiates them on deployment, invokes their
public methods on calls, charges fees, and reverts state changes when a
``requires`` clause fails.  Contracts never touch the chain directly:
all environment access goes through the :class:`ExecutionContext`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..crypto.keys import Address, PublicKey
from ..errors import ContractError, ContractRequireError


def requires(condition: bool, reason: str = "requirement failed") -> None:
    """The pseudocode's ``requires(...)``: revert the call unless true."""
    if not condition:
        raise ContractRequireError(reason)


@dataclass
class ExecutionContext:
    """Everything a contract may observe or effect during one invocation.

    Attributes:
        chain_id: the hosting chain.
        block_height / block_time: position of the including block.
        sender: address of the calling end-user (``msg.sender``).
        sender_pubkey: the caller's public key.
        value: assets attached to this message (``msg.value``).
        validators: the chain's cross-chain evidence validator registry
            (Section 4.3); ``None`` on chains that never validate
            foreign-chain evidence.
        message_id: id of the including message (for event attribution).
    """

    chain_id: str
    block_height: int
    block_time: float
    sender: Address
    sender_pubkey: PublicKey | None
    value: int
    validators: Any = None
    message_id: bytes = b""
    _transfers: list[tuple[Address, int]] = field(default_factory=list)
    _events: list[tuple[str, dict]] = field(default_factory=list)

    def transfer(self, recipient: Address, amount: int) -> None:
        """Queue an asset transfer out of the contract's balance.

        Transfers take effect only if the invocation completes without
        reverting; the runtime then debits the contract and mints a UTXO
        for the recipient.
        """
        if amount < 0:
            raise ContractError("cannot transfer a negative amount")
        self._transfers.append((recipient, amount))

    def emit(self, event: str, **data: Any) -> None:
        """Record an event in the invocation's receipt."""
        self._events.append((event, data))


class SmartContract:
    """Base class for all on-chain contracts.

    Subclasses implement a ``constructor(ctx, *args)`` plus public
    functions ``def some_function(self, ctx, *args)``.  Names starting
    with ``_`` are internal and cannot be invoked via messages.  The
    attributes below are managed by the runtime:

    * ``contract_id`` — unique id derived from the deploy message.
    * ``balance`` — assets currently locked in the contract.
    * ``owner`` — address of the deploying user.
    """

    #: Set by subclasses; used by deploy messages to reference the code.
    CLASS_NAME: str = "SmartContract"

    def __init__(self) -> None:
        self.contract_id: bytes = b""
        self.balance: int = 0
        self.owner: Address | None = None

    def constructor(self, ctx: ExecutionContext, *args: Any) -> None:
        """Initialize contract state; called exactly once on deployment."""

    # -- runtime helpers -----------------------------------------------------

    def public_function(self, name: str) -> Callable:
        """Resolve a callable public function or raise ContractError."""
        if name.startswith("_") or name in _RESERVED_NAMES:
            raise ContractError(f"function {name!r} is not public")
        func = getattr(self, name, None)
        if not callable(func):
            raise ContractError(
                f"{type(self).__name__} has no public function {name!r}"
            )
        return func

    def _execution_copy(self) -> "SmartContract":
        """A working copy for one call invocation.

        Chain states share contract instances copy-on-write (see
        ``ChainState.clone``): the runtime mutates this copy during a
        call and installs it in the state only if the call succeeds, so
        the shared original is never touched.  Attribute values are
        copied one container level deep — contract state must be scalars,
        immutables, or flat dict/list/set of immutables.
        """
        clone = object.__new__(type(self))
        clone_vars = clone.__dict__
        for key, value in self.__dict__.items():
            if type(value) is dict:
                value = dict(value)
            elif type(value) is list:
                value = list(value)
            elif type(value) is set:
                value = set(value)
            clone_vars[key] = value
        return clone

    def describe(self) -> dict:
        """A read-only snapshot of public state (for evidence/tests)."""
        snapshot = {
            "class": type(self).CLASS_NAME,
            "contract_id": self.contract_id,
            "balance": self.balance,
        }
        for key, value in vars(self).items():
            if not key.startswith("_") and key not in snapshot:
                snapshot[key] = value
        return snapshot


_RESERVED_NAMES = {"constructor", "public_function", "describe"}


class ContractRegistry:
    """Maps registered class names to contract classes.

    Deploy messages reference code by class name so that state replay can
    re-instantiate contracts deterministically.
    """

    def __init__(self) -> None:
        self._classes: dict[str, type[SmartContract]] = {}

    def register(self, cls: type[SmartContract]) -> type[SmartContract]:
        """Register ``cls`` under its ``CLASS_NAME`` (usable as decorator)."""
        name = cls.CLASS_NAME
        if not name or name == "SmartContract":
            raise ContractError(f"{cls.__name__} must define a unique CLASS_NAME")
        existing = self._classes.get(name)
        if existing is not None and existing is not cls:
            raise ContractError(f"contract class name {name!r} already registered")
        self._classes[name] = cls
        return cls

    def unregister(self, name: str) -> type[SmartContract] | None:
        """Remove (and return) the class registered under ``name``.

        Missing names are a no-op, so re-importable modules (e.g. test
        files loaded both as a top-level module and as ``tests.<name>``)
        can call ``unregister`` before ``register`` to stay idempotent.
        """
        return self._classes.pop(name, None)

    def resolve(self, name: str) -> type[SmartContract]:
        if name not in self._classes:
            raise ContractError(f"unknown contract class {name!r}")
        return self._classes[name]

    def __contains__(self, name: str) -> bool:
        return name in self._classes

    def registered_names(self) -> list[str]:
        """Sorted names currently registered (for scoped snapshots)."""
        return sorted(self._classes)


#: The default global registry; protocol modules register their contract
#: classes here at import time.
DEFAULT_REGISTRY = ContractRegistry()


def register_contract(cls: type[SmartContract]) -> type[SmartContract]:
    """Class decorator registering a contract in the default registry."""
    return DEFAULT_REGISTRY.register(cls)


@dataclass(frozen=True)
class Receipt:
    """Outcome of applying one message (mirrors Ethereum receipts)."""

    message_id: bytes
    status: str  # "ok" | "reverted"
    error: str = ""
    events: tuple = ()
    fee_paid: int = 0
    contract_id: bytes = b""
