"""Chain messages: the payloads miners include in blocks.

End-users interact with the storage layer via message passing
(Section 2.1).  Three message kinds exist, mirroring the paper's model:

* :class:`TransferMessage` — a plain asset transfer (Section 2.3).
* :class:`DeployMessage` — publishes a smart contract; carries the
  contract code reference plus the implicit parameters ``msg.sender``
  and ``msg.value`` that lock assets in the contract (Section 2.3).
* :class:`CallMessage` — invokes a smart-contract function; end-users
  pay miners a function-invocation fee for every call.

Every message funds itself UTXO-style: ``inputs`` spend the sender's
assets, ``change`` returns the excess, and the difference covers the
locked value (deploys) plus the miner fee.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..crypto.ecdsa import EcdsaSignature
from ..crypto.keys import KeyPair, PublicKey
from ..errors import ValidationError
from .transaction import Transaction, TxInput, TxOutput
from .wire import wire_hash


class ChainMessage:
    """Common interface of all block payloads."""

    kind: str = "abstract"

    def to_wire(self) -> Any:  # pragma: no cover - abstract
        raise NotImplementedError

    def message_id(self) -> bytes:
        """Globally unique id: hash of the canonical encoding."""
        return wire_hash(self.to_wire(), domain="repro/message")


@dataclass(frozen=True)
class TransferMessage(ChainMessage):
    """Wraps a plain UTXO transaction."""

    tx: Transaction
    kind: str = field(default="transfer", init=False)

    def to_wire(self):
        return {"kind": self.kind, "tx": self.tx}


def _funding_wire(inputs: tuple[TxInput, ...], change: tuple[TxOutput, ...]):
    return {
        "outpoints": [inp.outpoint for inp in inputs],
        "pubkeys": [inp.pubkey.to_bytes() if inp.pubkey else b"" for inp in inputs],
        "change": list(change),
    }


@dataclass(frozen=True)
class DeployMessage(ChainMessage):
    """Publishes a smart contract.

    Attributes:
        sender: the deploying end-user (``msg.sender``).
        contract_class: registered class name of the contract code.
        args: constructor arguments (wire-encodable values).
        value: assets to lock in the contract (``msg.value``).
        fee: deployment fee paid to the miner (``fd`` in Section 6.2).
        inputs/change: UTXO funding; inputs must cover value+fee+change.
        nonce: distinguishes otherwise identical deployments.
        signature: sender's signature over the signing digest.
    """

    sender: PublicKey
    contract_class: str
    args: tuple
    value: int = 0
    fee: int = 0
    inputs: tuple[TxInput, ...] = ()
    change: tuple[TxOutput, ...] = ()
    nonce: int = 0
    signature: EcdsaSignature | None = None
    kind: str = field(default="deploy", init=False)

    def to_wire(self):
        return {
            "kind": self.kind,
            "sender": self.sender.to_bytes(),
            "contract_class": self.contract_class,
            "args": list(self.args),
            "value": self.value,
            "fee": self.fee,
            "funding": _funding_wire(self.inputs, self.change),
            "nonce": self.nonce,
        }

    def signing_digest(self) -> bytes:
        return wire_hash(self.to_wire(), domain="repro/deploy-signing")

    def contract_id(self) -> bytes:
        """The id the deployed contract instance will live under."""
        return wire_hash(self.to_wire(), domain="repro/contract-id")


@dataclass(frozen=True)
class CallMessage(ChainMessage):
    """Invokes a function on a deployed contract."""

    sender: PublicKey
    contract_id: bytes
    function: str
    args: tuple
    value: int = 0
    fee: int = 0
    inputs: tuple[TxInput, ...] = ()
    change: tuple[TxOutput, ...] = ()
    nonce: int = 0
    signature: EcdsaSignature | None = None
    kind: str = field(default="call", init=False)

    def to_wire(self):
        return {
            "kind": self.kind,
            "sender": self.sender.to_bytes(),
            "contract_id": self.contract_id,
            "function": self.function,
            "args": list(self.args),
            "value": self.value,
            "fee": self.fee,
            "funding": _funding_wire(self.inputs, self.change),
            "nonce": self.nonce,
        }

    def signing_digest(self) -> bytes:
        return wire_hash(self.to_wire(), domain="repro/call-signing")


def sign_message(message: DeployMessage | CallMessage, keypair: KeyPair):
    """Return a copy of ``message`` signed by ``keypair``.

    The keypair must match the message's ``sender`` and must own every
    funding input (single-signer messages keep the model simple; the
    multi-party agreement the protocols need lives in ``ms(D)``, not in
    individual chain messages).
    """
    if keypair.public_key.to_bytes() != message.sender.to_bytes():
        raise ValidationError("signing keypair does not match message sender")
    digest = message.signing_digest()
    signature = keypair.sign(digest)
    if isinstance(message, DeployMessage):
        return DeployMessage(
            sender=message.sender,
            contract_class=message.contract_class,
            args=message.args,
            value=message.value,
            fee=message.fee,
            inputs=message.inputs,
            change=message.change,
            nonce=message.nonce,
            signature=signature,
        )
    return CallMessage(
        sender=message.sender,
        contract_id=message.contract_id,
        function=message.function,
        args=message.args,
        value=message.value,
        fee=message.fee,
        inputs=message.inputs,
        change=message.change,
        nonce=message.nonce,
        signature=signature,
    )
