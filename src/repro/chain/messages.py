"""Chain messages: the payloads miners include in blocks.

End-users interact with the storage layer via message passing
(Section 2.1).  Three message kinds exist, mirroring the paper's model:

* :class:`TransferMessage` — a plain asset transfer (Section 2.3).
* :class:`DeployMessage` — publishes a smart contract; carries the
  contract code reference plus the implicit parameters ``msg.sender``
  and ``msg.value`` that lock assets in the contract (Section 2.3).
* :class:`CallMessage` — invokes a smart-contract function; end-users
  pay miners a function-invocation fee for every call.

Every message funds itself UTXO-style: ``inputs`` spend the sender's
assets, ``change`` returns the excess, and the difference covers the
locked value (deploys) plus the miner fee.

Messages are immutable, so every digest derived from the wire encoding
(message id, signing digest, contract id) is computed once and cached on
the instance.  All three digests share one cached canonical encoding —
they differ only in hash domain.  The cache slots are ``init=False``,
so ``dataclasses.replace`` (used by tests to build tampered copies)
resets them and the copy re-derives fresh digests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..crypto.ecdsa import EcdsaSignature
from ..crypto.keys import KeyPair, PublicKey
from ..errors import ValidationError
from .transaction import Transaction, TxInput, TxOutput
from .wire import canonical_encode, hash_encoded, wire_hash

_MESSAGE_DOMAIN = "repro/message"


def _cache_slot():
    return field(default=None, init=False, repr=False, compare=False)


class ChainMessage:
    """Common interface of all block payloads."""

    __slots__ = ()

    kind: str = "abstract"

    def to_wire(self) -> Any:  # pragma: no cover - abstract
        raise NotImplementedError

    def message_id(self) -> bytes:
        """Globally unique id: hash of the canonical encoding."""
        return wire_hash(self.to_wire(), domain=_MESSAGE_DOMAIN)


@dataclass(frozen=True, slots=True)
class TransferMessage(ChainMessage):
    """Wraps a plain UTXO transaction."""

    tx: Transaction
    kind: str = field(default="transfer", init=False)
    _mid: bytes | None = _cache_slot()

    def to_wire(self):
        return {"kind": self.kind, "tx": self.tx}

    def message_id(self) -> bytes:
        mid = self._mid
        if mid is None:
            mid = wire_hash(self.to_wire(), domain=_MESSAGE_DOMAIN)
            object.__setattr__(self, "_mid", mid)
        return mid


def _funding_wire(inputs: tuple[TxInput, ...], change: tuple[TxOutput, ...]):
    return {
        "outpoints": [inp.outpoint for inp in inputs],
        "pubkeys": [inp.pubkey.to_bytes() if inp.pubkey else b"" for inp in inputs],
        "change": list(change),
    }


@dataclass(frozen=True, slots=True)
class DeployMessage(ChainMessage):
    """Publishes a smart contract.

    Attributes:
        sender: the deploying end-user (``msg.sender``).
        contract_class: registered class name of the contract code.
        args: constructor arguments (wire-encodable values).
        value: assets to lock in the contract (``msg.value``).
        fee: deployment fee paid to the miner (``fd`` in Section 6.2).
        inputs/change: UTXO funding; inputs must cover value+fee+change.
        nonce: distinguishes otherwise identical deployments.
        signature: sender's signature over the signing digest.
    """

    sender: PublicKey
    contract_class: str
    args: tuple
    value: int = 0
    fee: int = 0
    inputs: tuple[TxInput, ...] = ()
    change: tuple[TxOutput, ...] = ()
    nonce: int = 0
    signature: EcdsaSignature | None = None
    kind: str = field(default="deploy", init=False)
    _enc: bytes | None = _cache_slot()
    _mid: bytes | None = _cache_slot()
    _sig_digest: bytes | None = _cache_slot()
    _cid: bytes | None = _cache_slot()

    def to_wire(self):
        return {
            "kind": self.kind,
            "sender": self.sender.to_bytes(),
            "contract_class": self.contract_class,
            "args": list(self.args),
            "value": self.value,
            "fee": self.fee,
            "funding": _funding_wire(self.inputs, self.change),
            "nonce": self.nonce,
        }

    def _encoded(self) -> bytes:
        enc = self._enc
        if enc is None:
            enc = canonical_encode(self.to_wire())
            object.__setattr__(self, "_enc", enc)
        return enc

    def message_id(self) -> bytes:
        mid = self._mid
        if mid is None:
            mid = hash_encoded(self._encoded(), _MESSAGE_DOMAIN)
            object.__setattr__(self, "_mid", mid)
        return mid

    def signing_digest(self) -> bytes:
        digest = self._sig_digest
        if digest is None:
            digest = hash_encoded(self._encoded(), "repro/deploy-signing")
            object.__setattr__(self, "_sig_digest", digest)
        return digest

    def contract_id(self) -> bytes:
        """The id the deployed contract instance will live under."""
        cid = self._cid
        if cid is None:
            cid = hash_encoded(self._encoded(), "repro/contract-id")
            object.__setattr__(self, "_cid", cid)
        return cid


@dataclass(frozen=True, slots=True)
class CallMessage(ChainMessage):
    """Invokes a function on a deployed contract."""

    sender: PublicKey
    contract_id: bytes
    function: str
    args: tuple
    value: int = 0
    fee: int = 0
    inputs: tuple[TxInput, ...] = ()
    change: tuple[TxOutput, ...] = ()
    nonce: int = 0
    signature: EcdsaSignature | None = None
    kind: str = field(default="call", init=False)
    _enc: bytes | None = _cache_slot()
    _mid: bytes | None = _cache_slot()
    _sig_digest: bytes | None = _cache_slot()

    def to_wire(self):
        return {
            "kind": self.kind,
            "sender": self.sender.to_bytes(),
            "contract_id": self.contract_id,
            "function": self.function,
            "args": list(self.args),
            "value": self.value,
            "fee": self.fee,
            "funding": _funding_wire(self.inputs, self.change),
            "nonce": self.nonce,
        }

    def _encoded(self) -> bytes:
        enc = self._enc
        if enc is None:
            enc = canonical_encode(self.to_wire())
            object.__setattr__(self, "_enc", enc)
        return enc

    def message_id(self) -> bytes:
        mid = self._mid
        if mid is None:
            mid = hash_encoded(self._encoded(), _MESSAGE_DOMAIN)
            object.__setattr__(self, "_mid", mid)
        return mid

    def signing_digest(self) -> bytes:
        digest = self._sig_digest
        if digest is None:
            digest = hash_encoded(self._encoded(), "repro/call-signing")
            object.__setattr__(self, "_sig_digest", digest)
        return digest


def sign_message(message: DeployMessage | CallMessage, keypair: KeyPair):
    """Return a copy of ``message`` signed by ``keypair``.

    The keypair must match the message's ``sender`` and must own every
    funding input (single-signer messages keep the model simple; the
    multi-party agreement the protocols need lives in ``ms(D)``, not in
    individual chain messages).
    """
    if keypair.public_key.to_bytes() != message.sender.to_bytes():
        raise ValidationError("signing keypair does not match message sender")
    digest = message.signing_digest()
    signature = keypair.sign(digest)
    if isinstance(message, DeployMessage):
        return DeployMessage(
            sender=message.sender,
            contract_class=message.contract_class,
            args=message.args,
            value=message.value,
            fee=message.fee,
            inputs=message.inputs,
            change=message.change,
            nonce=message.nonce,
            signature=signature,
        )
    return CallMessage(
        sender=message.sender,
        contract_id=message.contract_id,
        function=message.function,
        args=message.args,
        value=message.value,
        fee=message.fee,
        inputs=message.inputs,
        change=message.change,
        nonce=message.nonce,
        signature=signature,
    )
