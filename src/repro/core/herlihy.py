"""Herlihy's single-leader atomic cross-chain swap protocol (the paper's
state-of-the-art baseline, [16] in the references).

The protocol uses hashlocks and timelocks only — no witness:

* A leader creates a secret ``s`` and hashlock ``h = H(s)``.
* Contracts are published **sequentially** in waves: the leader first,
  then each participant once all of its incoming contracts are visible.
  Exactly ``Diam(D)`` waves are required.
* Redemption cascades in reverse: the leader redeems its incoming
  contracts (revealing ``s``), then the remaining contracts are redeemed
  wave by wave — ``Diam(D)`` more sequential steps.
* Timelocks protect each contract: a contract published at wave ``k``
  refunds after ``t0 + Δ·(2·P − k + 1)`` where ``P`` is the number of
  publish waves, giving every redeemer a Δ margin.

Total latency: ``2·Δ·Diam(D)`` (Section 6.1 / Figure 8), and crash
failures past a timelock forfeit the crashed participant's assets — the
two weaknesses AC3WN removes.

The driver refuses graphs the protocol cannot execute: if the publish
waves never stabilize (cyclic graphs that stay cyclic after removing the
leader — Figure 7a) or the graph is disconnected from the leader
(Figure 7b), a :class:`~repro.errors.GraphError` is raised, matching
Section 5.3's claims.

The driver is a non-blocking :class:`~repro.core.driver.ProtocolDriver`
state machine: every activation attempts publishes, redemptions, and
refunds that the wave discipline currently permits, then yields the
simulator until the next tick (or block, in eager mode).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..chain.block import encode_time
from ..chain.messages import CallMessage
from ..crypto.hashing import hashlock
from ..errors import FeeTooLowError, InsufficientFundsError, GraphError
from .driver import ProtocolDriver
from .graph import AssetEdge, SwapGraph
from .htlc import HTLCContract  # noqa: F401  (registers the contract class)
from .protocol import SwapEnvironment, SwapOutcome, edge_key

HTLC_CONTRACT_CLASS = "HTLC"


def compute_publish_waves(graph: SwapGraph, leader: str) -> dict[str, int]:
    """Publish wave per participant: leader 0; others after all inputs.

    ``wave(u) = 1 + max(wave(source(e)) for incoming edges e of u)``.
    Raises :class:`~repro.errors.GraphError` if the fixpoint never
    assigns a wave to some participant — the graph cannot be executed by
    the single-leader protocol (Section 5.3).
    """
    if leader not in dict(graph.participants):
        raise GraphError(f"leader {leader!r} is not a participant")
    waves: dict[str, int] = {leader: 0}
    names = graph.participant_names()
    for _ in range(len(names) + 1):
        changed = False
        for name in names:
            if name in waves:
                continue
            incoming = graph.edges_to(name)
            if not incoming:
                # No incoming contracts to wait for: cannot be safely
                # sequenced (nothing compels this participant to publish).
                continue
            sources = [edge.source for edge in incoming]
            if all(src in waves for src in sources):
                waves[name] = 1 + max(waves[src] for src in sources)
                changed = True
        if not changed:
            break
    missing = [name for name in names if name not in waves]
    if missing:
        raise GraphError(
            f"single-leader protocol cannot sequence participants {missing}: "
            f"the AC2T graph is cyclic without the leader or disconnected "
            f"(see Figure 7 of the paper)"
        )
    return waves


def publish_wave_of_edge(waves: dict[str, int], edge: AssetEdge) -> int:
    """A contract is published when its *source* participant acts."""
    return waves[edge.source]


@dataclass
class HerlihyConfig:
    """Tunables of one Herlihy-protocol execution.

    Attributes:
        leader: the swap leader (default: first participant by name).
        decliners: participants who never publish their contracts.
        delta_margin: extra fraction of Δ added to each timelock rung.
        settle_timeout: extra polling time after the last timelock.
        poll_interval: driver polling granularity (default: chain-scaled).
    """

    leader: str | None = None
    decliners: frozenset[str] = frozenset()
    delta_margin: float = 0.5
    settle_timeout: float | None = None
    poll_interval: float | None = None


class HerlihyDriver(ProtocolDriver):
    """Executes one AC2T with the single-leader HTLC protocol."""

    protocol_name = "herlihy"

    def __init__(
        self,
        env: SwapEnvironment,
        graph: SwapGraph,
        config: HerlihyConfig | None = None,
        eager: bool = True,
        fee_budget=None,
        jitter_span: float | None = None,
    ) -> None:
        self.config = config or HerlihyConfig()
        super().__init__(
            env,
            graph,
            poll_interval=self.config.poll_interval,
            eager=eager,
            fee_budget=fee_budget,
            jitter_span=jitter_span,
        )
        self.leader = self.config.leader or graph.participant_names()[0]
        self.waves = compute_publish_waves(graph, self.leader)
        self.num_waves = max(self.waves.values()) + 1

        self.secret = b"herlihy-secret:" + graph.digest()[:16]
        self.lock = hashlock(self.secret)
        self._redeem_calls: dict[str, CallMessage] = {}
        self._refund_calls: dict[str, CallMessage] = {}
        self._secret_public = False
        self._deploy_done_at: float | None = None
        self._t0 = 0.0
        self._delta = 0.0
        self._last_timelock = 0.0
        self._horizon = 0.0

    # -- timing ------------------------------------------------------------

    def delta(self) -> float:
        """Δ: enough time to publish/alter a contract on any used chain."""
        return self._max_delta()

    def timelock_for(self, edge: AssetEdge, t0: float, delta: float) -> float:
        """Refund time of the contract on ``edge``.

        Contracts published earlier (smaller wave) carry *longer*
        timelocks: the classic ``t2 < t1`` of the two-party swap,
        generalized to ``t0 + Δ·(2P − k + 1)`` (+ margin).
        """
        wave = publish_wave_of_edge(self.waves, edge)
        rungs = 2 * self.num_waves - wave + 1
        return t0 + delta * (rungs + self.config.delta_margin)

    # -- helpers -------------------------------------------------------------

    def _contract_state(self, edge: AssetEdge) -> str:
        key = edge_key(edge)
        record = self.outcome.contracts[key]
        if not record.contract_id:
            return "unpublished"
        chain = self.env.chain(edge.chain_id)
        if not chain.has_contract(record.contract_id):
            return "unpublished"
        return chain.contract(record.contract_id).state

    def _incoming_confirmed(self, name: str) -> bool:
        return all(self._edge_confirmed(edge) for edge in self.graph.edges_to(name))

    # -- publish phase ----------------------------------------------------------

    def _try_publish(self, t0: float, delta: float) -> None:
        """Publish contracts whose preconditions hold (wave discipline)."""
        for edge in self.graph.edges:
            key = edge_key(edge)
            if key in self._deploys or edge.source in self.config.decliners:
                continue
            participant = self.env.participant(edge.source)
            if participant.crashed:
                continue
            if edge.source != self.leader and not self._incoming_confirmed(edge.source):
                continue
            timelock = self.timelock_for(edge, t0, delta)
            if self.sim.now >= timelock:
                continue  # too late to publish meaningfully
            if not self._fee_ok(edge.chain_id, "deploy"):
                continue  # priced out of publishing
            try:
                deploy = participant.deploy_contract(
                    edge.chain_id,
                    HTLC_CONTRACT_CLASS,
                    args=(
                        self._address_of(edge.recipient).raw,
                        self.lock,
                        encode_time(timelock),
                    ),
                    value=edge.amount,
                    fee=self._fee_for(edge.chain_id, "deploy"),
                )
            except InsufficientFundsError:
                continue  # change is in flight; retry next tick
            except FeeTooLowError:
                self._raise_rate_floor(edge.chain_id)
                continue  # outbid at submission; retry at a higher rate
            self._deploys[key] = deploy
            record = self.outcome.contracts[key]
            record.contract_id = deploy.contract_id()
            record.deploy_message_id = deploy.message_id()
            record.deployed_at = self.sim.now
            self._track(
                edge.chain_id,
                deploy,
                sender=edge.source,
                on_replace=lambda new, key=key: self._replace_deploy(key, new),
            )

    # -- redeem phase -------------------------------------------------------------

    def _knows_secret(self, name: str) -> bool:
        """The leader knows ``s``; everyone else learns it on first reveal."""
        return name == self.leader or self._secret_public

    def _redeem_wave_of(self, edge: AssetEdge) -> int:
        """Reverse of the publish wave: last published, first redeemed."""
        return self.num_waves - 1 - publish_wave_of_edge(self.waves, edge)

    def _redeem_wave_done(self, wave: int) -> bool:
        for edge in self.graph.edges:
            if self._redeem_wave_of(edge) == wave:
                if self._contract_state(edge) != "RD":
                    return False
        return True

    def _try_redeem(self, t0: float, delta: float) -> None:
        """Attempt redemptions respecting the protocol's wave schedule.

        Herlihy's protocol redeems contracts in reverse publish order —
        the sequential critical path the paper's Figure 8 depicts.  A
        contract's recipient redeems once every later-published contract
        is redeemed, it knows the secret, and the timelock is still open.
        """
        for edge in self.graph.edges:
            key = edge_key(edge)
            if key not in self._deploys or key in self._redeem_calls:
                continue
            if not self._edge_confirmed(edge):
                continue
            if self._contract_state(edge) != "P":
                continue
            wave = self._redeem_wave_of(edge)
            if wave > 0 and not self._redeem_wave_done(wave - 1):
                continue
            recipient = self.env.participant(edge.recipient)
            if recipient.crashed or not self._knows_secret(edge.recipient):
                continue
            timelock = self.timelock_for(edge, t0, delta)
            chain = self.env.chain(edge.chain_id)
            # Publishing a redeem that lands after the timelock is futile.
            if self.sim.now + chain.params.block_interval >= timelock:
                continue
            if not self._fee_ok(edge.chain_id, "call"):
                continue
            try:
                call = recipient.call_contract(
                    edge.chain_id,
                    self._deploys[key].contract_id(),
                    "redeem",
                    args=(self.secret,),
                    fee=self._fee_for(edge.chain_id, "call"),
                )
            except InsufficientFundsError:
                continue  # retry next tick
            except FeeTooLowError:
                self._raise_rate_floor(edge.chain_id)
                continue  # outbid at submission; retry at a higher rate
            self._redeem_calls[key] = call
            self._track(
                edge.chain_id,
                call,
                sender=edge.recipient,
                on_replace=lambda new, key=key: self._redeem_calls.__setitem__(
                    key, new
                ),
            )

    def _observe_reveals(self) -> None:
        """The secret becomes public the moment any redemption lands."""
        if self._secret_public:
            return
        for edge in self.graph.edges:
            if self._contract_state(edge) == "RD":
                self._secret_public = True
                return

    # -- refund phase ----------------------------------------------------------------

    def _try_refund(self, t0: float, delta: float) -> None:
        """Senders reclaim expired, unredeemed contracts."""
        for edge in self.graph.edges:
            key = edge_key(edge)
            if key not in self._deploys or key in self._refund_calls:
                continue
            if self._contract_state(edge) != "P":
                continue
            timelock = self.timelock_for(edge, t0, delta)
            chain = self.env.chain(edge.chain_id)
            latest = chain.head.header.timestamp
            if latest < timelock:
                continue  # not expired on-chain yet
            sender = self.env.participant(edge.source)
            if sender.crashed:
                continue
            if not self._fee_ok(edge.chain_id, "call"):
                continue
            try:
                call = sender.call_contract(
                    edge.chain_id,
                    self._deploys[key].contract_id(),
                    "refund",
                    args=(b"",),
                    fee=self._fee_for(edge.chain_id, "call"),
                )
            except InsufficientFundsError:
                continue  # retry next tick
            except FeeTooLowError:
                self._raise_rate_floor(edge.chain_id)
                continue  # outbid at submission; retry at a higher rate
            self._refund_calls[key] = call
            self._track(
                edge.chain_id,
                call,
                sender=edge.source,
                on_replace=lambda new, key=key: self._refund_calls.__setitem__(
                    key, new
                ),
            )

    # -- bookkeeping ------------------------------------------------------------------

    def _all_settled(self) -> bool:
        return all(
            self._contract_state(edge) in ("RD", "RF")
            for edge in self.graph.edges
            if edge_key(edge) in self._deploys
        ) and len(self._deploys) > 0

    def _record_final_states(self) -> None:
        for edge in self.graph.edges:
            key = edge_key(edge)
            record = self.outcome.contracts[key]
            record.final_state = self._contract_state(edge)
            if record.final_state in ("RD", "RF") and record.settled_at is None:
                record.settled_at = self.sim.now

    # -- state machine ------------------------------------------------------------------

    def _begin(self) -> None:
        self._t0 = self.sim.now
        self._delta = self.delta()
        self.outcome.phase_times["start"] = self._t0
        # The protocol ends for sure once every timelock has expired and
        # the refunds have had time to land.
        self._last_timelock = max(
            self.timelock_for(edge, self._t0, self._delta)
            for edge in self.graph.edges
        )
        self._horizon = self._last_timelock + (
            self.config.settle_timeout or 2.0 * self._delta
        )
        self._set_phase("publish")

    def _eager_deadline(self) -> float | None:
        # One rolling phase: publishes, reveals, redeems, and refunds are
        # all enabled by chain growth (block hooks); the only timer the
        # eager driver needs is the protocol's hard horizon.
        return self._horizon

    def _advance(self) -> None:
        if self.sim.now >= self._horizon:
            self._finish()
            return
        self._try_publish(self._t0, self._delta)
        self._observe_reveals()
        if self._deploy_done_at is None and len(self._deploys) == len(
            self.graph.edges
        ) and all(self._edge_confirmed(e) for e in self.graph.edges):
            self._deploy_done_at = self.sim.now
            self.outcome.phase_times["contracts_deployed"] = self.sim.now
            # All contracts are live: the redeem cascade is the HTLC
            # analogue of the witness protocols' settle phase.  The
            # phase event fires before the first redeem is attempted, so
            # settle-keyed failure injections hit the whole cascade.
            self._set_phase("settle")
        self._try_redeem(self._t0, self._delta)
        self._try_refund(self._t0, self._delta)
        if self._all_settled() and (
            len(self._deploys) == len(self.graph.edges)
            or self.sim.now > self._last_timelock
        ):
            self._finish()
            return
        self._schedule_tick()

    def _finalize(self) -> None:
        self.outcome.phase_times["settled"] = self.sim.now
        redeemed = sum(
            1 for r in self.outcome.contracts.values() if r.final_state == "RD"
        )
        if redeemed == self.graph.num_contracts:
            self.outcome.decision = "commit"
        elif redeemed == 0:
            self.outcome.decision = "abort"
        else:
            # The failure mode the paper attacks: some contracts redeemed,
            # others refunded or stranded.
            self.outcome.decision = "mixed"
            self.outcome.notes.append(
                "HTLC timelocks produced a non-atomic settlement"
            )


def run_herlihy(
    env: SwapEnvironment, graph: SwapGraph, **config_kwargs
) -> SwapOutcome:
    """Convenience wrapper: configure and run one Herlihy execution."""
    config = HerlihyConfig(**config_kwargs)
    return HerlihyDriver(env, graph, config).run()
