"""Protocol participants: end-users with wallets on several chains.

A participant owns a key pair (its identity across all chains), tracks
which chains it can reach, and knows how to build correctly-funded
deploy/call/transfer messages out of its UTXOs.  Crash failures (the
paper's Section 1 motivation) apply at this level: a crashed participant
submits nothing until it recovers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..chain.chain import Blockchain
from ..chain.mempool import Mempool
from ..chain.messages import CallMessage, DeployMessage, TransferMessage, sign_message
from ..chain.transaction import Transaction, TxInput, TxOutput, sign_transaction
from ..crypto.keys import Address, KeyPair
from ..errors import InsufficientFundsError, ProtocolError, ValidationError
from ..sim.network import Network
from ..sim.node import Node
from ..sim.simulator import Simulator


@dataclass
class ChainHandle:
    """A participant's access point to one chain: full node + mempool."""

    chain: Blockchain
    mempool: Mempool


class Participant(Node):
    """An end-user actor: identity, wallets, and message construction."""

    def __init__(
        self,
        simulator: Simulator,
        name: str,
        keypair: KeyPair | None = None,
        network: Network | None = None,
    ) -> None:
        super().__init__(simulator, name, network)
        self.keypair = keypair or KeyPair.from_seed(f"participant/{name}")
        self._chains: dict[str, ChainHandle] = {}
        self._nonce = 0
        self.submitted: list[tuple[str, bytes]] = []  # (chain_id, message_id)
        # Outpoints spent by messages we submitted but that are not yet
        # mined; excluded from coin selection to avoid self-conflicts.
        self._pending_spends: dict[str, set] = {}

    # -- identity ----------------------------------------------------------

    @property
    def address(self) -> Address:
        return self.keypair.address

    @property
    def public_key(self):
        return self.keypair.public_key

    # -- chain access ----------------------------------------------------------

    def join_chain(self, handle: ChainHandle) -> None:
        self._chains[handle.chain.params.chain_id] = handle

    def handle_for(self, chain_id: str) -> ChainHandle:
        if chain_id not in self._chains:
            raise ProtocolError(f"{self.name} has no access to chain {chain_id!r}")
        return self._chains[chain_id]

    def chain(self, chain_id: str) -> Blockchain:
        return self.handle_for(chain_id).chain

    def balance_on(self, chain_id: str) -> int:
        return self.chain(chain_id).balance_of(self.address)

    def next_nonce(self) -> int:
        self._nonce += 1
        return self._nonce

    # -- funding -----------------------------------------------------------------

    def _select_funding(
        self, chain_id: str, amount: int
    ) -> tuple[tuple[TxInput, ...], tuple[TxOutput, ...]]:
        """Greedy coin selection covering ``amount``; change back to self.

        Outpoints already spent by our not-yet-mined messages are
        excluded, so rapid successive submissions never double-spend
        against ourselves.
        """
        state = self.chain(chain_id).state_at()
        pending = self._pending_spends.setdefault(chain_id, set())
        # Prune pending entries that have since been mined (spent).
        pending.intersection_update(
            op for op in pending if op in state.utxos
        )
        selected: list[TxInput] = []
        total = 0
        for outpoint in state.utxos.outpoints_of(self.address):
            if outpoint in pending:
                continue
            if total >= amount:
                break
            selected.append(TxInput(outpoint))
            total += state.utxos.get(outpoint).value
        if total < amount:
            raise InsufficientFundsError(
                f"{self.name} has {total} spendable on {chain_id}, needs "
                f"{amount} ({len(pending)} outpoints locked by pending messages)"
            )
        pending.update(inp.outpoint for inp in selected)
        change: tuple[TxOutput, ...] = ()
        if total > amount:
            change = (TxOutput(self.address, total - amount),)
        return tuple(selected), change

    def release_spends(self, chain_id: str, outpoints) -> None:
        """Unlock outpoints held for a message that will never be mined.

        Called by protocol drivers when one of our messages is evicted
        from a fee-market mempool and abandoned (priced out) — without
        this, the funding would stay locked against coin selection
        forever.
        """
        self._pending_spends.setdefault(chain_id, set()).difference_update(outpoints)

    def _submit(self, chain_id: str, mempool: Mempool, message) -> None:
        """Submit to the mempool, unlocking the funding on rejection.

        A fee-market mempool may refuse a freshly built message (fee too
        low, pool full); its inputs must not stay locked in that case or
        the wallet would leak spendable coins."""
        try:
            mempool.submit(message)
        except ValidationError:
            inputs = message.tx.inputs if isinstance(message, TransferMessage) else message.inputs
            self.release_spends(chain_id, [inp.outpoint for inp in inputs])
            raise

    # -- message construction + submission -----------------------------------------

    def deploy_contract(
        self,
        chain_id: str,
        contract_class: str,
        args: tuple,
        value: int = 0,
        fee: int | None = None,
    ) -> DeployMessage:
        """Build, sign, and submit a contract deployment; returns the message.

        Raises if the participant is crashed — a crashed site cannot
        publish contracts, which is precisely the failure the paper's
        protocols must survive.
        """
        if self.crashed:
            raise ProtocolError(f"{self.name} is crashed and cannot deploy")
        handle = self.handle_for(chain_id)
        fee = handle.chain.params.fees.deploy if fee is None else fee
        inputs, change = self._select_funding(chain_id, value + fee)
        message = DeployMessage(
            sender=self.public_key,
            contract_class=contract_class,
            args=args,
            value=value,
            fee=fee,
            inputs=inputs,
            change=change,
            nonce=self.next_nonce(),
        )
        message = sign_message(message, self.keypair)
        self._submit(chain_id, handle.mempool, message)
        self.submitted.append((chain_id, message.message_id()))
        return message

    def call_contract(
        self,
        chain_id: str,
        contract_id: bytes,
        function: str,
        args: tuple,
        value: int = 0,
        fee: int | None = None,
    ) -> CallMessage:
        """Build, sign, and submit a contract function call."""
        if self.crashed:
            raise ProtocolError(f"{self.name} is crashed and cannot call")
        handle = self.handle_for(chain_id)
        fee = handle.chain.params.fees.call if fee is None else fee
        inputs, change = self._select_funding(chain_id, value + fee)
        message = CallMessage(
            sender=self.public_key,
            contract_id=contract_id,
            function=function,
            args=args,
            value=value,
            fee=fee,
            inputs=inputs,
            change=change,
            nonce=self.next_nonce(),
        )
        message = sign_message(message, self.keypair)
        self._submit(chain_id, handle.mempool, message)
        self.submitted.append((chain_id, message.message_id()))
        return message

    def transfer(
        self,
        chain_id: str,
        recipient: Address,
        amount: int,
        fee: int | None = None,
    ) -> TransferMessage:
        """Submit a plain UTXO transfer to ``recipient``."""
        if self.crashed:
            raise ProtocolError(f"{self.name} is crashed and cannot transfer")
        handle = self.handle_for(chain_id)
        fee = handle.chain.params.fees.transfer if fee is None else fee
        inputs, change = self._select_funding(chain_id, amount + fee)
        outputs = (TxOutput(recipient, amount),) + change
        unsigned = Transaction(
            inputs=inputs, outputs=outputs, nonce=self.next_nonce()
        )
        tx = sign_transaction(unsigned, self.keypair)
        message = TransferMessage(tx)
        self._submit(chain_id, handle.mempool, message)
        self.submitted.append((chain_id, message.message_id()))
        return message
