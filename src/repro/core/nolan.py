"""Nolan's two-party atomic swap (Section 1's walkthrough).

Nolan's protocol is the two-party special case of the single-leader
HTLC protocol: Alice (the leader) locks X bitcoins under ``h = H(s)``
with timelock ``t1``; Bob, having verified ``SC1``, locks Y ethers under
the same ``h`` with ``t2 < t1``; Alice redeems ``SC2`` revealing ``s``;
Bob uses ``s`` to redeem ``SC1`` before ``t1``.

The driver simply wraps :class:`~repro.core.herlihy.HerlihyDriver` with
a two-party validity check, because the wave machinery degenerates to
exactly Nolan's schedule for a two-vertex, two-edge graph: publish waves
(SC1, then SC2) and redemption in reverse (SC2, then SC1).
"""

from __future__ import annotations

from ..errors import GraphError
from .graph import SwapGraph
from .herlihy import HerlihyConfig, HerlihyDriver
from .protocol import SwapEnvironment, SwapOutcome


def validate_two_party(graph: SwapGraph) -> None:
    """Nolan's protocol handles exactly two participants and two edges."""
    if len(graph.participants) != 2:
        raise GraphError("Nolan's protocol is strictly two-party")
    if graph.num_contracts != 2:
        raise GraphError("Nolan's protocol needs exactly two sub-transactions")
    a, b = graph.participant_names()
    directions = {(e.source, e.recipient) for e in graph.edges}
    if directions != {(a, b), (b, a)}:
        raise GraphError("Nolan's protocol needs one edge in each direction")


class NolanDriver(HerlihyDriver):
    """Two-party HTLC swap: Herlihy's driver on a validated 2-cycle."""

    protocol_name = "nolan"

    def __init__(
        self,
        env: SwapEnvironment,
        graph: SwapGraph,
        config: HerlihyConfig | None = None,
        eager: bool = True,
        fee_budget=None,
        jitter_span: float | None = None,
    ) -> None:
        validate_two_party(graph)
        super().__init__(
            env,
            graph,
            config,
            eager=eager,
            fee_budget=fee_budget,
            jitter_span=jitter_span,
        )
        self.outcome.protocol = self.protocol_name


def run_nolan(env: SwapEnvironment, graph: SwapGraph, **config_kwargs) -> SwapOutcome:
    """Convenience wrapper: configure and run one Nolan execution."""
    config = HerlihyConfig(**config_kwargs)
    return NolanDriver(env, graph, config).run()
