"""Shared protocol machinery: environments, outcomes, atomicity audits.

Every commitment protocol in this library (Nolan, Herlihy, AC3TW, AC3WN)
runs against a :class:`SwapEnvironment` and produces a
:class:`SwapOutcome`.  The outcome records, per sub-transaction, the
final smart-contract state — which is what the paper's correctness
property quantifies over: *either all smart contracts in an AC2T are
redeemed or all of them are refunded*.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..chain.chain import Blockchain
from ..chain.mempool import Mempool
from ..errors import ProtocolError
from ..sim.simulator import Simulator
from .contract_template import SwapState
from .graph import AssetEdge, SwapGraph
from .participant import Participant


@dataclass
class SwapEnvironment:
    """Everything a protocol driver needs to execute an AC2T.

    Built by :mod:`repro.workloads.scenarios`; drivers only read it.
    """

    simulator: Simulator
    chains: dict[str, Blockchain]
    mempools: dict[str, Mempool]
    participants: dict[str, Participant]

    def chain(self, chain_id: str) -> Blockchain:
        if chain_id not in self.chains:
            raise ProtocolError(f"environment has no chain {chain_id!r}")
        return self.chains[chain_id]

    def participant(self, name: str) -> Participant:
        if name not in self.participants:
            raise ProtocolError(f"environment has no participant {name!r}")
        return self.participants[name]

    def keypairs(self) -> dict:
        return {name: p.keypair for name, p in self.participants.items()}

    def alive_participants(self) -> list[str]:
        return sorted(
            name for name, p in self.participants.items() if not p.crashed
        )


def edge_key(edge: AssetEdge) -> str:
    """Stable display key for a sub-transaction."""
    return f"{edge.source}->{edge.recipient}@{edge.chain_id}"


@dataclass
class ContractRecord:
    """Tracking data for one sub-transaction's smart contract."""

    edge: AssetEdge
    contract_id: bytes = b""
    deploy_message_id: bytes = b""
    deployed_at: float | None = None
    confirmed_at: float | None = None
    settled_at: float | None = None
    final_state: str = "unpublished"


@dataclass
class SwapOutcome:
    """The result of running one AC2T under some protocol.

    Attributes:
        protocol: protocol name ("nolan", "herlihy", "ac3tw", "ac3wn").
        decision: "commit", "abort", or "undecided".
        contracts: per-edge tracking records.
        started_at / finished_at: simulation timestamps.
        phase_times: named protocol milestones (driver-specific).
        fees_paid: total fees spent across all chains by this AC2T.
        fee_cap: the swap's fee-budget cap, when one governed it.
        priced_out: the swap abandoned at least one message because its
            fee budget could not keep it in a congested mempool.
        evictions: times one of the swap's messages was evicted from a
            mempool (each triggers the bump-or-abort rebroadcast policy).
        fee_bumps: successful replace-by-fee rebroadcasts.
        injected_crash: participant crashed by the workload's failure
            injection (None when no crash was scheduled for this swap).
        coordinator_contract_id: id of the swap's coordinating contract
            (AC3WN's ``SCw``), used to attribute witness-chain attacks.
        attacked_by: adversary actor kinds that targeted this swap
            (stamped by :meth:`repro.adversary.AdversaryRoster.attribute`).
        attacks_launched: reorg attacks launched against this swap.
        reorgs_won / reorgs_lost: how those attacks resolved.
        attack_blocks: private blocks the attacker mined against this
            swap's decision.
        attack_cost: USD the attacker spent on those blocks (Section
            6.3's ``blocks x Ch / dh`` cost model).
        notes: free-form driver annotations (crash observations etc.).
    """

    protocol: str
    graph: SwapGraph
    decision: str = "undecided"
    contracts: dict[str, ContractRecord] = field(default_factory=dict)
    started_at: float = 0.0
    finished_at: float = 0.0
    phase_times: dict[str, float] = field(default_factory=dict)
    fees_paid: int = 0
    fee_cap: int | None = None
    priced_out: bool = False
    evictions: int = 0
    fee_bumps: int = 0
    injected_crash: str | None = None
    coordinator_contract_id: bytes = b""
    attacked_by: list[str] = field(default_factory=list)
    attacks_launched: int = 0
    reorgs_won: int = 0
    reorgs_lost: int = 0
    attack_blocks: int = 0
    attack_cost: float = 0.0
    notes: list[str] = field(default_factory=list)

    # -- atomicity ------------------------------------------------------------

    def final_states(self) -> dict[str, str]:
        return {key: rec.final_state for key, rec in self.contracts.items()}

    @property
    def any_redeemed(self) -> bool:
        return any(r.final_state == SwapState.REDEEMED for r in self.contracts.values())

    @property
    def any_refunded(self) -> bool:
        return any(r.final_state == SwapState.REFUNDED for r in self.contracts.values())

    @property
    def all_settled(self) -> bool:
        return all(
            r.final_state in (SwapState.REDEEMED, SwapState.REFUNDED)
            for r in self.contracts.values()
        )

    @property
    def is_atomic(self) -> bool:
        """The paper's all-or-nothing property over *settled* contracts.

        A mix of redeemed and refunded contracts in one AC2T is an
        atomicity violation.  Contracts still pending (published but not
        yet settled, e.g. a crashed recipient that has not redeemed yet)
        do not violate atomicity as long as the *decided* side is the
        only one that can ever settle them.
        """
        return not (self.any_redeemed and self.any_refunded)

    @property
    def latency(self) -> float:
        return self.finished_at - self.started_at

    def summary(self) -> str:
        """One-line human-readable result."""
        states = ", ".join(f"{k}:{v}" for k, v in sorted(self.final_states().items()))
        return (
            f"[{self.protocol}] decision={self.decision} atomic={self.is_atomic} "
            f"latency={self.latency:.2f}s states=({states})"
        )


def assert_atomic(outcome: SwapOutcome) -> None:
    """Raise :class:`~repro.errors.AtomicityViolation` on a mixed outcome."""
    from ..errors import AtomicityViolation

    if not outcome.is_atomic:
        raise AtomicityViolation(
            f"AC2T settled non-atomically: {outcome.final_states()}"
        )


def wait_for_depth(
    env: SwapEnvironment,
    chain_id: str,
    message_id: bytes,
    depth: int | None = None,
    timeout: float = 1e6,
) -> bool:
    """Run the simulation until a message reaches ``depth`` confirmations."""
    chain = env.chain(chain_id)
    depth = chain.params.confirmation_depth if depth is None else depth
    return env.simulator.run_until_true(
        lambda: chain.message_depth(message_id) >= depth, timeout=timeout
    )
