"""Algorithm 1: the atomic-swap smart-contract template.

Every protocol-specific contract in the paper derives from one template:
a sender ``s``, a recipient ``r``, a locked asset ``a``, a state in
{Published, Redeemed, Refunded}, and a pair of commitment-scheme
instances (redemption and refund).  ``redeem`` transfers ``a`` to ``r``
when the redemption secret verifies; ``refund`` returns ``a`` to ``s``
when the refund secret verifies; both require state ``P``.

Subclasses specialize :meth:`is_redeemable` / :meth:`is_refundable`
exactly as Algorithms 2 and 4 do in the paper.
"""

from __future__ import annotations

from typing import Any

from ..chain.contracts import ExecutionContext, SmartContract, requires
from ..crypto.keys import Address


class SwapState:
    """The three states of an atomic-swap contract (Algorithm 1, line 1)."""

    PUBLISHED = "P"
    REDEEMED = "RD"
    REFUNDED = "RF"


class AtomicSwapContract(SmartContract):
    """The abstract template (Algorithm 1).

    Constructor arguments (beyond subclass-specific commitment data):
        recipient_raw: the 20-byte address of the recipient ``r``.

    The sender ``s`` is ``msg.sender``; the asset ``a`` is ``msg.value``
    (both implicit parameters of the deployment message, Section 2.3).
    """

    CLASS_NAME = "AtomicSwapTemplate"

    def constructor(self, ctx: ExecutionContext, recipient_raw: bytes, *args: Any) -> None:
        self.sender = ctx.sender  # s
        self.recipient = Address(recipient_raw)  # r
        self.asset = ctx.value  # a
        self.state = SwapState.PUBLISHED
        self.redeemed_at: float | None = None
        self.refunded_at: float | None = None

    # -- Algorithm 1, lines 13-17 -------------------------------------------

    def redeem(self, ctx: ExecutionContext, secret: Any) -> None:
        """Transfer ``a`` to ``r`` if the redemption secret verifies."""
        requires(self.state == SwapState.PUBLISHED, "contract is not in state P")
        requires(self.is_redeemable(ctx, secret), "redemption secret invalid")
        ctx.transfer(self.recipient, self.asset)
        self.state = SwapState.REDEEMED
        self.redeemed_at = ctx.block_time
        ctx.emit("redeemed", contract=self.contract_id, recipient=self.recipient.hex())

    # -- Algorithm 1, lines 18-22 --------------------------------------------

    def refund(self, ctx: ExecutionContext, secret: Any) -> None:
        """Return ``a`` to ``s`` if the refund secret verifies."""
        requires(self.state == SwapState.PUBLISHED, "contract is not in state P")
        requires(self.is_refundable(ctx, secret), "refund secret invalid")
        ctx.transfer(self.sender, self.asset)
        self.state = SwapState.REFUNDED
        self.refunded_at = ctx.block_time
        ctx.emit("refunded", contract=self.contract_id, sender=self.sender.hex())

    # -- Algorithm 1, lines 23-28 (specialized by subclasses) -------------------

    def is_redeemable(self, ctx: ExecutionContext, secret: Any) -> bool:
        """Verify the redemption commitment-scheme secret."""
        raise NotImplementedError

    def is_refundable(self, ctx: ExecutionContext, secret: Any) -> bool:
        """Verify the refund commitment-scheme secret."""
        raise NotImplementedError

    # -- protocol-facing helpers ------------------------------------------------

    @property
    def is_settled(self) -> bool:
        """True once the locked asset has left the contract."""
        return self.state in (SwapState.REDEEMED, SwapState.REFUNDED)
