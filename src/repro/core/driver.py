"""The shared non-blocking protocol-driver lifecycle.

Historically every protocol driver (Nolan, Herlihy, AC3TW, AC3WN) ran its
AC2T by monopolizing the shared simulator inside blocking
``Simulator.run_until`` / ``run_until_true`` loops, so exactly one swap
could be in flight at a time.  :class:`ProtocolDriver` replaces that with
an event-driven state machine:

* the driver never advances the simulator itself — it *schedules* its
  next activation as a simulator callback and returns;
* by default (``eager=True``) the driver is purely event-driven: it
  subscribes to the involved chains' on-block-mined hooks
  (:meth:`repro.chain.chain.Blockchain.add_block_listener`) and to its
  participants' recovery hooks
  (:meth:`repro.sim.node.Node.add_recovery_listener`), and the only
  *timer* it ever schedules is the current phase's own deadline.  Every
  state change a driver can act on materializes either when a block
  connects (confirmations, receipts, released change, expired on-chain
  timelocks, mempool evictions) or when a crashed participant comes
  back, so self-scheduled polling between those moments is pure
  overhead — removing it is what lets one simulation multiplex far past
  10³ concurrent swaps;
* ``eager=False`` reverts to the historical self-scheduled poll ticks
  (a tick every quarter block interval, clamped to the phase deadline)
  for A/B cadence runs;
* when the protocol reaches a terminal state the driver finalizes its
  :class:`~repro.core.protocol.SwapOutcome` and fires ``on_complete``
  callbacks — which is what lets :class:`repro.engine.SwapEngine`
  multiplex hundreds of concurrent AC2Ts over one simulation.

The poll cadence of the non-eager mode reproduces the historical blocking
loops tick for tick, so ``eager=False`` single-swap runs (``driver.run()``
— an engine of one) behave exactly as before the refactor.

**Submission jitter (fee-budgeted swaps).**  Eager block hooks fire for
every co-hosted driver at the same instant a block connects, so under a
congested fee market hundreds of swaps would otherwise submit (and
fee-bump) in one synchronized burst, evicting each other and timing out
witness-chain decisions.  Drivers carrying a :class:`~repro.economy.FeeBudget`
therefore react to block hooks after a small deterministic per-swap
delay in ``[0, jitter_span)``, derived from the swap's identity (its
graph digest) — the de-herding the staggered poll cadence used to
provide for free, now explicit, seeded, and reproducible.

Subclasses implement three hooks:

* :meth:`_begin` — synchronous protocol setup at start time (register,
  compute deadlines, enter the first phase);
* :meth:`_advance` — one idempotent state-machine step: inspect chain
  state, submit whatever messages the phase permits, transition phases,
  and either schedule the next activation (:meth:`_schedule_tick`) or
  terminate (:meth:`_finish`);
* optionally :meth:`_finalize` — last-moment outcome bookkeeping (e.g.
  Herlihy derives its decision from the settled states).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..chain.block import Block
from ..chain.chain import Blockchain
from ..chain.messages import CallMessage, DeployMessage, sign_message
from ..crypto.keys import Address
from ..economy import DEFAULT_POLICY, FeeBudget, FeePolicy, bump_fee
from ..errors import FeeError, FeeTooLowError, ValidationError
from ..sim.events import Event
from .graph import AssetEdge, SwapGraph
from .protocol import ContractRecord, SwapEnvironment, SwapOutcome, edge_key


@dataclass
class TrackedSubmission:
    """One fee-budgeted message a driver is watching for eviction."""

    chain_id: str
    message: DeployMessage | CallMessage
    sender: str
    on_replace: Callable[[DeployMessage | CallMessage], None] | None
    fee_rate: int
    bumps: int = 0


class ProtocolDriver:
    """Base class: one AC2T executed as a non-blocking state machine."""

    protocol_name = "abstract"

    def __init__(
        self,
        env: SwapEnvironment,
        graph: SwapGraph,
        poll_interval: float | None = None,
        extra_chain_ids: tuple[str, ...] = (),
        eager: bool = True,
        fee_budget: FeeBudget | None = None,
        jitter_span: float | None = None,
    ) -> None:
        self.env = env
        self.graph = graph
        self.fee_budget = fee_budget
        self.outcome = SwapOutcome(protocol=self.protocol_name, graph=graph)
        if fee_budget is not None:
            self.outcome.fee_cap = fee_budget.cap
        #: Fees of live/mined budgeted submissions, charged against the cap.
        self._fee_committed = 0
        self._tracked: dict[bytes, TrackedSubmission] = {}
        self._publish_priced_out = False
        #: Per-chain fee-rate floor raised whenever a submission is
        #: refused outright (pool full / below the auction waterline).
        self._rate_floor: dict[str, int] = {}
        for edge in graph.edges:
            self.outcome.contracts[edge_key(edge)] = ContractRecord(edge=edge)

        #: Deploy/call messages submitted so far, keyed by edge key.
        self._deploys: dict[str, DeployMessage] = {}
        self._settle_calls: dict[str, CallMessage] = {}
        #: Every (chain_id, message_id) this driver submitted, for fees.
        self._submitted: list[tuple[str, bytes]] = []

        self.started = False
        self.finished = False
        #: Callbacks fired exactly once with the final outcome.
        self.on_complete: list[Callable[[SwapOutcome], None]] = []
        #: Callbacks fired on every named phase transition (the hook
        #: adversarial actors key on: crash-at-settle, phase-scoped
        #: eclipse partitions).  Listeners run synchronously *before*
        #: the new phase's first actions.
        self.on_phase: list[Callable[[str], None]] = []

        #: Optional flight recorder plus this swap's trace id, set by the
        #: engine at launch (see :mod:`repro.obs`).  Emit sites guard on
        #: ``is not None`` so untraced runs pay one attribute load.
        self.collector = None
        self.trace_swap_id: int | None = None

        self._eager = eager
        self._watched: list[Blockchain] = []
        self._watched_participants: list = []
        self._watched_mempools: list = []
        self._pending_tick: Event | None = None
        self._pending_hook: Event | None = None
        self._phase = "init"
        self._settle_deadline = 0.0
        self._settle_target = 0

        involved = set(graph.chains_used()) | set(extra_chain_ids)
        self._involved_chain_ids = sorted(involved)
        fastest = min(
            env.chain(c).params.block_interval for c in self._involved_chain_ids
        )
        self._poll = (
            poll_interval if poll_interval is not None else max(fastest / 4.0, 1e-3)
        )
        # Deterministic per-swap submission jitter (see module docstring):
        # only fee-budgeted swaps herd — unbudgeted traffic keeps the
        # zero-delay hook reaction (and its pinned baselines).
        span = self._poll if jitter_span is None else jitter_span
        self._jitter = 0.0
        if eager and fee_budget is not None and span > 0.0:
            digest = graph.digest()
            self._jitter = (
                (int.from_bytes(digest[:8], "big") / float(1 << 64)) * span
            )

    # -- phase transitions ---------------------------------------------------

    def _set_phase(self, name: str) -> None:
        """Enter phase ``name`` and notify the phase listeners.

        Listeners fire before the new phase performs any action, so a
        phase-keyed failure injection (an eclipse partition, a Byzantine
        settle refusal) lands exactly at the protocol step it names.
        """
        self._phase = name
        if self.collector is not None:
            self.collector.emit(
                "swap", "phase", swap_id=self.trace_swap_id, phase=name
            )
        for listener in list(self.on_phase):
            listener(name)

    # -- subclass hooks ------------------------------------------------------

    def _begin(self) -> None:
        """Synchronous setup at start time; enter the first phase."""
        raise NotImplementedError

    def _advance(self) -> None:
        """One idempotent state-machine step (see module docstring)."""
        raise NotImplementedError

    def _finalize(self) -> None:
        """Optional last-moment outcome bookkeeping before completion."""

    # -- conveniences shared by every protocol -------------------------------

    @property
    def sim(self):
        return self.env.simulator

    def _address_of(self, name: str) -> Address:
        return self.graph.participant_keys()[name].address()

    def _chain_delta(self, chain_id: str) -> float:
        """Δ for one chain: time to publish + be publicly recognized."""
        params = self.env.chain(chain_id).params
        return params.confirmation_depth * params.block_interval

    def _max_delta(self) -> float:
        return max(self._chain_delta(c) for c in self._involved_chain_ids)

    def _track(
        self,
        chain_id: str,
        message,
        sender: str | None = None,
        on_replace: Callable[[DeployMessage | CallMessage], None] | None = None,
    ) -> None:
        """Record a submitted message (for fee collection), and — when a
        fee budget governs this swap — watch it for mempool eviction so
        the bump-or-abort rebroadcast policy can react."""
        self._submitted.append((chain_id, message.message_id()))
        if self.fee_budget is None or sender is None:
            return
        if not isinstance(message, (DeployMessage, CallMessage)):
            return
        self._fee_committed += message.fee
        self._tracked[message.message_id()] = TrackedSubmission(
            chain_id=chain_id,
            message=message,
            sender=sender,
            on_replace=on_replace,
            fee_rate=self._base_fee_rate(chain_id),
        )

    # -- fee-market integration ---------------------------------------------
    #
    # With a FeeBudget attached, every message the driver submits carries
    # a market fee (estimator- or budget-priced); evicted messages are
    # rebroadcast with a replace-by-fee bump until the budget's cap or
    # bump limit is hit, at which point the swap is *priced out* and the
    # protocol's ordinary abort machinery (deadlines, timelocks, refund
    # authorizations) takes over.

    def _chain_policy(self, chain_id: str) -> FeePolicy:
        return getattr(self.env.mempools[chain_id], "policy", None) or DEFAULT_POLICY

    def _base_fee_rate(self, chain_id: str) -> int:
        budget = self.fee_budget
        if budget is not None and budget.fee_rate is not None:
            rate = budget.fee_rate
        else:
            estimator = getattr(self.env, "fee_estimators", {}).get(chain_id)
            if estimator is not None:
                rate = estimator.estimate()
            else:
                rate = max(self._chain_policy(chain_id).min_relay_fee_rate, 1)
        return max(rate, self._rate_floor.get(chain_id, 0))

    def _raise_rate_floor(self, chain_id: str) -> None:
        """A submission lost the mempool auction outright: chase the
        market by bumping this chain's fee-rate floor before the retry
        (the next tick re-attempts whatever is still missing)."""
        if self.fee_budget is None:
            return
        self._rate_floor[chain_id] = self.fee_budget.bumped_rate(
            self._base_fee_rate(chain_id)
        )

    def _min_kind_fee(self, chain_id: str, kind: str) -> int:
        fees = self.env.chain(chain_id).params.fees
        if kind == "deploy":
            return fees.deploy
        if kind == "call":
            return fees.call
        return fees.transfer

    def _planned_fee(self, chain_id: str, kind: str, rate: int | None = None) -> int:
        rate = self._base_fee_rate(chain_id) if rate is None else rate
        weight = self._chain_policy(chain_id).weight_of_kind(kind)
        return max(self._min_kind_fee(chain_id, kind), rate * weight)

    def _fee_for(self, chain_id: str, kind: str) -> int | None:
        """The fee to attach to a submission (None = chain default)."""
        if self.fee_budget is None:
            return None
        return self._planned_fee(chain_id, kind)

    def _fee_ok(self, chain_id: str, kind: str) -> bool:
        """Whether the budget can afford one more ``kind`` submission."""
        if self.fee_budget is None:
            return True
        if kind == "deploy" and self._publish_priced_out:
            return False
        fee = self._planned_fee(chain_id, kind)
        if self._fee_committed + fee > self.fee_budget.cap:
            if not self.outcome.priced_out:
                self.outcome.priced_out = True
                self.outcome.notes.append(
                    f"fee budget exhausted before a {kind} on {chain_id} "
                    f"({self._fee_committed}+{fee} > cap {self.fee_budget.cap})"
                )
                if self.collector is not None:
                    self.collector.emit(
                        "fee",
                        "priced_out",
                        swap_id=self.trace_swap_id,
                        chain_id=chain_id,
                        msg=kind,
                        committed=self._fee_committed,
                        needed=fee,
                        cap=self.fee_budget.cap,
                    )
            if kind == "deploy":
                self._publish_priced_out = True
            return False
        return True

    def _maintain_submissions(self) -> None:
        """Detect evicted submissions and apply bump-or-abort to each."""
        for message_id in list(self._tracked):
            sub = self._tracked.get(message_id)
            if sub is None:
                continue
            if self.env.chain(sub.chain_id).find_message(message_id) is not None:
                del self._tracked[message_id]  # mined; fee is final
                continue
            if message_id in self.env.mempools[sub.chain_id]:
                continue  # still pending
            del self._tracked[message_id]
            self.outcome.evictions += 1
            self._bump_or_abandon(sub)

    def _bump_or_abandon(self, sub: TrackedSubmission) -> None:
        budget = self.fee_budget
        participant = self.env.participant(sub.sender)
        new_rate = budget.bumped_rate(sub.fee_rate)
        new_fee = max(
            self._planned_fee(sub.chain_id, sub.message.kind, rate=new_rate),
            sub.message.fee + 1,
        )
        if participant.crashed:
            # A crashed sender cannot re-sign; not a fee-market casualty.
            self._abandon(sub, priced_out=False, reason="sender crashed")
            return
        if (
            sub.bumps >= budget.max_bumps
            or self._fee_committed - sub.message.fee + new_fee > budget.cap
        ):
            self._abandon(sub)
            return
        try:
            bumped = sign_message(bump_fee(sub.message, new_fee), participant.keypair)
        except FeeError:
            self._abandon(sub)  # change cannot fund the bump
            return
        self._fee_committed += new_fee - sub.message.fee
        new_sub = TrackedSubmission(
            chain_id=sub.chain_id,
            message=bumped,
            sender=sub.sender,
            on_replace=sub.on_replace,
            fee_rate=new_rate,
            bumps=sub.bumps + 1,
        )
        try:
            self.env.mempools[sub.chain_id].submit(bumped)
        except FeeTooLowError:
            # Still outbid at the new rate: escalate again (bounded by
            # max_bumps).  The message never re-entered the pool, so
            # neither the bump nor a fresh eviction is counted.
            self._bump_or_abandon(new_sub)
            return
        except ValidationError:
            self._fee_committed -= new_fee - sub.message.fee
            self._abandon(sub, priced_out=False, reason="replacement rejected")
            return
        self.outcome.fee_bumps += 1
        if self.collector is not None:
            self.collector.emit(
                "fee",
                "bump",
                swap_id=self.trace_swap_id,
                chain_id=sub.chain_id,
                msg=sub.message.kind,
                new_fee=new_fee,
                bumps=new_sub.bumps,
            )
        self._tracked[bumped.message_id()] = new_sub
        self._submitted.append((sub.chain_id, bumped.message_id()))
        if sub.on_replace is not None:
            sub.on_replace(bumped)

    def _abandon(
        self, sub: TrackedSubmission, priced_out: bool = True, reason: str = ""
    ) -> None:
        """The "abort" arm: give up on the message, unlock its funding.

        ``priced_out`` distinguishes fee-market casualties (bump limit or
        budget cap reached — the congestion signal the metrics report)
        from abandonments with other causes (crashed sender, replacement
        rejected as invalid)."""
        self._fee_committed -= sub.message.fee
        self.env.participant(sub.sender).release_spends(
            sub.chain_id, [inp.outpoint for inp in sub.message.inputs]
        )
        if priced_out:
            self.outcome.priced_out = True
        if sub.message.kind == "deploy":
            self._publish_priced_out = True
        label = "priced out" if priced_out else f"abandoned ({reason})"
        self.outcome.notes.append(
            f"{label}: {sub.message.kind} on {sub.chain_id} evicted "
            f"after {sub.bumps} bump(s)"
        )
        if self.collector is not None:
            self.collector.emit(
                "fee",
                "priced_out" if priced_out else "abandon",
                swap_id=self.trace_swap_id,
                chain_id=sub.chain_id,
                msg=sub.message.kind,
                bumps=sub.bumps,
                reason=reason or "budget",
            )

    # -- replace bookkeeping shared by the protocols -------------------------

    def _replace_deploy(self, key: str, new: DeployMessage) -> None:
        """Repoint a contract record at a fee-bumped deployment."""
        self._deploys[key] = new
        record = self.outcome.contracts[key]
        record.contract_id = new.contract_id()
        record.deploy_message_id = new.message_id()

    def _replace_settle_call(self, key: str, new: CallMessage) -> None:
        self._settle_calls[key] = new

    def _edge_confirmed(self, edge: AssetEdge) -> bool:
        key = edge_key(edge)
        deploy = self._deploys.get(key)
        if deploy is None:
            return False
        chain = self.env.chain(edge.chain_id)
        ok = chain.message_depth(deploy.message_id()) >= chain.params.confirmation_depth
        if ok and self.outcome.contracts[key].confirmed_at is None:
            self.outcome.contracts[key].confirmed_at = self.sim.now
        return ok

    def _all_confirmed(self) -> bool:
        return all(self._edge_confirmed(edge) for edge in self.graph.edges)

    def _record_final_states(self) -> None:
        for edge in self.graph.edges:
            key = edge_key(edge)
            record = self.outcome.contracts[key]
            if key not in self._deploys:
                record.final_state = "unpublished"
                continue
            chain = self.env.chain(edge.chain_id)
            record.final_state = (
                chain.contract(record.contract_id).state
                if chain.has_contract(record.contract_id)
                else "unpublished"
            )
            if record.final_state in ("RD", "RF") and record.settled_at is None:
                record.settled_at = self.sim.now

    def _collect_fees(self) -> None:
        self.outcome.fees_paid = sum(
            receipt.fee_paid
            for chain_id, mid in self._submitted
            if (receipt := self.env.chain(chain_id).receipt(mid)) is not None
        )

    # -- shared settle phase -------------------------------------------------
    #
    # Both witness protocols end identically: keep attempting settlement
    # calls until every published contract is settled or the deadline
    # passes, then finalize.  Subclasses supply the per-tick attempt via
    # :meth:`_settle_step` and enter the phase with :meth:`_enter_settle_phase`.

    def _settled_count(self) -> int:
        count = 0
        for edge in self.graph.edges:
            key = edge_key(edge)
            record = self.outcome.contracts[key]
            if key not in self._deploys:
                continue
            chain = self.env.chain(edge.chain_id)
            if not chain.has_contract(record.contract_id):
                continue
            if chain.contract(record.contract_id).is_settled:
                if record.settled_at is None:
                    record.settled_at = self.sim.now
                count += 1
        return count

    def _settle_step(self) -> None:
        """One settle attempt (redeem/refund whatever is still open)."""
        raise NotImplementedError

    def _enter_settle_phase(self, timeout: float) -> None:
        self._set_phase("settle")
        self._settle_deadline = self.sim.now + timeout
        self._settle_target = len(self._deploys)
        self._advance_settle()

    def _advance_settle(self) -> None:
        if (
            self.sim.now >= self._settle_deadline
            or self._settled_count() >= self._settle_target
        ):
            self._settled_count()  # final refresh of settled_at stamps
            self.outcome.phase_times["settled"] = self.sim.now
            self._finish()
            return
        self._settle_step()
        self._schedule_tick(self._settle_deadline)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ProtocolDriver":
        """Arm the state machine; returns immediately (non-blocking)."""
        if self.started:
            return self
        self.started = True
        self.outcome.started_at = self.sim.now
        if self._eager:
            for chain_id in self._involved_chain_ids:
                chain = self.env.chain(chain_id)
                chain.add_block_listener(self._on_block)
                self._watched.append(chain)
            # A recovered participant can act again between blocks; the
            # recovery hook replaces the poll tick that used to notice.
            for name in self.graph.participant_names():
                participant = self.env.participant(name)
                participant.add_recovery_listener(self._on_recover)
                self._watched_participants.append(participant)
            # Fee-budgeted swaps also hear about their submissions being
            # evicted the moment it happens, so bump-or-abort reacts
            # between blocks exactly as the poll cadence used to.
            if self.fee_budget is not None:
                for chain_id in self._involved_chain_ids:
                    pool = self.env.mempools.get(chain_id)
                    if pool is not None:
                        pool.add_eviction_listener(self._on_eviction)
                        self._watched_mempools.append(pool)
        self._begin()
        if not self.finished:
            self._advance()
        return self

    def _on_block(self, block: Block) -> None:
        """On-block-mined hook: re-examine the world as soon as it grows.

        Fee-budgeted swaps react after their deterministic per-swap
        jitter instead of synchronously, so co-hosted swaps spread their
        post-block submission bursts (see module docstring); at most one
        jittered reaction is outstanding at a time.
        """
        if self.finished:
            return
        if self._jitter > 0.0:
            if self._pending_hook is None:
                self._pending_hook = self.sim.schedule(
                    self._jitter,
                    self._jittered_advance,
                    label=f"{self.protocol_name} jittered block reaction",
                )
            return
        self._maintain_submissions()
        if not self.finished:
            self._advance()

    def _jittered_advance(self) -> None:
        self._pending_hook = None
        if self.finished:
            return
        self._maintain_submissions()
        if not self.finished:
            self._advance()

    def _on_recover(self) -> None:
        """Participant-recovery hook (eager mode): the recovered actor can
        submit again right now — no need to wait for the next block."""
        if self.finished:
            return
        self._maintain_submissions()
        if not self.finished:
            self._advance()

    def _on_eviction(self, message_id: bytes) -> None:
        """Mempool-eviction hook (eager, fee-budgeted swaps only).

        Fired synchronously from inside another submission's admission,
        so never re-enter the mempool here — schedule the (jittered)
        reaction on the simulator instead; bump-or-abort runs there.
        """
        if self.finished or message_id not in self._tracked:
            return
        if self._pending_hook is None:
            self._pending_hook = self.sim.schedule(
                self._jitter,
                self._jittered_advance,
                label=f"{self.protocol_name} eviction reaction",
            )

    def _eager_deadline(self) -> float | None:
        """The phase deadline to arm when :meth:`_schedule_tick` got none.

        Eager drivers advance on block/recovery hooks; the only timer
        they need is the current phase's deadline.  Subclasses whose
        ``_advance`` does not pass one (Herlihy's single rolling phase)
        supply it here; None falls back to one poll interval.
        """
        return None

    def _schedule_tick(self, deadline: float | None = None) -> None:
        """Arm the next self-scheduled activation.

        Eager mode schedules exactly one *timeout* event at the phase
        deadline — everything before that is driven by block/recovery
        hooks.  Non-eager mode keeps the historical poll cadence:
        ``min(deadline, now + poll)``.  At most one timer is ever
        outstanding; rescheduling cancels the previous one.
        """
        if self.finished:
            return
        if self._eager:
            target = deadline if deadline is not None else self._eager_deadline()
            if target is None or target <= self.sim.now:
                target = self.sim.now + self._poll
            if self._pending_tick is not None and self._pending_tick.time == target:
                return  # the wanted wake-up is already armed
        else:
            target = self.sim.now + self._poll
            if deadline is not None:
                target = min(deadline, target)
            if target <= self.sim.now:
                target = self.sim.now + self._poll
        if self._pending_tick is not None:
            self._pending_tick.cancel()
        self._pending_tick = self.sim.schedule_at(
            target, self._tick, label=f"{self.protocol_name} driver tick"
        )

    def _tick(self) -> None:
        self._pending_tick = None
        if not self.finished:
            self._maintain_submissions()
        if not self.finished:
            self._advance()

    def _finish(self) -> None:
        """Terminal bookkeeping; fires ``on_complete`` exactly once."""
        if self.finished:
            return
        self._record_final_states()
        self._collect_fees()
        self.outcome.finished_at = self.sim.now
        self._finalize()
        self.finished = True
        if self._pending_tick is not None:
            self._pending_tick.cancel()
            self._pending_tick = None
        if self._pending_hook is not None:
            self._pending_hook.cancel()
            self._pending_hook = None
        for chain in self._watched:
            chain.remove_block_listener(self._on_block)
        self._watched.clear()
        for participant in self._watched_participants:
            participant.remove_recovery_listener(self._on_recover)
        self._watched_participants.clear()
        for pool in self._watched_mempools:
            pool.remove_eviction_listener(self._on_eviction)
        self._watched_mempools.clear()
        for callback in list(self.on_complete):
            callback(self.outcome)

    # -- single-swap compatibility -------------------------------------------

    def run(self) -> SwapOutcome:
        """Execute this one AC2T to completion (an engine of N=1).

        Processes simulator events until the driver terminates.  Other
        scheduled activity (miners, failure injectors, other drivers)
        advances normally in between — the driver itself never blocks the
        simulation, it just happens to be the only consumer here.
        """
        self.start()
        sim = self.sim
        while not self.finished and sim.step():
            pass
        if not self.finished:
            # Queue drained with the protocol still undecided (a world
            # with no miners): finalize from whatever state exists.
            self._finish()
        return self.outcome
