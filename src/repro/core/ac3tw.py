"""AC3TW: atomic cross-chain commitment with a centralized trusted
witness (Section 4.1, Algorithm 2).

Trent, the trusted witness, keeps a key/value store from registered
multisignatures ``ms(D)`` to either ``⊥``, his redemption signature
``T(ms(D), RD)``, or his refund signature ``T(ms(D), RF)``.  The store
makes the two signatures mutually exclusive: once one is issued for an
AC2T, the other never will be.  Asset-chain contracts
(:class:`CentralizedSC`) verify Trent's signature as the commitment
secret.

AC3TW achieves atomicity but reintroduces a trusted intermediary — a
single point of failure and DoS target — which is exactly what AC3WN
removes.  It is implemented here both as the paper presents it (a
stepping stone) and as an experimental baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..chain.contracts import ExecutionContext, register_contract
from ..crypto.commitment import (
    CommitmentPurpose,
    SignatureCommitment,
    witness_statement_digest,
)
from ..crypto.ecdsa import EcdsaSignature
from ..crypto.keys import KeyPair, PublicKey
from ..crypto.signatures import Multisignature, multisign
from ..errors import FeeTooLowError, InsufficientFundsError, WitnessError
from .contract_template import AtomicSwapContract
from .driver import ProtocolDriver
from .graph import GRAPH_SIGNING_DOMAIN, SwapGraph
from .protocol import SwapEnvironment, SwapOutcome, edge_key

CENTRALIZED_CONTRACT_CLASS = "AC3-CentralizedSC"


@register_contract
class CentralizedSC(AtomicSwapContract):
    """Algorithm 2: redeem/refund against Trent's signatures.

    Both commitment-scheme instances are the pair ``(ms(D), PK_T)``;
    the secrets are Trent's signatures over ``(ms(D), RD)`` and
    ``(ms(D), RF)`` respectively.
    """

    CLASS_NAME = CENTRALIZED_CONTRACT_CLASS

    def constructor(
        self,
        ctx: ExecutionContext,
        recipient_raw: bytes,
        ms_id: bytes,
        witness_key_raw: bytes,
    ) -> None:
        super().constructor(ctx, recipient_raw)
        self.ms_id = ms_id
        self.witness_key_raw = witness_key_raw

    def _commitment(self, purpose: CommitmentPurpose) -> SignatureCommitment:
        return SignatureCommitment(
            ms_id=self.ms_id,
            witness_key=PublicKey.from_bytes(self.witness_key_raw),
            purpose=purpose,
        )

    # Algorithm 2, lines 5-7: SigVerify((ms(D), RD), PK_T, s_rd)
    def is_redeemable(self, ctx: ExecutionContext, secret: Any) -> bool:
        if not isinstance(secret, EcdsaSignature):
            return False
        return self._commitment(CommitmentPurpose.REDEEM).verify(secret)

    # Algorithm 2, lines 8-10: SigVerify((ms(D), RF), PK_T, s_rf)
    def is_refundable(self, ctx: ExecutionContext, secret: Any) -> bool:
        if not isinstance(secret, EcdsaSignature):
            return False
        return self._commitment(CommitmentPurpose.REFUND).verify(secret)


@dataclass
class _Registration:
    """One entry of Trent's key/value store."""

    graph: SwapGraph
    value: EcdsaSignature | None = None  # ⊥ until a decision is made
    decision: str | None = None  # "RD" or "RF"


class TrustedWitness:
    """Trent: the centralized witness service.

    Trent is trusted, so he may consult full nodes of every chain
    directly (``chains``) to verify contract deployment before issuing a
    redemption signature.  He can also be crashed (``available=False``)
    to demonstrate the availability weakness of AC3TW.
    """

    def __init__(self, chains: dict[str, Any], seed: str = "trent") -> None:
        self.keypair = KeyPair.from_seed(seed)
        self.chains = chains
        self.store: dict[bytes, _Registration] = {}
        self.available = True

    @property
    def public_key(self) -> PublicKey:
        return self.keypair.public_key

    def _require_available(self) -> None:
        if not self.available:
            raise WitnessError("Trent is unavailable (crashed or DoS'd)")

    # -- registration -----------------------------------------------------

    def register(self, graph: SwapGraph, ms: Multisignature) -> bytes:
        """Register ``ms(D)``; rejects duplicates and bad signatures."""
        self._require_available()
        if not graph.verify_multisignature(ms):
            raise WitnessError("multisignature invalid for the submitted graph")
        ms_id = ms.id()
        if ms_id in self.store:
            raise WitnessError("ms(D) already registered")
        self.store[ms_id] = _Registration(graph=graph)
        return ms_id

    # -- decision requests ----------------------------------------------------

    def request_redemption(
        self, ms_id: bytes, contract_ids: dict[str, bytes]
    ) -> EcdsaSignature:
        """Issue ``T(ms(D), RD)`` iff all AC2T contracts are deployed.

        ``contract_ids`` maps edge keys to the deployed contract ids;
        Trent verifies each contract exists on its chain, is in state P,
        matches its edge, and is conditioned on ``(ms(D), PK_T)``.
        """
        self._require_available()
        registration = self._entry(ms_id)
        if registration.value is not None:
            if registration.decision == "RD":
                return registration.value
            raise WitnessError("AC2T already aborted; redemption refused")
        self._verify_contracts(registration.graph, ms_id, contract_ids)
        signature = self.keypair.sign(
            witness_statement_digest(ms_id, CommitmentPurpose.REDEEM)
        )
        registration.value = signature
        registration.decision = "RD"
        return signature

    def request_refund(self, ms_id: bytes) -> EcdsaSignature:
        """Issue ``T(ms(D), RF)`` iff no decision exists yet."""
        self._require_available()
        registration = self._entry(ms_id)
        if registration.value is not None:
            if registration.decision == "RF":
                return registration.value
            raise WitnessError("AC2T already committed; refund refused")
        signature = self.keypair.sign(
            witness_statement_digest(ms_id, CommitmentPurpose.REFUND)
        )
        registration.value = signature
        registration.decision = "RF"
        return signature

    # -- internals ----------------------------------------------------------------

    def _entry(self, ms_id: bytes) -> _Registration:
        if ms_id not in self.store:
            raise WitnessError("ms(D) is not registered")
        return self.store[ms_id]

    def _verify_contracts(
        self, graph: SwapGraph, ms_id: bytes, contract_ids: dict[str, bytes]
    ) -> None:
        keys = graph.participant_keys()
        for edge in graph.edges:
            key = edge_key(edge)
            if key not in contract_ids:
                raise WitnessError(f"no contract reported for edge {key}")
            chain = self.chains.get(edge.chain_id)
            if chain is None:
                raise WitnessError(f"Trent runs no node for chain {edge.chain_id!r}")
            contract_id = contract_ids[key]
            if not chain.has_contract(contract_id):
                raise WitnessError(f"contract for edge {key} is not deployed")
            contract = chain.contract(contract_id)
            if type(contract).CLASS_NAME != CENTRALIZED_CONTRACT_CLASS:
                raise WitnessError(f"contract for edge {key} has the wrong class")
            if contract.state != "P":
                raise WitnessError(f"contract for edge {key} is not in state P")
            if contract.ms_id != ms_id:
                raise WitnessError(f"contract for edge {key} references a different ms(D)")
            if contract.witness_key_raw != self.public_key.to_bytes():
                raise WitnessError(f"contract for edge {key} trusts a different witness")
            if contract.sender != keys[edge.source].address():
                raise WitnessError(f"contract for edge {key} has the wrong sender")
            if contract.recipient != keys[edge.recipient].address():
                raise WitnessError(f"contract for edge {key} has the wrong recipient")
            if contract.asset != edge.amount:
                raise WitnessError(f"contract for edge {key} locks the wrong amount")


# ---------------------------------------------------------------------------
# Protocol driver
# ---------------------------------------------------------------------------


@dataclass
class AC3TWConfig:
    """Tunables of one AC3TW execution (see :class:`AC3WNConfig`)."""

    decliners: frozenset[str] = frozenset()
    omit_signers: frozenset[str] = frozenset()
    deploy_timeout: float | None = None
    settle_timeout: float | None = None
    poll_interval: float | None = None


class AC3TWDriver(ProtocolDriver):
    """Executes one AC2T with the centralized-witness protocol.

    A non-blocking state machine with three phases: *deploy* (all asset
    contracts concurrently), a synchronous *decision* at Trent, and
    *settle* (redeem or refund every published contract).
    """

    protocol_name = "ac3tw"

    def __init__(
        self,
        env: SwapEnvironment,
        graph: SwapGraph,
        witness: TrustedWitness,
        config: AC3TWConfig | None = None,
        eager: bool = True,
        fee_budget=None,
        jitter_span: float | None = None,
    ) -> None:
        self.config = config or AC3TWConfig()
        super().__init__(
            env,
            graph,
            poll_interval=self.config.poll_interval,
            eager=eager,
            fee_budget=fee_budget,
            jitter_span=jitter_span,
        )
        self.witness = witness
        self._ms_id: bytes = b""
        self._phase = "deploy"
        self._deploy_deadline = 0.0
        self._settle_timeout = 0.0
        self._signature: EcdsaSignature | None = None
        self._settle_function: str | None = None

    # -- deployment --------------------------------------------------------

    def _try_deploy_edges(self) -> None:
        for edge in self.graph.edges:
            key = edge_key(edge)
            if key in self._deploys or edge.source in self.config.decliners:
                continue
            participant = self.env.participant(edge.source)
            if participant.crashed:
                continue
            if not self._fee_ok(edge.chain_id, "deploy"):
                continue  # priced out of publishing
            try:
                deploy = participant.deploy_contract(
                    edge.chain_id,
                    CENTRALIZED_CONTRACT_CLASS,
                    args=(
                        self._address_of(edge.recipient).raw,
                        self._ms_id,
                        self.witness.public_key.to_bytes(),
                    ),
                    value=edge.amount,
                    fee=self._fee_for(edge.chain_id, "deploy"),
                )
            except InsufficientFundsError:
                continue  # change is in flight; retry next tick
            except FeeTooLowError:
                self._raise_rate_floor(edge.chain_id)
                continue  # outbid at submission; retry at a higher rate
            self._deploys[key] = deploy
            record = self.outcome.contracts[key]
            record.contract_id = deploy.contract_id()
            record.deploy_message_id = deploy.message_id()
            record.deployed_at = self.sim.now
            self._track(
                edge.chain_id,
                deploy,
                sender=edge.source,
                on_replace=lambda new, key=key: self._replace_deploy(key, new),
            )

    # -- settlement ----------------------------------------------------------

    def _try_settle(self, signature: EcdsaSignature, function: str) -> None:
        for edge in self.graph.edges:
            key = edge_key(edge)
            if key in self._settle_calls or key not in self._deploys:
                continue
            actor_name = edge.recipient if function == "redeem" else edge.source
            actor = self.env.participant(actor_name)
            if actor.crashed:
                continue
            if not self._fee_ok(edge.chain_id, "call"):
                continue
            try:
                call = actor.call_contract(
                    edge.chain_id,
                    self._deploys[key].contract_id(),
                    function,
                    args=(signature,),
                    fee=self._fee_for(edge.chain_id, "call"),
                )
            except InsufficientFundsError:
                continue  # retry next tick
            except FeeTooLowError:
                self._raise_rate_floor(edge.chain_id)
                continue  # outbid at submission; retry at a higher rate
            self._settle_calls[key] = call
            self._track(
                edge.chain_id,
                call,
                sender=actor_name,
                on_replace=lambda new, key=key: self._replace_settle_call(key, new),
            )

    def _settle_step(self) -> None:
        self._try_settle(self._signature, self._settle_function)

    # -- state machine -------------------------------------------------------------

    def _begin(self) -> None:
        delta = self._max_delta()
        deploy_timeout = self.config.deploy_timeout or 4.0 * delta
        self._settle_timeout = self.config.settle_timeout or 4.0 * delta

        # Step 1-2: multisign the graph and register it at Trent.  A
        # Byzantine participant may withhold its signature; Trent then
        # rejects the incomplete ms(D) at registration.
        keypairs = self.env.keypairs()
        if self.config.omit_signers:
            ms = multisign(
                [
                    keypairs[name]
                    for name in self.graph.participant_names()
                    if name not in self.config.omit_signers
                ],
                GRAPH_SIGNING_DOMAIN,
                self.graph.payload(),
            )
        else:
            ms = self.graph.multisign(keypairs)
        try:
            self._ms_id = self.witness.register(self.graph, ms)
        except WitnessError as exc:
            self.outcome.notes.append(f"registration failed: {exc}")
            self.outcome.decision = "undecided"
            self._finish()
            return
        self.outcome.phase_times["registered"] = self.sim.now
        self._deploy_deadline = self.sim.now + deploy_timeout
        self._set_phase("deploy")

    def _advance(self) -> None:
        if self._phase == "deploy":
            self._advance_deploy()
        elif self._phase == "settle":
            self._advance_settle()

    # Step 3-4: concurrent contract deployment.
    def _advance_deploy(self) -> None:
        all_published = self._all_confirmed()
        if all_published or self.sim.now >= self._deploy_deadline:
            self.outcome.phase_times["contracts_deployed"] = self.sim.now
            self._decide(all_published)
            return
        self._try_deploy_edges()
        self._schedule_tick(self._deploy_deadline)

    # Step 5-6: request the decision signature from Trent (synchronous —
    # Trent is an off-chain service, not a chain).
    def _decide(self, all_published: bool) -> None:
        try:
            if all_published:
                contract_ids = {
                    key: deploy.contract_id() for key, deploy in self._deploys.items()
                }
                self._signature = self.witness.request_redemption(
                    self._ms_id, contract_ids
                )
                self._settle_function = "redeem"
                self.outcome.decision = "commit"
            else:
                self.outcome.notes.append(
                    "not all contracts confirmed before the deadline; aborting"
                )
                self._signature = self.witness.request_refund(self._ms_id)
                self._settle_function = "refund"
                self.outcome.decision = "abort"
        except WitnessError as exc:
            self.outcome.notes.append(f"witness refused: {exc}")
            self.outcome.decision = "undecided"
            self._finish()
            return
        self.outcome.phase_times["decision"] = self.sim.now
        self._enter_settle_phase(self._settle_timeout)


def run_ac3tw(
    env: SwapEnvironment,
    graph: SwapGraph,
    witness: TrustedWitness,
    **config_kwargs,
) -> SwapOutcome:
    """Convenience wrapper: configure and run one AC3TW execution."""
    config = AC3TWConfig(**config_kwargs)
    return AC3TWDriver(env, graph, witness, config).run()
