"""The paper's protocols: graph model, contracts, AC3TW, AC3WN, baselines."""

from .ac3tw import (
    AC3TWConfig,
    AC3TWDriver,
    CENTRALIZED_CONTRACT_CLASS,
    CentralizedSC,
    TrustedWitness,
    run_ac3tw,
)
from .ac3wn import (
    AC3WNConfig,
    AC3WNDriver,
    EdgeSpec,
    PERMISSIONLESS_CONTRACT_CLASS,
    PermissionlessSC,
    WITNESS_CONTRACT_CLASS,
    WitnessContract,
    WitnessState,
    run_ac3wn,
)
from .contract_template import AtomicSwapContract, SwapState
from .driver import ProtocolDriver
from .evidence import (
    AnchorValidator,
    EvidenceValidator,
    FullReplicaValidator,
    HeaderRelayContract,
    LightClientValidator,
    PublicationEvidence,
    StateEvidence,
    build_publication_evidence,
    build_state_evidence,
    verify_publication_evidence,
    verify_state_evidence,
)
from .graph import AssetEdge, SwapGraph
from .herlihy import (
    HerlihyConfig,
    HerlihyDriver,
    compute_publish_waves,
    run_herlihy,
)
from .htlc import HTLCContract
from .nolan import NolanDriver, run_nolan, validate_two_party
from .participant import ChainHandle, Participant
from .protocol import (
    ContractRecord,
    SwapEnvironment,
    SwapOutcome,
    assert_atomic,
    edge_key,
    wait_for_depth,
)

__all__ = [
    "AC3TWConfig",
    "AC3TWDriver",
    "AC3WNConfig",
    "AC3WNDriver",
    "AnchorValidator",
    "AssetEdge",
    "AtomicSwapContract",
    "CENTRALIZED_CONTRACT_CLASS",
    "CentralizedSC",
    "ChainHandle",
    "ContractRecord",
    "EdgeSpec",
    "EvidenceValidator",
    "FullReplicaValidator",
    "HTLCContract",
    "HeaderRelayContract",
    "HerlihyConfig",
    "HerlihyDriver",
    "LightClientValidator",
    "NolanDriver",
    "PERMISSIONLESS_CONTRACT_CLASS",
    "Participant",
    "PermissionlessSC",
    "ProtocolDriver",
    "PublicationEvidence",
    "StateEvidence",
    "SwapEnvironment",
    "SwapGraph",
    "SwapOutcome",
    "SwapState",
    "TrustedWitness",
    "WITNESS_CONTRACT_CLASS",
    "WitnessContract",
    "WitnessState",
    "assert_atomic",
    "build_publication_evidence",
    "build_state_evidence",
    "compute_publish_waves",
    "edge_key",
    "run_ac3tw",
    "run_ac3wn",
    "run_herlihy",
    "run_nolan",
    "validate_two_party",
    "verify_publication_evidence",
    "verify_state_evidence",
    "wait_for_depth",
]
