"""Hashed-timelock contracts (HTLC) — the Nolan/Herlihy building block.

``SC1`` in the paper's Section 1 walkthrough: assets are locked under a
hashlock ``h = H(s)`` and a timelock ``t``.  The recipient redeems by
revealing the preimage ``s`` before ``t`` expires; after ``t`` the sender
refunds.  The *timelock doubles as the refund commitment scheme*, which
is precisely the design the paper criticizes: a crash or partition that
delays the redeeming party past ``t`` forfeits their asset (the
all-or-nothing violation AC3WN eliminates).
"""

from __future__ import annotations

from typing import Any

from ..chain.block import decode_time, encode_time
from ..chain.contracts import ExecutionContext, register_contract, requires
from ..crypto.hashing import verify_hashlock
from .contract_template import AtomicSwapContract


@register_contract
class HTLCContract(AtomicSwapContract):
    """An HTLC: redeem with the hash preimage, refund after the timelock.

    Constructor args:
        recipient_raw: 20-byte recipient address.
        hashlock: ``h = H(s)`` — the redemption commitment.
        timelock_ticks: integer header-time at which refunds unlock
            (use :func:`repro.chain.block.encode_time`).
    """

    CLASS_NAME = "HTLC"

    def constructor(
        self,
        ctx: ExecutionContext,
        recipient_raw: bytes,
        hashlock: bytes,
        timelock_ticks: int,
    ) -> None:
        super().constructor(ctx, recipient_raw)
        requires(len(hashlock) == 32, "hashlock must be a 32-byte digest")
        requires(timelock_ticks > encode_time(ctx.block_time), "timelock already expired")
        self.hashlock = hashlock
        self.timelock_ticks = timelock_ticks
        self.revealed_secret: bytes | None = None

    # -- commitment checks ---------------------------------------------------

    def is_redeemable(self, ctx: ExecutionContext, secret: Any) -> bool:
        """The preimage verifies and the timelock has not expired."""
        if not isinstance(secret, (bytes, bytearray)):
            return False
        if ctx.block_time >= self.timelock:
            return False
        return verify_hashlock(self.hashlock, bytes(secret))

    def is_refundable(self, ctx: ExecutionContext, secret: Any) -> bool:
        """Refunds unlock once the timelock expires (no secret needed)."""
        return ctx.block_time >= self.timelock

    # -- overrides ---------------------------------------------------------------

    def redeem(self, ctx: ExecutionContext, secret: Any) -> None:
        """Redeem and *reveal* the secret on-chain.

        Revealing is what lets the counterparty learn ``s`` and redeem the
        other contract — the cascade Nolan's protocol relies on.
        """
        super().redeem(ctx, secret)
        self.revealed_secret = bytes(secret)

    @property
    def timelock(self) -> float:
        """The timelock as simulator seconds."""
        return decode_time(self.timelock_ticks)
