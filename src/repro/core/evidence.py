"""Cross-chain evidence validation (Section 4.3).

Miners of one blockchain (the *validator*) must be able to validate the
publishing and verify the state of a smart contract deployed in another
blockchain (the *validated*).  AC3WN needs this in both directions:

* ``VerifyContracts`` (Algorithm 3): witness-network miners validate
  that every asset-chain contract of the AC2T is published and correct.
* ``IsRedeemable`` / ``IsRefundable`` (Algorithm 4): asset-chain miners
  verify that the witness contract's state is ``RDauth`` / ``RFauth``.

The paper discusses three mechanisms, all implemented here:

1. **Full replication** (:class:`FullReplicaValidator`): the validator's
   miners maintain a full copy of the validated chain and consult it
   directly.  Impractical at scale but the simplest baseline.
2. **Light nodes** (:class:`LightClientValidator`): the validator's
   miners run header-only light nodes of the validated chain and check
   Merkle inclusion proofs (SPV).
3. **Relay contracts — the paper's proposal**
   (:func:`verify_publication_evidence` / :func:`verify_state_evidence`
   as pure functions plus :class:`AnchorValidator` and the on-chain
   :class:`HeaderRelayContract`): a smart contract on the validator
   chain stores a *stable header* of the validated chain; evidence is a
   run of subsequent headers (each with valid PoW, each linking to its
   predecessor) plus Merkle proofs of the message of interest and of its
   execution receipt, and a depth requirement.

Every mechanism authenticates the same two claims about a foreign chain:
"this deploy/call message is included at depth ≥ d" and "its execution
succeeded" (the receipt commitment is what distinguishes a successful
``AuthorizeRedeem`` from a reverted one).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..chain.block import BlockHeader, receipt_leaf
from ..chain.chain import Blockchain
from ..chain.contracts import ExecutionContext, SmartContract, register_contract, requires
from ..chain.lightclient import LightClient, verify_header_linkage
from ..chain.messages import CallMessage, DeployMessage
from ..crypto.merkle import MerkleProof
from ..errors import EvidenceError

#: Map from witness-contract function names to the state a *successful*
#: call leaves the contract in (used when validating state evidence).
AUTHORIZING_FUNCTIONS = {
    "authorize_redeem": "RDauth",
    "authorize_refund": "RFauth",
}


# ---------------------------------------------------------------------------
# Evidence payloads
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PublicationEvidence:
    """Proof that a deploy message is included and executed on a chain.

    Attributes:
        chain_id: the validated chain.
        deploy: the full deployment message (authenticated by hashing it
            and checking the hash against the proven Merkle leaf).
        height: height of the including block.
        message_proof: Merkle proof of the message id in the block's
            message tree.
        receipt_proof: Merkle proof of the ``(message_id, "ok")`` receipt
            leaf in the block's receipt tree.
        headers: contiguous main-chain headers, starting at the verifier's
            trusted anchor (inclusive) and ending at a tip that buries the
            inclusion block to the required depth.  Full-replica and
            light-client validators ignore this field.
    """

    chain_id: str
    deploy: DeployMessage
    height: int
    message_proof: MerkleProof
    receipt_proof: MerkleProof
    headers: tuple[BlockHeader, ...] = ()

    def to_wire(self):
        return {
            "type": "publication-evidence",
            "chain_id": self.chain_id,
            "deploy": self.deploy,
            "height": self.height,
            "message_proof": self.message_proof,
            "receipt_proof": self.receipt_proof,
            "headers": list(self.headers),
        }

    @property
    def claims(self) -> dict:
        return {
            "chain_id": self.chain_id,
            "contract_id": self.deploy.contract_id(),
            "state": "P",
        }


@dataclass(frozen=True)
class StateEvidence:
    """Proof that a witness contract reached a state on its chain.

    The state transition is proven via the *authorizing call*: the
    witness contract only permits ``P → RDauth`` (``authorize_redeem``)
    and ``P → RFauth`` (``authorize_refund``), so a successful call of
    one of those functions pins the contract's final state.
    """

    chain_id: str
    contract_id: bytes
    state: str  # claimed: "RDauth" or "RFauth"
    call: CallMessage
    height: int
    message_proof: MerkleProof
    receipt_proof: MerkleProof
    headers: tuple[BlockHeader, ...] = ()

    def to_wire(self):
        return {
            "type": "state-evidence",
            "chain_id": self.chain_id,
            "contract_id": self.contract_id,
            "state": self.state,
            "call": self.call,
            "height": self.height,
            "message_proof": self.message_proof,
            "receipt_proof": self.receipt_proof,
            "headers": list(self.headers),
        }

    @property
    def claims(self) -> dict:
        return {
            "chain_id": self.chain_id,
            "contract_id": self.contract_id,
            "state": self.state,
        }


# ---------------------------------------------------------------------------
# Evidence construction (run by participants against a full node)
# ---------------------------------------------------------------------------


def _anchor_height_default(anchor: BlockHeader | None) -> int:
    return 0 if anchor is None else anchor.height


def headers_required(validators) -> bool:
    """Whether evidence destined for a chain with this validator registry
    must carry the header segment.

    Relay/anchor verification replays the headers; full-replica and
    light-client validators consult their own copy of the validated chain
    and ignore the field entirely, so builders may skip the (long) header
    run for them.  Unknown validator types get headers — the safe default.
    """
    return not isinstance(validators, (FullReplicaValidator, LightClientValidator))


def build_publication_evidence(
    chain: Blockchain,
    deploy: DeployMessage,
    anchor: BlockHeader | None = None,
    include_headers: bool = True,
) -> PublicationEvidence:
    """Assemble publication evidence for a deploy included in ``chain``.

    ``anchor`` is the stable header the verifier trusts; the evidence
    carries all main-chain headers from the anchor to the current tip.
    Pass ``include_headers=False`` when the verifier is known to ignore
    the header segment (see :func:`headers_required`).
    """
    message_id = deploy.message_id()
    location = chain.find_message(message_id)
    if location is None:
        raise EvidenceError("deploy message is not on the main chain")
    block = chain.block(location.block_hash)
    message_proof = block.merkle_tree().proof(location.index)
    receipt_proof = _receipt_proof_for(chain, location.block_hash, message_id)
    headers: tuple[BlockHeader, ...] = ()
    if include_headers:
        headers = tuple(chain.header_chain(_anchor_height_default(anchor)))
    return PublicationEvidence(
        chain_id=chain.params.chain_id,
        deploy=deploy,
        height=location.height,
        message_proof=message_proof,
        receipt_proof=receipt_proof,
        headers=headers,
    )


def build_state_evidence(
    chain: Blockchain,
    contract_id: bytes,
    call: CallMessage,
    claimed_state: str,
    anchor: BlockHeader | None = None,
    include_headers: bool = True,
) -> StateEvidence:
    """Assemble state evidence from the authorizing call's inclusion."""
    message_id = call.message_id()
    location = chain.find_message(message_id)
    if location is None:
        raise EvidenceError("authorizing call is not on the main chain")
    block = chain.block(location.block_hash)
    message_proof = block.merkle_tree().proof(location.index)
    receipt_proof = _receipt_proof_for(chain, location.block_hash, message_id)
    headers: tuple[BlockHeader, ...] = ()
    if include_headers:
        headers = tuple(chain.header_chain(_anchor_height_default(anchor)))
    return StateEvidence(
        chain_id=chain.params.chain_id,
        contract_id=contract_id,
        state=claimed_state,
        call=call,
        height=location.height,
        message_proof=message_proof,
        receipt_proof=receipt_proof,
        headers=headers,
    )


def _receipt_proof_for(chain: Blockchain, block_hash: bytes, message_id: bytes) -> MerkleProof:
    """Build the Merkle proof of a message's receipt within its block.

    The per-block receipt list and tree are cached by the chain at
    connect time, so this costs one index scan plus one proof walk.
    """
    statuses, tree = chain.receipts_data(block_hash)
    for i, (mid, _status) in enumerate(statuses):
        if mid == message_id:
            return tree.proof(i)
    raise EvidenceError("message not found in its claimed block")


# ---------------------------------------------------------------------------
# Pure verification against a trusted anchor (the paper's relay proposal)
# ---------------------------------------------------------------------------


#: Process-wide hit/miss counters for the evidence verdict memo, the
#: cache-introspection twin of ``crypto.keys.verify_cache_info()``.
#: The memo itself is per-evidence-instance, so "size" has no global
#: meaning and is reported as the instance count observed via misses.
_memo_hits = 0
_memo_misses = 0


def evidence_cache_info() -> dict:
    """Hit/miss counters for the per-instance evidence verdict memo."""
    return {"hits": _memo_hits, "misses": _memo_misses}


def reset_evidence_cache_info() -> None:
    """Zero the counters (test isolation)."""
    global _memo_hits, _memo_misses
    _memo_hits = 0
    _memo_misses = 0


def _memoized_verify(evidence, anchor: BlockHeader, min_depth: int, compute):
    """Per-instance verdict cache for the pure verifiers.

    The same frozen evidence object is re-verified several times on its
    way into a block (miner template trial, block connect, driver
    re-validation), always against the same ``(anchor, min_depth)``; the
    verdict is a pure function of the three, so it is cached on the
    evidence instance.  Tampered copies made via ``dataclasses.replace``
    are new instances and start with an empty cache.
    """
    global _memo_hits, _memo_misses
    cache = evidence.__dict__.get("_verdicts")
    if cache is None:
        cache = {}
        object.__setattr__(evidence, "_verdicts", cache)
    key = (anchor.block_id(), min_depth)
    verdict = cache.get(key)
    if verdict is None:
        _memo_misses += 1
        try:
            verdict = (True, compute())
        except EvidenceError as exc:
            verdict = (False, str(exc))
        cache[key] = verdict
    else:
        _memo_hits += 1
    ok, payload = verdict
    if not ok:
        raise EvidenceError(payload)
    return payload


def _verify_segment(
    evidence_headers: tuple[BlockHeader, ...],
    anchor: BlockHeader,
    chain_id: str,
) -> list[BlockHeader]:
    """Authenticate a header segment: anchored, linked, PoW-valid."""
    if not evidence_headers:
        raise EvidenceError("evidence carries no headers")
    headers = list(evidence_headers)
    if headers[0].block_id() != anchor.block_id():
        raise EvidenceError("evidence is not anchored at the trusted stable header")
    if any(h.chain_id != chain_id for h in headers):
        raise EvidenceError("evidence headers belong to the wrong chain")
    verify_header_linkage(headers)
    return headers


def _verify_inclusion_in_segment(
    headers: list[BlockHeader],
    height: int,
    message_id: bytes,
    message_proof: MerkleProof,
    receipt_proof: MerkleProof,
    min_depth: int,
) -> None:
    """Check message + ok-receipt inclusion at ``height``, buried ≥ depth."""
    base = headers[0].height
    tip = headers[-1].height
    if not base <= height <= tip:
        raise EvidenceError(
            f"inclusion height {height} outside evidence segment [{base}, {tip}]"
        )
    depth = tip - height + 1
    if depth < min_depth:
        raise EvidenceError(f"inclusion depth {depth} below required {min_depth}")
    header = headers[height - base]
    if message_proof.leaf != message_id:
        raise EvidenceError("message proof does not cover the claimed message")
    if not message_proof.verify(header.merkle_root):
        raise EvidenceError("message inclusion proof failed")
    if receipt_proof.leaf != receipt_leaf(message_id, "ok"):
        raise EvidenceError("receipt proof does not show successful execution")
    if not receipt_proof.verify(header.receipts_root):
        raise EvidenceError("receipt inclusion proof failed")


def verify_publication_evidence(
    evidence: PublicationEvidence,
    anchor: BlockHeader,
    min_depth: int,
) -> DeployMessage:
    """Pure relay-style verification; returns the authenticated deploy.

    Raises :class:`~repro.errors.EvidenceError` on any failure.  On
    success the returned deploy message is *trusted data*: its hash is
    committed in a PoW-buried block of the validated chain.
    """

    def compute() -> DeployMessage:
        headers = _verify_segment(evidence.headers, anchor, evidence.chain_id)
        _verify_inclusion_in_segment(
            headers,
            evidence.height,
            evidence.deploy.message_id(),
            evidence.message_proof,
            evidence.receipt_proof,
            min_depth,
        )
        return evidence.deploy

    return _memoized_verify(evidence, anchor, min_depth, compute)


def verify_state_evidence(
    evidence: StateEvidence,
    anchor: BlockHeader,
    min_depth: int,
) -> tuple[bytes, str]:
    """Pure relay-style verification; returns (contract_id, state).

    The claimed state must match the authorizing function of the proven
    call, the call must target the claimed contract, and its success
    receipt must be included at depth ≥ ``min_depth``.
    """

    def compute() -> tuple[bytes, str]:
        headers = _verify_segment(evidence.headers, anchor, evidence.chain_id)
        expected_state = AUTHORIZING_FUNCTIONS.get(evidence.call.function)
        if expected_state is None:
            raise EvidenceError(
                f"call {evidence.call.function!r} is not an authorizing function"
            )
        if expected_state != evidence.state:
            raise EvidenceError("claimed state does not match the authorizing function")
        if evidence.call.contract_id != evidence.contract_id:
            raise EvidenceError("authorizing call targets a different contract")
        _verify_inclusion_in_segment(
            headers,
            evidence.height,
            evidence.call.message_id(),
            evidence.message_proof,
            evidence.receipt_proof,
            min_depth,
        )
        return evidence.contract_id, evidence.state

    return _memoized_verify(evidence, anchor, min_depth, compute)


# ---------------------------------------------------------------------------
# Validator strategies (pluggable per chain)
# ---------------------------------------------------------------------------


class EvidenceValidator(ABC):
    """Interface miners use to validate foreign-chain evidence."""

    @abstractmethod
    def validate_publication(
        self, evidence: PublicationEvidence, min_depth: int
    ) -> DeployMessage | None:
        """Return the authenticated deploy message, or None if invalid."""

    @abstractmethod
    def validate_state(
        self, evidence: StateEvidence, min_depth: int
    ) -> tuple[bytes, str] | None:
        """Return the authenticated (contract_id, state), or None."""


class FullReplicaValidator(EvidenceValidator):
    """Miners keep full copies of every validated chain (Section 4.3's
    "simple but impractical" baseline) and consult them directly."""

    def __init__(self, chains: dict[str, Blockchain] | None = None) -> None:
        self.chains: dict[str, Blockchain] = dict(chains or {})

    def add_chain(self, chain: Blockchain) -> None:
        self.chains[chain.params.chain_id] = chain

    def _chain(self, chain_id: str) -> Blockchain | None:
        return self.chains.get(chain_id)

    def validate_publication(
        self, evidence: PublicationEvidence, min_depth: int
    ) -> DeployMessage | None:
        chain = self._chain(evidence.chain_id)
        if chain is None:
            return None
        message_id = evidence.deploy.message_id()
        if chain.message_depth(message_id) < min_depth:
            return None
        receipt = chain.state_at().receipts.get(message_id)
        if receipt is None or receipt.status != "ok":
            return None
        return evidence.deploy

    def validate_state(
        self, evidence: StateEvidence, min_depth: int
    ) -> tuple[bytes, str] | None:
        chain = self._chain(evidence.chain_id)
        if chain is None:
            return None
        expected_state = AUTHORIZING_FUNCTIONS.get(evidence.call.function)
        if expected_state != evidence.state:
            return None
        if evidence.call.contract_id != evidence.contract_id:
            return None
        message_id = evidence.call.message_id()
        if chain.message_depth(message_id) < min_depth:
            return None
        receipt = chain.state_at().receipts.get(message_id)
        if receipt is None or receipt.status != "ok":
            return None
        return evidence.contract_id, evidence.state


class LightClientValidator(EvidenceValidator):
    """Miners run light nodes of validated chains and check SPV proofs.

    ``sources`` (optional) model the light nodes' ongoing header
    download: before each validation the client syncs new headers from
    the registered full node.  Proof verification itself uses only the
    locally validated headers.
    """

    def __init__(self) -> None:
        self.clients: dict[str, LightClient] = {}
        self.sources: dict[str, Blockchain] = {}

    def track(self, chain: Blockchain) -> LightClient:
        """Start tracking ``chain`` with a fresh genesis-anchored client."""
        client = LightClient(chain.params, chain.block_at_height(0).header)
        client.sync_from(chain)
        self.clients[chain.params.chain_id] = client
        self.sources[chain.params.chain_id] = chain
        return client

    def _client(self, chain_id: str) -> LightClient | None:
        client = self.clients.get(chain_id)
        if client is not None and chain_id in self.sources:
            client.sync_from(self.sources[chain_id])
        return client

    def _validate_inclusion(
        self,
        client: LightClient,
        height: int,
        message_id: bytes,
        message_proof: MerkleProof,
        receipt_proof: MerkleProof,
        min_depth: int,
    ) -> bool:
        if height > client.height:
            return False
        if client.depth_of_height(height) < min_depth:
            return False
        header = client.header_at(height)
        if message_proof.leaf != message_id or not message_proof.verify(header.merkle_root):
            return False
        if receipt_proof.leaf != receipt_leaf(message_id, "ok"):
            return False
        return receipt_proof.verify(header.receipts_root)

    def validate_publication(
        self, evidence: PublicationEvidence, min_depth: int
    ) -> DeployMessage | None:
        client = self._client(evidence.chain_id)
        if client is None:
            return None
        ok = self._validate_inclusion(
            client,
            evidence.height,
            evidence.deploy.message_id(),
            evidence.message_proof,
            evidence.receipt_proof,
            min_depth,
        )
        return evidence.deploy if ok else None

    def validate_state(
        self, evidence: StateEvidence, min_depth: int
    ) -> tuple[bytes, str] | None:
        client = self._client(evidence.chain_id)
        if client is None:
            return None
        expected_state = AUTHORIZING_FUNCTIONS.get(evidence.call.function)
        if expected_state != evidence.state:
            return None
        if evidence.call.contract_id != evidence.contract_id:
            return None
        ok = self._validate_inclusion(
            client,
            evidence.height,
            evidence.call.message_id(),
            evidence.message_proof,
            evidence.receipt_proof,
            min_depth,
        )
        return (evidence.contract_id, evidence.state) if ok else None


class AnchorValidator(EvidenceValidator):
    """Relay-style validation from stored stable anchors (the proposal).

    This is the validator equivalent of pushing the logic into a smart
    contract: no foreign chain access at all, only the anchors recorded
    at setup time plus the self-contained evidence.
    """

    def __init__(self, anchors: dict[str, BlockHeader] | None = None) -> None:
        self.anchors: dict[str, BlockHeader] = dict(anchors or {})

    def set_anchor(self, chain_id: str, header: BlockHeader) -> None:
        self.anchors[chain_id] = header

    def validate_publication(
        self, evidence: PublicationEvidence, min_depth: int
    ) -> DeployMessage | None:
        anchor = self.anchors.get(evidence.chain_id)
        if anchor is None:
            return None
        try:
            return verify_publication_evidence(evidence, anchor, min_depth)
        except EvidenceError:
            return None

    def validate_state(
        self, evidence: StateEvidence, min_depth: int
    ) -> tuple[bytes, str] | None:
        anchor = self.anchors.get(evidence.chain_id)
        if anchor is None:
            return None
        try:
            return verify_state_evidence(evidence, anchor, min_depth)
        except EvidenceError:
            return None


# ---------------------------------------------------------------------------
# The general-purpose relay contract of Figure 6
# ---------------------------------------------------------------------------


@register_contract
class HeaderRelayContract(SmartContract):
    """Figure 6's validator contract ``SC``: stores a stable header of the
    validated chain and flips ``S1 → S2`` when evidence proves that the
    transaction of interest took place after the stored stable block.

    Constructor args:
        validated_chain_id: the chain being watched.
        stable_header: a stable (depth ≥ d) header of that chain.
        watched_message_id: the message id whose inclusion is awaited.
        min_depth: required burial depth of the inclusion block.
    """

    CLASS_NAME = "HeaderRelay"

    def constructor(
        self,
        ctx: ExecutionContext,
        validated_chain_id: str,
        stable_header: BlockHeader,
        watched_message_id: bytes,
        min_depth: int,
    ) -> None:
        self.validated_chain_id = validated_chain_id
        self.stable_header = stable_header
        self.watched_message_id = watched_message_id
        self.min_depth = min_depth
        self.state = "S1"
        self.observed_height: int | None = None

    def submit_evidence(
        self,
        ctx: ExecutionContext,
        headers: tuple[BlockHeader, ...],
        height: int,
        message_proof: MerkleProof,
        receipt_proof: MerkleProof,
    ) -> None:
        """Verify the header run + proofs; on success move to S2."""
        requires(self.state == "S1", "relay already satisfied")
        try:
            verified = _verify_segment(
                tuple(headers), self.stable_header, self.validated_chain_id
            )
            _verify_inclusion_in_segment(
                verified,
                height,
                self.watched_message_id,
                message_proof,
                receipt_proof,
                self.min_depth,
            )
        except EvidenceError as exc:
            requires(False, f"evidence rejected: {exc}")
        self.state = "S2"
        self.observed_height = height
        ctx.emit("relay-satisfied", height=height)
