"""The AC2T transaction graph ``D = (V, E)`` (Section 3).

An atomic cross-chain transaction is modelled as a directed graph whose
vertexes are participants and whose edges are sub-transactions: an edge
``e = (u, v)`` transfers asset ``e.a`` from ``u`` to ``v`` on blockchain
``e.BC``.  All participants multisign ``(D, t)`` producing ``ms(D)``,
which the witness (Trent or the witness network) uses to identify and
verify the AC2T.

The graph-theoretic quantities the evaluation depends on are computed
here: ``Diam(D)`` (Section 6.1's latency driver), cyclicity and
connectivity (the Section 5.3 complex-graph cases of Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.keys import KeyPair, PublicKey
from ..crypto.signatures import Multisignature, multisign
from ..errors import GraphError
from ..chain.wire import canonical_encode, wire_hash

GRAPH_SIGNING_DOMAIN = "repro/ac2t-graph"


@dataclass(frozen=True)
class AssetEdge:
    """One sub-transaction: ``amount`` moves ``source`` → ``recipient`` on
    blockchain ``chain_id``."""

    source: str
    recipient: str
    chain_id: str
    amount: int

    def __post_init__(self) -> None:
        if self.amount <= 0:
            raise GraphError("edge amount must be positive")
        if self.source == self.recipient:
            raise GraphError("self-transfers are not sub-transactions")

    def to_wire(self):
        return {
            "source": self.source,
            "recipient": self.recipient,
            "chain_id": self.chain_id,
            "amount": self.amount,
        }

    def key(self) -> tuple[str, str, str, int]:
        return (self.source, self.recipient, self.chain_id, self.amount)


@dataclass(frozen=True)
class SwapGraph:
    """The immutable AC2T graph ``D`` plus its agreement timestamp ``t``.

    Attributes:
        participants: vertex name → public key, the identities that must
            multisign the graph.
        edges: the sub-transactions.
        timestamp: integer agreement time distinguishing otherwise
            identical AC2Ts among the same participants.
    """

    participants: tuple[tuple[str, PublicKey], ...]
    edges: tuple[AssetEdge, ...]
    timestamp: int = 0

    # -- construction ------------------------------------------------------

    @classmethod
    def build(
        cls,
        participants: dict[str, PublicKey],
        edges: list[AssetEdge],
        timestamp: int = 0,
    ) -> "SwapGraph":
        graph = cls(
            participants=tuple(sorted(participants.items())),
            edges=tuple(edges),
            timestamp=timestamp,
        )
        graph.validate()
        return graph

    def validate(self) -> None:
        """Structural validation: every edge endpoint must be a vertex."""
        if not self.edges:
            raise GraphError("an AC2T needs at least one sub-transaction")
        names = {name for name, _ in self.participants}
        if len(names) != len(self.participants):
            raise GraphError("duplicate participant names")
        for edge in self.edges:
            if edge.source not in names or edge.recipient not in names:
                raise GraphError(
                    f"edge {edge.source}->{edge.recipient} references an "
                    f"unknown participant"
                )
        if len(set(self.edges)) != len(self.edges):
            raise GraphError("duplicate edges in the AC2T graph")

    # -- identity ------------------------------------------------------------

    def participant_names(self) -> list[str]:
        return [name for name, _ in self.participants]

    def participant_keys(self) -> dict[str, PublicKey]:
        return dict(self.participants)

    def to_wire(self):
        return {
            "participants": [
                {"name": name, "key": key.to_bytes()} for name, key in self.participants
            ],
            "edges": list(self.edges),
            "timestamp": self.timestamp,
        }

    def payload(self) -> bytes:
        """Canonical bytes of ``(D, t)`` — what the participants sign."""
        return canonical_encode(self.to_wire())

    def digest(self) -> bytes:
        """The signing digest of ``(D, t)`` (same digest ``ms(D)`` carries)."""
        return wire_hash_from_payload(self.payload())

    # -- multisignature ms(D) ------------------------------------------------

    def multisign(self, keypairs: dict[str, KeyPair]) -> Multisignature:
        """Produce ``ms(D)``: every participant signs ``(D, t)``.

        Signature order is irrelevant (the paper notes any order implies
        unanimous agreement); missing keypairs raise GraphError.
        """
        missing = [name for name, _ in self.participants if name not in keypairs]
        if missing:
            raise GraphError(f"missing keypairs for participants: {missing}")
        signers = [keypairs[name] for name, _ in self.participants]
        return multisign(signers, GRAPH_SIGNING_DOMAIN, self.payload())

    def verify_multisignature(self, ms: Multisignature) -> bool:
        """Check ``ms`` carries a valid signature from *every* participant."""
        if ms.digest != wire_hash_from_payload(self.payload()):
            return False
        return ms.verify([key for _, key in self.participants])

    # -- graph-theoretic measures -----------------------------------------------

    def _adjacency(self) -> dict[str, set[str]]:
        adj: dict[str, set[str]] = {name: set() for name, _ in self.participants}
        for edge in self.edges:
            adj[edge.source].add(edge.recipient)
        return adj

    def _bfs_distances(self, start: str, adj: dict[str, set[str]]) -> dict[str, int]:
        """Shortest directed-path lengths from ``start`` to reachable nodes."""
        distances: dict[str, int] = {start: 0}
        frontier = [start]
        while frontier:
            nxt: list[str] = []
            for node in frontier:
                for succ in adj[node]:
                    if succ not in distances:
                        distances[succ] = distances[node] + 1
                        nxt.append(succ)
            frontier = nxt
        return distances

    def diameter(self) -> int:
        """``Diam(D)``: longest shortest directed path, closed walks included.

        The paper defines the diameter as "the length of the longest path
        from any vertex in D to any other vertex in D including itself",
        so for each vertex the shortest closed walk through it counts as
        its self-distance; the smallest two-party swap (A⇄B) has
        ``Diam = 2``, matching Figure 10's x-axis starting at 2.
        """
        adj = self._adjacency()
        best = 0
        names = [name for name, _ in self.participants]
        all_distances = {name: self._bfs_distances(name, adj) for name in names}
        for start in names:
            for target, dist in all_distances[start].items():
                if target != start:
                    best = max(best, dist)
            # Self-distance: the shortest closed walk through `start`,
            # i.e. an edge start->w plus the shortest path w->start.
            cycle_lengths = [
                all_distances[succ].get(start, None) for succ in adj[start]
            ]
            cycle_lengths = [1 + c for c in cycle_lengths if c is not None]
            if cycle_lengths:
                best = max(best, min(cycle_lengths))
        return best

    def is_cyclic(self) -> bool:
        """True iff the digraph contains a directed cycle."""
        adj = self._adjacency()
        colors: dict[str, int] = {}  # 0=white 1=grey 2=black

        def visit(node: str) -> bool:
            colors[node] = 1
            for succ in adj[node]:
                state = colors.get(succ, 0)
                if state == 1:
                    return True
                if state == 0 and visit(succ):
                    return True
            colors[node] = 2
            return False

        return any(colors.get(name, 0) == 0 and visit(name) for name, _ in self.participants)

    def is_connected(self) -> bool:
        """Weak connectivity: is the underlying undirected graph connected?"""
        undirected: dict[str, set[str]] = {name: set() for name, _ in self.participants}
        for edge in self.edges:
            undirected[edge.source].add(edge.recipient)
            undirected[edge.recipient].add(edge.source)
        names = [name for name, _ in self.participants]
        seen = {names[0]}
        stack = [names[0]]
        while stack:
            node = stack.pop()
            for neighbor in undirected[node]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        return len(seen) == len(names)

    def chains_used(self) -> set[str]:
        return {edge.chain_id for edge in self.edges}

    def edges_from(self, name: str) -> list[AssetEdge]:
        return [edge for edge in self.edges if edge.source == name]

    def edges_to(self, name: str) -> list[AssetEdge]:
        return [edge for edge in self.edges if edge.recipient == name]

    @property
    def num_contracts(self) -> int:
        """``N = |E|``: one smart contract per edge (Section 6.2)."""
        return len(self.edges)


def wire_hash_from_payload(payload: bytes) -> bytes:
    """The digest participants sign for a given canonical graph payload."""
    from ..crypto.hashing import tagged_hash

    return tagged_hash(GRAPH_SIGNING_DOMAIN, payload)
