"""AC3WN: atomic cross-chain commitment with a permissionless witness
network (Section 4.2, Algorithms 3 and 4).

The witness network hosts one coordinator contract ``SCw`` per AC2T.
``SCw`` starts in state ``P`` and permits exactly two transitions —
``P → RDauth`` (commit) and ``P → RFauth`` (abort) — which makes the
redeem and refund secrets structurally mutually exclusive.  Asset-chain
contracts (:class:`PermissionlessSC`) condition their redeem/refund on
evidence about ``SCw``'s state buried at depth ≥ d on the witness chain.

The protocol has four Δ-phases (Section 6.1 / Figure 9):

1. deploy ``SCw`` on the witness network;
2. deploy all asset contracts **in parallel**;
3. flip ``SCw`` to ``RDauth`` (or ``RFauth``) with evidence;
4. settle all asset contracts **in parallel**.

Total latency 4·Δ regardless of the AC2T graph's diameter — the paper's
headline improvement over Herlihy's 2·Δ·Diam(D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..chain.block import BlockHeader
from ..chain.contracts import (
    ExecutionContext,
    SmartContract,
    register_contract,
    requires,
)
from ..chain.messages import CallMessage, DeployMessage
from ..crypto.keys import PublicKey
from ..crypto.signatures import Multisignature, multisign
from ..errors import FeeTooLowError, InsufficientFundsError, EvidenceError, ProtocolError
from .contract_template import AtomicSwapContract
from .driver import ProtocolDriver
from .evidence import (
    PublicationEvidence,
    StateEvidence,
    build_publication_evidence,
    build_state_evidence,
    headers_required,
    verify_publication_evidence,
    verify_state_evidence,
)
from .graph import GRAPH_SIGNING_DOMAIN, SwapGraph
from .protocol import SwapEnvironment, SwapOutcome, edge_key

WITNESS_CONTRACT_CLASS = "AC3WN-Witness"
PERMISSIONLESS_CONTRACT_CLASS = "AC3-PermissionlessSC"


class WitnessState:
    """States of the coordinator contract (Algorithm 3, line 1)."""

    PUBLISHED = "P"
    REDEEM_AUTHORIZED = "RDauth"
    REFUND_AUTHORIZED = "RFauth"


@dataclass(frozen=True)
class EdgeSpec:
    """What ``SCw`` expects of one asset-chain contract.

    Derived from the multisigned graph at registration time; used by
    ``VerifyContracts`` to check each published contract against its
    edge's description (sender, recipient, asset, blockchain).
    """

    chain_id: str
    sender_raw: bytes
    recipient_raw: bytes
    amount: int
    min_depth: int

    def to_wire(self):
        return {
            "chain_id": self.chain_id,
            "sender": self.sender_raw,
            "recipient": self.recipient_raw,
            "amount": self.amount,
            "min_depth": self.min_depth,
        }


@register_contract
class WitnessContract(SmartContract):
    """Algorithm 3: the witness-network coordinator ``SCw``.

    Constructor args:
        participant_keys: compressed public keys of all AC2T participants.
        ms: the multisignature ``ms(D)`` over the graph.
        graph_digest: the digest ``ms`` must carry (binds ms to D).
        edge_specs: per-edge expectations for VerifyContracts.
        anchors: ``(chain_id, stable BlockHeader)`` pairs recorded at
            registration, used for relay-style evidence validation when
            the witness chain's miners run no foreign full/light nodes.
    """

    CLASS_NAME = WITNESS_CONTRACT_CLASS

    def constructor(
        self,
        ctx: ExecutionContext,
        participant_keys: tuple[bytes, ...],
        ms: Multisignature,
        graph_digest: bytes,
        edge_specs: tuple[EdgeSpec, ...],
        anchors: tuple[tuple[str, BlockHeader], ...] = (),
    ) -> None:
        keys = [PublicKey.from_bytes(raw) for raw in participant_keys]
        # Registration validity: all participants signed this exact graph.
        requires(ms.digest == graph_digest, "multisignature covers a different graph")
        requires(ms.verify(keys), "multisignature incomplete or invalid")
        requires(len(edge_specs) > 0, "an AC2T needs at least one edge")
        self.participant_keys = tuple(participant_keys)
        self.ms = ms
        self.graph_digest = graph_digest
        self.edge_specs = tuple(edge_specs)
        self.anchors = dict(anchors)
        self.state = WitnessState.PUBLISHED
        self.decided_at: float | None = None

    # -- Algorithm 3, lines 10-13 ------------------------------------------

    def authorize_redeem(
        self, ctx: ExecutionContext, evidences: tuple[PublicationEvidence, ...]
    ) -> None:
        """Commit the AC2T once every contract is proven published+correct."""
        requires(self.state == WitnessState.PUBLISHED, "SCw is not in state P")
        requires(self.verify_contracts(ctx, evidences), "contract verification failed")
        self.state = WitnessState.REDEEM_AUTHORIZED
        self.decided_at = ctx.block_time
        ctx.emit("redeem-authorized", graph=self.graph_digest)

    # -- Algorithm 3, lines 14-17 ------------------------------------------

    def authorize_refund(self, ctx: ExecutionContext) -> None:
        """Abort the AC2T; only requires that no decision exists yet."""
        requires(self.state == WitnessState.PUBLISHED, "SCw is not in state P")
        self.state = WitnessState.REFUND_AUTHORIZED
        self.decided_at = ctx.block_time
        ctx.emit("refund-authorized", graph=self.graph_digest)

    # -- Algorithm 3, lines 18-23 ------------------------------------------

    def verify_contracts(
        self, ctx: ExecutionContext, evidences: tuple[PublicationEvidence, ...]
    ) -> bool:
        """Validate that every edge has a matching published contract.

        For every edge spec we must find evidence of a deployed
        :class:`PermissionlessSC` whose sender, recipient, asset, and
        blockchain match the edge, and whose redeem/refund is conditioned
        on *this* witness contract.  Evidence authentication uses the
        chain's validator registry when available (full-replica or light
        nodes, Section 4.3) and otherwise the relay anchors stored at
        registration.
        """
        by_chain: dict[str, list[PublicationEvidence]] = {}
        for evidence in evidences:
            by_chain.setdefault(evidence.chain_id, []).append(evidence)

        for spec in self.edge_specs:
            if not self._edge_satisfied(ctx, spec, by_chain.get(spec.chain_id, [])):
                return False
        return True

    def _edge_satisfied(
        self,
        ctx: ExecutionContext,
        spec: EdgeSpec,
        candidates: list[PublicationEvidence],
    ) -> bool:
        for evidence in candidates:
            deploy = self._authenticate(ctx, evidence, spec.min_depth)
            if deploy is None:
                continue
            if self._deploy_matches_spec(deploy, spec):
                return True
        return False

    def _authenticate(
        self,
        ctx: ExecutionContext,
        evidence: PublicationEvidence,
        min_depth: int,
    ) -> DeployMessage | None:
        if ctx.validators is not None:
            return ctx.validators.validate_publication(evidence, min_depth)
        anchor = self.anchors.get(evidence.chain_id)
        if anchor is None:
            return None
        try:
            return verify_publication_evidence(evidence, anchor, min_depth)
        except EvidenceError:
            return None

    def _deploy_matches_spec(self, deploy: DeployMessage, spec: EdgeSpec) -> bool:
        if deploy.contract_class != PERMISSIONLESS_CONTRACT_CLASS:
            return False
        if deploy.value != spec.amount:
            return False
        if deploy.sender.address().raw != spec.sender_raw:
            return False
        args = deploy.args
        # PermissionlessSC constructor signature:
        # (recipient_raw, witness_chain_id, witness_contract_id, depth, anchor)
        if len(args) < 3:
            return False
        if args[0] != spec.recipient_raw:
            return False
        if args[2] != self.contract_id:
            return False
        return True


@register_contract
class PermissionlessSC(AtomicSwapContract):
    """Algorithm 4: an asset-chain contract conditioned on ``SCw``.

    Both the redemption and the refund commitment schemes are the pair
    ``(SCw, d)``: evidence that ``SCw``'s state is ``RDauth`` (redeem) or
    ``RFauth`` (refund) in a witness-chain block buried under at least
    ``d`` blocks.
    """

    CLASS_NAME = PERMISSIONLESS_CONTRACT_CLASS

    def constructor(
        self,
        ctx: ExecutionContext,
        recipient_raw: bytes,
        witness_chain_id: str,
        witness_contract_id: bytes,
        witness_min_depth: int,
        witness_anchor: BlockHeader,
    ) -> None:
        super().constructor(ctx, recipient_raw)
        requires(witness_min_depth >= 1, "witness depth must be at least 1")
        self.witness_chain_id = witness_chain_id
        self.witness_contract_id = witness_contract_id
        self.witness_min_depth = witness_min_depth
        self.witness_anchor = witness_anchor

    # -- Algorithm 4, lines 6-17 -----------------------------------------------

    def is_redeemable(self, ctx: ExecutionContext, secret: Any) -> bool:
        return self._witness_state_proven(ctx, secret, WitnessState.REDEEM_AUTHORIZED)

    def is_refundable(self, ctx: ExecutionContext, secret: Any) -> bool:
        return self._witness_state_proven(ctx, secret, WitnessState.REFUND_AUTHORIZED)

    def _witness_state_proven(
        self, ctx: ExecutionContext, evidence: Any, required_state: str
    ) -> bool:
        if not isinstance(evidence, StateEvidence):
            return False
        if evidence.chain_id != self.witness_chain_id:
            return False
        if evidence.contract_id != self.witness_contract_id:
            return False
        if evidence.state != required_state:
            return False
        if ctx.validators is not None:
            result = ctx.validators.validate_state(evidence, self.witness_min_depth)
        else:
            try:
                result = verify_state_evidence(
                    evidence, self.witness_anchor, self.witness_min_depth
                )
            except EvidenceError:
                return False
        return result == (self.witness_contract_id, required_state)


# ---------------------------------------------------------------------------
# Protocol driver
# ---------------------------------------------------------------------------


@dataclass
class AC3WNConfig:
    """Tunables of one AC3WN execution.

    Attributes:
        witness_chain_id: which chain coordinates this AC2T (Section 5.2:
            any permissionless chain can serve; pick per transaction).
        registrar: participant who registers ``SCw`` (default: first
            alive participant in name order).
        decliners: participants who refuse to publish their contracts
            (maliciousness / change of mind — triggers the abort path).
        omit_signers: participants who withhold their signature from
            ``ms(D)`` (Byzantine equivocation) — the witness contract's
            registration validity check rejects the incomplete
            multisignature on-chain, so the AC2T never starts.
        deploy_timeout: seconds after ``SCw`` confirmation before an
            alive participant gives up and requests ``RFauth``.
        settle_timeout: seconds to keep polling for settlements after the
            decision (recovered participants settle late here).
        poll_interval: driver polling granularity (default: a quarter of
            the fastest involved chain's block interval).
    """

    witness_chain_id: str
    registrar: str | None = None
    decliners: frozenset[str] = frozenset()
    omit_signers: frozenset[str] = frozenset()
    deploy_timeout: float | None = None
    settle_timeout: float | None = None
    poll_interval: float | None = None


class AC3WNDriver(ProtocolDriver):
    """Executes one AC2T end-to-end with the AC3WN protocol.

    The driver plays every participant's honest strategy, respecting
    crash state (a crashed participant takes no action until recovery)
    and the configured decliners.  It is a non-blocking state machine
    whose phases mirror the paper's four Δ-phases: *scw-wait* (SCw
    confirmation), *deploy* (parallel asset contracts), *decision-wait*
    (the SCw flip confirming), and *settle* (parallel redemptions or
    refunds).
    """

    protocol_name = "ac3wn"

    def __init__(
        self,
        env: SwapEnvironment,
        graph: SwapGraph,
        config: AC3WNConfig,
        eager: bool = True,
        fee_budget=None,
        jitter_span: float | None = None,
    ) -> None:
        if config.witness_chain_id not in env.chains:
            raise ProtocolError(f"unknown witness chain {config.witness_chain_id!r}")
        self.config = config
        super().__init__(
            env,
            graph,
            poll_interval=config.poll_interval,
            extra_chain_ids=(config.witness_chain_id,),
            eager=eager,
            fee_budget=fee_budget,
            jitter_span=jitter_span,
        )
        self.witness_chain = env.chain(config.witness_chain_id)
        self._scw_deploy: DeployMessage | None = None
        self._scw_id: bytes = b""
        self._anchors: dict[str, BlockHeader] = {}
        self._witness_anchor: BlockHeader | None = None
        self._decision_call: CallMessage | None = None
        self._phase = "scw-wait"
        self._witness_timeout = 0.0
        self._deploy_timeout = 0.0
        self._settle_timeout = 0.0
        self._scw_deadline = 0.0
        self._deploy_deadline = 0.0
        self._decision_deadline = 0.0
        self._decided_state: str | None = None
        self._decision_retried = False
        self._decision_intent: str | None = None

    # -- small helpers -----------------------------------------------------

    def _alive(self, name: str) -> bool:
        return not self.env.participant(name).crashed

    def _first_alive(self) -> str | None:
        """First alive participant *of this AC2T* in name order.

        Scoped to the swap's graph (not the whole environment) so that
        engine runs with hundreds of co-hosted swaps stay isolated.
        """
        for name in self.graph.participant_names():
            if self._alive(name):
                return name
        return None

    # -- phase 1: register SCw ------------------------------------------------

    def _register_witness_contract(self) -> bool:
        registrar_name = self.config.registrar or self._first_alive()
        if registrar_name is None or not self._alive(registrar_name):
            self.outcome.notes.append("no alive registrar; AC2T never started")
            return False
        registrar = self.env.participant(registrar_name)

        keypairs = self.env.keypairs()
        if self.config.omit_signers:
            # Byzantine withholding: the missing signatures make ms(D)
            # incomplete, which the witness contract's registration
            # validity check rejects when the deploy executes on-chain.
            ms = multisign(
                [
                    keypairs[name]
                    for name in self.graph.participant_names()
                    if name not in self.config.omit_signers
                ],
                GRAPH_SIGNING_DOMAIN,
                self.graph.payload(),
            )
        else:
            ms = self.graph.multisign(keypairs)
        specs = tuple(
            EdgeSpec(
                chain_id=edge.chain_id,
                sender_raw=self._address_of(edge.source).raw,
                recipient_raw=self._address_of(edge.recipient).raw,
                amount=edge.amount,
                min_depth=self.env.chain(edge.chain_id).params.confirmation_depth,
            )
            for edge in self.graph.edges
        )
        # Record relay anchors: current stable headers of every asset chain.
        self._anchors = {
            chain_id: self.env.chain(chain_id).stable_header()
            for chain_id in self.graph.chains_used()
        }
        keys = tuple(key.to_bytes() for _, key in self.graph.participants)
        if not self._fee_ok(self.config.witness_chain_id, "deploy"):
            self.outcome.notes.append("fee budget cannot cover SCw registration")
            return False
        try:
            deploy = registrar.deploy_contract(
                self.config.witness_chain_id,
                WITNESS_CONTRACT_CLASS,
                args=(keys, ms, self.graph.digest(), specs, tuple(sorted(self._anchors.items()))),
                fee=self._fee_for(self.config.witness_chain_id, "deploy"),
            )
        except FeeTooLowError:
            # The congested witness chain refused the registration at
            # our price: this swap never starts (priced out at the door).
            self.outcome.priced_out = True
            self.outcome.notes.append("SCw registration outbid on the witness chain")
            return False
        self._scw_deploy = deploy
        self._scw_id = deploy.contract_id()
        self.outcome.coordinator_contract_id = self._scw_id
        self._track(
            self.config.witness_chain_id,
            deploy,
            sender=registrar_name,
            on_replace=self._replace_scw,
        )
        return True

    def _replace_scw(self, new: DeployMessage) -> None:
        """Repoint the swap at a fee-bumped SCw registration.

        Only reachable while SCw is unconfirmed (phase "scw-wait"), i.e.
        before any asset contract captured the old SCw id."""
        self._scw_deploy = new
        self._scw_id = new.contract_id()
        self.outcome.coordinator_contract_id = self._scw_id

    # -- phase 2: parallel asset-contract deployment ------------------------------

    def _try_deploy_edges(self) -> None:
        """Attempt every still-missing deployment whose source is alive."""
        for edge in self.graph.edges:
            key = edge_key(edge)
            if key in self._deploys:
                continue
            if edge.source in self.config.decliners:
                continue
            participant = self.env.participant(edge.source)
            if participant.crashed:
                continue
            if not self._fee_ok(edge.chain_id, "deploy"):
                continue  # priced out of publishing
            try:
                deploy = participant.deploy_contract(
                    edge.chain_id,
                    PERMISSIONLESS_CONTRACT_CLASS,
                    args=(
                        self._address_of(edge.recipient).raw,
                        self.config.witness_chain_id,
                        self._scw_id,
                        self.witness_chain.params.confirmation_depth,
                        self._witness_anchor,
                    ),
                    value=edge.amount,
                    fee=self._fee_for(edge.chain_id, "deploy"),
                )
            except InsufficientFundsError:
                continue  # change is in flight; retry next tick
            except FeeTooLowError:
                self._raise_rate_floor(edge.chain_id)
                continue  # outbid at submission; retry at a higher rate
            self._deploys[key] = deploy
            record = self.outcome.contracts[key]
            record.contract_id = deploy.contract_id()
            record.deploy_message_id = deploy.message_id()
            record.deployed_at = self.sim.now
            self._track(
                edge.chain_id,
                deploy,
                sender=edge.source,
                on_replace=lambda new, key=key: self._replace_deploy(key, new),
            )

    # -- phase 3: decision -----------------------------------------------------

    def _submit_redeem_authorization(self) -> bool:
        self._decision_intent = "redeem"
        submitter_name = self._first_alive()
        if submitter_name is None:
            return False
        submitter = self.env.participant(submitter_name)
        # The witness chain's miners are the verifiers of these evidences;
        # skip the header runs entirely when they won't read them.
        include_headers = headers_required(self.witness_chain.validators)
        evidences = tuple(
            build_publication_evidence(
                self.env.chain(edge.chain_id),
                self._deploys[edge_key(edge)],
                anchor=self._anchors[edge.chain_id],
                include_headers=include_headers,
            )
            for edge in self.graph.edges
        )
        if not self._fee_ok(self.config.witness_chain_id, "call"):
            return False
        try:
            call = submitter.call_contract(
                self.config.witness_chain_id,
                self._scw_id,
                "authorize_redeem",
                args=(evidences,),
                fee=self._fee_for(self.config.witness_chain_id, "call"),
            )
        except FeeTooLowError:
            self._raise_rate_floor(self.config.witness_chain_id)
            return False  # decision-wait retries at the higher rate
        self._decision_call = call
        self._track(
            self.config.witness_chain_id,
            call,
            sender=submitter_name,
            on_replace=self._replace_decision_call,
        )
        return True

    def _replace_decision_call(self, new: CallMessage) -> None:
        self._decision_call = new

    def _submit_refund_authorization(self) -> bool:
        self._decision_intent = "refund"
        submitter_name = self._first_alive()
        if submitter_name is None:
            return False
        submitter = self.env.participant(submitter_name)
        if not self._fee_ok(self.config.witness_chain_id, "call"):
            return False
        try:
            call = submitter.call_contract(
                self.config.witness_chain_id,
                self._scw_id,
                "authorize_refund",
                args=(),
                fee=self._fee_for(self.config.witness_chain_id, "call"),
            )
        except FeeTooLowError:
            self._raise_rate_floor(self.config.witness_chain_id)
            return False  # decision-wait retries at the higher rate
        self._decision_call = call
        self._track(
            self.config.witness_chain_id,
            call,
            sender=submitter_name,
            on_replace=self._replace_decision_call,
        )
        return True

    def _decision_confirmed(self) -> bool:
        if self._decision_call is None:
            return False
        message_id = self._decision_call.message_id()
        depth = self.witness_chain.message_depth(message_id)
        if depth < self.witness_chain.params.confirmation_depth:
            return False
        receipt = self.witness_chain.receipt(message_id)
        return receipt is not None

    # -- phase 4: settlement -------------------------------------------------------

    def _try_settle(self, state_name: str) -> None:
        """Attempt redeem (on commit) or refund (on abort) for each contract."""
        function = "redeem" if state_name == WitnessState.REDEEM_AUTHORIZED else "refund"
        # Every edge proves the same witness-chain fact, and the witness
        # chain does not advance inside this loop, so one evidence per
        # header-inclusion variant is built lazily and shared across edges.
        evidence_variants: dict[bool, StateEvidence] = {}
        for edge in self.graph.edges:
            key = edge_key(edge)
            if key in self._settle_calls or key not in self._deploys:
                continue
            actor_name = edge.recipient if function == "redeem" else edge.source
            actor = self.env.participant(actor_name)
            if actor.crashed:
                continue
            include_headers = headers_required(self.env.chain(edge.chain_id).validators)
            evidence = evidence_variants.get(include_headers)
            if evidence is None:
                evidence = build_state_evidence(
                    self.witness_chain,
                    self._scw_id,
                    self._decision_call,
                    state_name,
                    anchor=self._witness_anchor,
                    include_headers=include_headers,
                )
                evidence_variants[include_headers] = evidence
            deploy = self._deploys[key]
            if not self._fee_ok(edge.chain_id, "call"):
                continue
            try:
                call = actor.call_contract(
                    edge.chain_id,
                    deploy.contract_id(),
                    function,
                    args=(evidence,),
                    fee=self._fee_for(edge.chain_id, "call"),
                )
            except InsufficientFundsError:
                continue  # retry next tick
            except FeeTooLowError:
                self._raise_rate_floor(edge.chain_id)
                continue  # outbid at submission; retry at a higher rate
            self._settle_calls[key] = call
            self._track(
                edge.chain_id,
                call,
                sender=actor_name,
                on_replace=lambda new, key=key: self._replace_settle_call(key, new),
            )

    def _settle_step(self) -> None:
        self._try_settle(self._decided_state)

    def _published_count(self) -> int:
        return len(self._deploys)

    # -- the protocol (state machine) ---------------------------------------------------

    def _begin(self) -> None:
        self.outcome.phase_times["start"] = self.sim.now
        delta = self._max_delta()
        witness_delta = self._chain_delta(self.config.witness_chain_id)
        self._deploy_timeout = self.config.deploy_timeout or 4.0 * delta
        self._settle_timeout = self.config.settle_timeout or 4.0 * delta
        # Witness-chain waits honour the configured deploy timeout too:
        # a congested witness chain may take far longer than 4Δ to
        # include coordination messages (Section 5.2's bottleneck case).
        self._witness_timeout = max(4.0 * witness_delta, self._deploy_timeout)

        # Phase 1: register SCw on the witness network.
        if not self._register_witness_contract():
            self.outcome.decision = "undecided"
            self._finish()
            return
        self._phase = "scw-wait"
        self._scw_deadline = self.sim.now + self._witness_timeout

    def _advance(self) -> None:
        if self._phase == "scw-wait":
            self._advance_scw_wait()
        elif self._phase == "deploy":
            self._advance_deploy()
        elif self._phase == "decision-wait":
            self._advance_decision_wait()
        elif self._phase == "settle":
            self._advance_settle()

    def _advance_scw_wait(self) -> None:
        scw_message = self._scw_deploy.message_id()
        confirmed = (
            self.witness_chain.message_depth(scw_message)
            >= self.witness_chain.params.confirmation_depth
        )
        if confirmed:
            self.outcome.phase_times["scw_confirmed"] = self.sim.now
            # Asset contracts reference the witness anchor as of SCw
            # confirmation.
            self._witness_anchor = self.witness_chain.stable_header()
            self._set_phase("deploy")
            self._deploy_deadline = self.sim.now + self._deploy_timeout
            self._advance_deploy()
            return
        if self.sim.now >= self._scw_deadline:
            self.outcome.notes.append("SCw never confirmed")
            self.outcome.decision = "undecided"
            self._finish()
            return
        self._schedule_tick(self._scw_deadline)

    # Phase 2: all participants deploy their contracts in parallel.
    def _advance_deploy(self) -> None:
        all_published = self._all_confirmed()
        if all_published or self.sim.now >= self._deploy_deadline:
            self.outcome.phase_times["contracts_deployed"] = self.sim.now
            # Phase 3: flip SCw (commit if everything confirmed, abort
            # otherwise).
            if all_published:
                self._submit_redeem_authorization()
            else:
                self.outcome.notes.append(
                    f"only {self._published_count()}/{self.graph.num_contracts} "
                    f"contracts confirmed before the deadline; aborting"
                )
                self._submit_refund_authorization()
            self._set_phase("decision-wait")
            self._decision_deadline = self.sim.now + self._witness_timeout
            self._advance_decision_wait()
            return
        self._try_deploy_edges()
        self._schedule_tick(self._deploy_deadline)

    def _advance_decision_wait(self) -> None:
        if self._decision_call is None and self._decision_intent is not None:
            # An earlier authorization attempt was outbid at submission;
            # keep chasing the market until the deadline passes.
            if self._decision_intent == "redeem":
                self._submit_redeem_authorization()
            else:
                self._submit_refund_authorization()
        if self._decision_confirmed():
            receipt = self.witness_chain.receipt(self._decision_call.message_id())
            if receipt.status != "ok" and not self._decision_retried:
                # The authorize_redeem was rejected (e.g. stale evidence);
                # fall back to the abort path.  The stale reverted call
                # must not be mistaken for a decision.
                self._decision_retried = True
                self._decision_call = None
                self.outcome.notes.append(f"authorization reverted: {receipt.error}")
                if not self._submit_refund_authorization() and self._first_alive() is None:
                    # No alive participant can ever flip SCw; anything
                    # else (a momentary fee-market rejection) is retried
                    # by the resubmit machinery above until the deadline.
                    self.outcome.decision = "undecided"
                    self._finish()
                    return
                self._decision_deadline = self.sim.now + self._witness_timeout
                self._schedule_tick(self._decision_deadline)
                return
            self._decided_state = (
                WitnessState.REDEEM_AUTHORIZED
                if self._decision_call.function == "authorize_redeem"
                else WitnessState.REFUND_AUTHORIZED
            )
            self.outcome.decision = (
                "commit"
                if self._decided_state == WitnessState.REDEEM_AUTHORIZED
                else "abort"
            )
            self.outcome.phase_times["decision"] = self.sim.now
            # Phase 4: parallel settlement (redeem on commit, refund on
            # abort).
            self._enter_settle_phase(self._settle_timeout)
            return
        if self.sim.now >= self._decision_deadline:
            if not self._decision_retried:
                self.outcome.notes.append("decision call never confirmed")
            self.outcome.decision = "undecided"
            self._finish()
            return
        self._schedule_tick(self._decision_deadline)


def run_ac3wn(
    env: SwapEnvironment, graph: SwapGraph, witness_chain_id: str, **config_kwargs
) -> SwapOutcome:
    """Convenience wrapper: configure and run one AC3WN execution."""
    config = AC3WNConfig(witness_chain_id=witness_chain_id, **config_kwargs)
    return AC3WNDriver(env, graph, config).run()
