"""Commitment-scheme primitives (Section 3 of the paper).

An atomic cross-chain commitment protocol equips every smart contract with
two *mutually exclusive* commitment-scheme instances: a redemption scheme
and a refund scheme.  Revealing the secret of one instance must preclude
ever revealing the secret of the other.  The paper instantiates the
abstraction three ways, and so do we:

* :class:`HashlockCommitment` — ``h = H(s)`` hashlocks, used by the
  Nolan/Herlihy HTLC baselines.  (Mutual exclusion is *not* structural
  here; it is enforced only by timelocks, which is exactly the weakness
  the paper attacks.)
* :class:`SignatureCommitment` — Trent's signature over ``(ms(D), RD)`` or
  ``(ms(D), RF)`` in AC3TW (Algorithm 2); Trent's key/value store makes
  the two signatures mutually exclusive.
* :class:`ContractStateCommitment` — the witness contract's ``RDauth`` /
  ``RFauth`` states in AC3WN (Algorithm 4); the witness network's
  longest-chain rule makes the states mutually exclusive.  The "secret"
  here is *evidence* about the witness chain, validated by the pluggable
  validators of Section 4.3 (see :mod:`repro.core.evidence`).
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any

from .ecdsa import EcdsaSignature
from .hashing import tagged_hash, verify_hashlock
from .keys import KeyPair, PublicKey


class CommitmentPurpose(enum.Enum):
    """Which action a commitment-scheme instance authorizes."""

    REDEEM = "RD"
    REFUND = "RF"


class CommitmentScheme(ABC):
    """A lock whose opening requires a purpose-specific secret."""

    @abstractmethod
    def verify(self, secret: Any) -> bool:
        """Return True iff ``secret`` opens this commitment."""


@dataclass(frozen=True)
class HashlockCommitment(CommitmentScheme):
    """A hashlock ``h = H(s)``; the secret is the preimage ``s``."""

    lock: bytes

    def to_wire(self):
        return {"type": "hashlock", "lock": self.lock}

    def verify(self, secret: Any) -> bool:
        if not isinstance(secret, (bytes, bytearray)):
            return False
        return verify_hashlock(self.lock, bytes(secret))

    @classmethod
    def from_secret(cls, secret: bytes) -> "HashlockCommitment":
        from .hashing import hashlock

        return cls(hashlock(secret))


def witness_statement_digest(ms_id: bytes, purpose: CommitmentPurpose) -> bytes:
    """Digest of the statement ``(ms(D), RD)`` or ``(ms(D), RF)``.

    This is what Trent signs in AC3TW: his signature over this digest is
    the commitment-scheme secret.
    """
    return tagged_hash("repro/witness-statement", ms_id + purpose.value.encode())


@dataclass(frozen=True)
class SignatureCommitment(CommitmentScheme):
    """AC3TW commitment: the pair ``(ms(D), PK_T)`` (Algorithm 2).

    The secret is Trent's signature ``T(ms(D), RD)`` or ``T(ms(D), RF)``.
    ``verify`` implements the paper's ``SigVerify`` helper.
    """

    ms_id: bytes
    witness_key: PublicKey
    purpose: CommitmentPurpose

    def to_wire(self):
        return {
            "type": "signature",
            "ms_id": self.ms_id,
            "witness_key": self.witness_key.to_bytes(),
            "purpose": self.purpose.value,
        }

    def statement_digest(self) -> bytes:
        return witness_statement_digest(self.ms_id, self.purpose)

    def verify(self, secret: Any) -> bool:
        if not isinstance(secret, EcdsaSignature):
            return False
        return self.witness_key.verify(self.statement_digest(), secret)

    def sign_with(self, witness_keypair: KeyPair) -> EcdsaSignature:
        """Produce the commitment secret (used only by Trent himself)."""
        return witness_keypair.sign(self.statement_digest())


@dataclass(frozen=True)
class ContractStateCommitment(CommitmentScheme):
    """AC3WN commitment: ``(SCw, d)`` — a witness contract plus min depth.

    The "secret" is :class:`~repro.core.evidence.StateEvidence` showing the
    witness contract reached the required state in a block buried at depth
    ``>= min_depth`` on the witness chain.  Validation is delegated to a
    validator object (Section 4.3) at verification time, so this class
    only records *what* must be proven; the asset-chain contract supplies
    the validator when it evaluates IsRedeemable / IsRefundable.
    """

    witness_chain_id: str
    witness_contract_id: bytes
    required_state: str
    min_depth: int

    def to_wire(self):
        return {
            "type": "contract-state",
            "chain_id": self.witness_chain_id,
            "contract_id": self.witness_contract_id,
            "state": self.required_state,
            "min_depth": self.min_depth,
        }

    def verify(self, secret: Any) -> bool:
        """Structural check only; full validation needs a chain validator.

        The contract runtime calls
        :meth:`repro.core.evidence.EvidenceValidator.validate_state` with
        this commitment and the submitted evidence; ``verify`` here checks
        that the evidence at least *claims* the right contract and state,
        so unit code can reason about the commitment in isolation.
        """
        claims = getattr(secret, "claims", None)
        if claims is None:
            return False
        return (
            claims.get("chain_id") == self.witness_chain_id
            and claims.get("contract_id") == self.witness_contract_id
            and claims.get("state") == self.required_state
        )
