"""Key-pair and address abstractions on top of the raw curve arithmetic.

End-users in the paper's application layer are identified by their public
keys, and their digital signatures are "the end-users' way to generate
transactions" (Section 2.1).  :class:`KeyPair` bundles the private scalar
with its public point; :class:`Address` is the short identity derived by
hashing the public key, used as the owner field of assets and contracts.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..errors import InvalidKeyError
from . import ecdsa
from .hashing import sha256, tagged_hash

# ---------------------------------------------------------------------------
# ECDSA verification memo
# ---------------------------------------------------------------------------
#
# A chain message's signature is re-verified at every state application:
# the miner's template trial-apply, the block connect, and every fork
# trial repeat the exact same double-scalar multiplication (~9 ms each).
# The verdict is a pure function of (public point, digest, signature), so
# it is memoized content-keyed and bounded, same idiom as the
# multisignature memo in :mod:`repro.crypto.signatures`.

_VERIFY_CACHE: "OrderedDict[tuple, bool]" = OrderedDict()
_VERIFY_CACHE_MAX = 8192
_verify_cache_hits = 0
_verify_cache_misses = 0


def verify_cache_info() -> dict:
    """Hit/miss counters of the ``PublicKey.verify`` memo."""
    return {
        "hits": _verify_cache_hits,
        "misses": _verify_cache_misses,
        "size": len(_VERIFY_CACHE),
    }


def clear_verify_cache() -> None:
    """Empty the memo and reset its counters (tests, benchmarks)."""
    global _verify_cache_hits, _verify_cache_misses
    _VERIFY_CACHE.clear()
    _verify_cache_hits = 0
    _verify_cache_misses = 0


@dataclass(frozen=True)
class PublicKey:
    """An secp256k1 public key (end-user identity)."""

    point: ecdsa.Point

    def __post_init__(self) -> None:
        if self.point.is_infinity or not ecdsa.is_on_curve(self.point):
            raise InvalidKeyError("public key point must be on the curve")

    def to_bytes(self) -> bytes:
        """SEC1 compressed encoding."""
        encoded = self.__dict__.get("_bytes")
        if encoded is None:
            encoded = ecdsa.compress_point(self.point)
            object.__setattr__(self, "_bytes", encoded)
        return encoded

    def to_wire(self):
        return {"pubkey": self.to_bytes()}

    @classmethod
    def from_bytes(cls, data: bytes) -> "PublicKey":
        return cls(ecdsa.decompress_point(data))

    def address(self) -> "Address":
        """Derive the address (hash of the compressed public key)."""
        address = self.__dict__.get("_address")
        if address is None:
            address = Address(tagged_hash("repro/address", self.to_bytes())[:20])
            object.__setattr__(self, "_address", address)
        return address

    def verify(self, digest: bytes, signature: ecdsa.EcdsaSignature) -> bool:
        """Verify a signature over a 32-byte digest (memoized)."""
        global _verify_cache_hits, _verify_cache_misses
        key = (self.point.x, self.point.y, digest, signature.r, signature.s)
        cached = _VERIFY_CACHE.get(key)
        if cached is not None:
            _verify_cache_hits += 1
            _VERIFY_CACHE.move_to_end(key)
            return cached
        _verify_cache_misses += 1
        result = ecdsa.verify_digest(self.point, digest, signature)
        _VERIFY_CACHE[key] = result
        while len(_VERIFY_CACHE) > _VERIFY_CACHE_MAX:
            _VERIFY_CACHE.popitem(last=False)
        return result

    def __repr__(self) -> str:
        return f"PublicKey({self.to_bytes().hex()[:16]}…)"


@dataclass(frozen=True)
class Address:
    """A 20-byte identity derived from a public key.

    Assets and smart contracts record their owner / sender / recipient as
    addresses, mirroring how Bitcoin and Ethereum identify parties.
    """

    raw: bytes

    def __post_init__(self) -> None:
        if len(self.raw) != 20:
            raise InvalidKeyError("address must be 20 bytes")

    def hex(self) -> str:
        return self.raw.hex()

    def to_wire(self):
        return {"address": self.raw}

    def __str__(self) -> str:
        return self.hex()[:12]

    def __repr__(self) -> str:
        return f"Address({self.hex()[:12]}…)"


@dataclass(frozen=True)
class KeyPair:
    """A private scalar plus its derived public key.

    Use :meth:`from_seed` for deterministic, reproducible identities in
    simulations, or :meth:`generate` with an RNG-provided scalar.
    """

    private_scalar: int
    public_key: PublicKey

    @classmethod
    def from_scalar(cls, private_scalar: int) -> "KeyPair":
        ecdsa.validate_private_scalar(private_scalar)
        return cls(private_scalar, PublicKey(ecdsa.derive_public_point(private_scalar)))

    @classmethod
    def from_seed(cls, seed: bytes | str) -> "KeyPair":
        """Derive a key pair deterministically from an arbitrary seed."""
        if isinstance(seed, str):
            seed = seed.encode("utf-8")
        counter = 0
        while True:
            digest = sha256(seed + counter.to_bytes(4, "big"))
            scalar = int.from_bytes(digest, "big")
            if 1 <= scalar < ecdsa.N:
                return cls.from_scalar(scalar)
            counter += 1

    @property
    def address(self) -> Address:
        return self.public_key.address()

    def sign(self, digest: bytes) -> ecdsa.EcdsaSignature:
        """Sign a 32-byte digest with the private scalar."""
        return ecdsa.sign_digest(self.private_scalar, digest)

    def __repr__(self) -> str:
        return f"KeyPair(address={self.address})"
