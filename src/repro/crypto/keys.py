"""Key-pair and address abstractions on top of the raw curve arithmetic.

End-users in the paper's application layer are identified by their public
keys, and their digital signatures are "the end-users' way to generate
transactions" (Section 2.1).  :class:`KeyPair` bundles the private scalar
with its public point; :class:`Address` is the short identity derived by
hashing the public key, used as the owner field of assets and contracts.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import InvalidKeyError
from . import ecdsa
from .hashing import sha256, tagged_hash


@dataclass(frozen=True)
class PublicKey:
    """An secp256k1 public key (end-user identity)."""

    point: ecdsa.Point

    def __post_init__(self) -> None:
        if self.point.is_infinity or not ecdsa.is_on_curve(self.point):
            raise InvalidKeyError("public key point must be on the curve")

    def to_bytes(self) -> bytes:
        """SEC1 compressed encoding."""
        return ecdsa.compress_point(self.point)

    def to_wire(self):
        return {"pubkey": self.to_bytes()}

    @classmethod
    def from_bytes(cls, data: bytes) -> "PublicKey":
        return cls(ecdsa.decompress_point(data))

    def address(self) -> "Address":
        """Derive the address (hash of the compressed public key)."""
        return Address(tagged_hash("repro/address", self.to_bytes())[:20])

    def verify(self, digest: bytes, signature: ecdsa.EcdsaSignature) -> bool:
        """Verify a signature over a 32-byte digest."""
        return ecdsa.verify_digest(self.point, digest, signature)

    def __repr__(self) -> str:
        return f"PublicKey({self.to_bytes().hex()[:16]}…)"


@dataclass(frozen=True)
class Address:
    """A 20-byte identity derived from a public key.

    Assets and smart contracts record their owner / sender / recipient as
    addresses, mirroring how Bitcoin and Ethereum identify parties.
    """

    raw: bytes

    def __post_init__(self) -> None:
        if len(self.raw) != 20:
            raise InvalidKeyError("address must be 20 bytes")

    def hex(self) -> str:
        return self.raw.hex()

    def to_wire(self):
        return {"address": self.raw}

    def __str__(self) -> str:
        return self.hex()[:12]

    def __repr__(self) -> str:
        return f"Address({self.hex()[:12]}…)"


@dataclass(frozen=True)
class KeyPair:
    """A private scalar plus its derived public key.

    Use :meth:`from_seed` for deterministic, reproducible identities in
    simulations, or :meth:`generate` with an RNG-provided scalar.
    """

    private_scalar: int
    public_key: PublicKey

    @classmethod
    def from_scalar(cls, private_scalar: int) -> "KeyPair":
        ecdsa.validate_private_scalar(private_scalar)
        return cls(private_scalar, PublicKey(ecdsa.derive_public_point(private_scalar)))

    @classmethod
    def from_seed(cls, seed: bytes | str) -> "KeyPair":
        """Derive a key pair deterministically from an arbitrary seed."""
        if isinstance(seed, str):
            seed = seed.encode("utf-8")
        counter = 0
        while True:
            digest = sha256(seed + counter.to_bytes(4, "big"))
            scalar = int.from_bytes(digest, "big")
            if 1 <= scalar < ecdsa.N:
                return cls.from_scalar(scalar)
            counter += 1

    @property
    def address(self) -> Address:
        return self.public_key.address()

    def sign(self, digest: bytes) -> ecdsa.EcdsaSignature:
        """Sign a 32-byte digest with the private scalar."""
        return ecdsa.sign_digest(self.private_scalar, digest)

    def __repr__(self) -> str:
        return f"KeyPair(address={self.address})"
