"""Merkle trees and inclusion proofs.

Block headers commit to their transaction set through a Merkle root
(Section 2.1).  Light clients and the relay-contract validator of
Section 4.3 verify that a transaction occurred in a block by checking a
Merkle *inclusion proof* against the committed root, without downloading
the block body.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import InvalidProofError
from .hashing import hash_concat, sha256

_LEAF_TAG = b"\x00"
_NODE_TAG = b"\x01"


def _leaf_hash(data: bytes) -> bytes:
    """Hash a leaf. Tagged so leaves can never be confused with nodes."""
    return sha256(_LEAF_TAG + data)


def _node_hash(left: bytes, right: bytes) -> bytes:
    """Hash an interior node from its two children."""
    return sha256(_NODE_TAG + hash_concat(left, right))


@dataclass(frozen=True)
class MerkleProof:
    """An inclusion proof for one leaf of a Merkle tree.

    Attributes:
        leaf: the raw leaf payload being proven.
        index: the position of the leaf in the original leaf list.
        siblings: bottom-up list of sibling digests on the path to the root.
        tree_size: number of leaves in the tree the proof was built from.
    """

    leaf: bytes
    index: int
    siblings: tuple[bytes, ...]
    tree_size: int

    def to_wire(self):
        return {
            "leaf": self.leaf,
            "index": self.index,
            "siblings": list(self.siblings),
            "tree_size": self.tree_size,
        }

    def root(self) -> bytes:
        """Recompute the Merkle root implied by this proof."""
        if self.tree_size <= 0:
            raise InvalidProofError("proof over an empty tree")
        if not 0 <= self.index < self.tree_size:
            raise InvalidProofError(
                f"leaf index {self.index} out of range for tree of "
                f"{self.tree_size} leaves"
            )
        digest = _leaf_hash(self.leaf)
        position = self.index
        level_size = self.tree_size
        consumed = 0
        while level_size > 1:
            has_sibling = position % 2 == 0 and position + 1 >= level_size
            if has_sibling:
                # Odd node at the end of a level is promoted unchanged.
                pass
            else:
                if consumed >= len(self.siblings):
                    raise InvalidProofError("proof has too few sibling digests")
                sibling = self.siblings[consumed]
                consumed += 1
                if position % 2 == 0:
                    digest = _node_hash(digest, sibling)
                else:
                    digest = _node_hash(sibling, digest)
            position //= 2
            level_size = (level_size + 1) // 2
        if consumed != len(self.siblings):
            raise InvalidProofError("proof has extra sibling digests")
        return digest

    def verify(self, expected_root: bytes) -> bool:
        """Return True iff this proof binds ``leaf`` to ``expected_root``."""
        try:
            return self.root() == expected_root
        except InvalidProofError:
            return False


@dataclass
class MerkleTree:
    """A Merkle tree over an ordered list of byte-string leaves.

    The tree handles non-power-of-two leaf counts by promoting the odd
    last node of each level (Certificate-Transparency style), which keeps
    proofs unambiguous without duplicating leaves.
    """

    leaves: list[bytes] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.leaves = [bytes(leaf) for leaf in self.leaves]
        self._levels: list[list[bytes]] | None = None

    # -- construction ------------------------------------------------------

    def _build(self) -> list[list[bytes]]:
        if self._levels is not None:
            return self._levels
        if not self.leaves:
            self._levels = [[sha256(b"empty-merkle-tree")]]
            return self._levels
        level = [_leaf_hash(leaf) for leaf in self.leaves]
        levels = [level]
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(_node_hash(level[i], level[i + 1]))
            if len(level) % 2 == 1:
                nxt.append(level[-1])
            levels.append(nxt)
            level = nxt
        self._levels = levels
        return levels

    # -- queries -----------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of leaves."""
        return len(self.leaves)

    def root(self) -> bytes:
        """Return the Merkle root digest."""
        return self._build()[-1][0]

    def proof(self, index: int) -> MerkleProof:
        """Build an inclusion proof for the leaf at ``index``."""
        if not self.leaves:
            raise InvalidProofError("cannot prove inclusion in an empty tree")
        if not 0 <= index < len(self.leaves):
            raise InvalidProofError(
                f"leaf index {index} out of range for {len(self.leaves)} leaves"
            )
        levels = self._build()
        siblings: list[bytes] = []
        position = index
        for level in levels[:-1]:
            if position % 2 == 0:
                if position + 1 < len(level):
                    siblings.append(level[position + 1])
            else:
                siblings.append(level[position - 1])
            position //= 2
        return MerkleProof(
            leaf=self.leaves[index],
            index=index,
            siblings=tuple(siblings),
            tree_size=len(self.leaves),
        )


def merkle_root(leaves: list[bytes]) -> bytes:
    """Convenience: the Merkle root of ``leaves``."""
    return MerkleTree(list(leaves)).root()
