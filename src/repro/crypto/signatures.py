"""Signed messages and the multisignature ``ms(D)``.

Section 4 of the paper has all participants of an AC2T multisign the
transaction graph ``D`` at a timestamp ``t``:

    ms(D) = sig(..., sig((D, t), p1), ..., p|V|)

The order of participant signatures is not important; any order indicates
that all participants agree on ``(D, t)``.  We therefore implement
``ms(D)`` as a *set* of independent signatures over the same canonical
digest, one per participant, which verifies under any ordering.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from ..errors import InvalidSignatureError
from .ecdsa import EcdsaSignature
from .hashing import hash_concat, tagged_hash
from .keys import KeyPair, PublicKey

# ---------------------------------------------------------------------------
# Multisignature verification memo
# ---------------------------------------------------------------------------
#
# Witness contracts re-verify the same ms(D) every time their deploy
# message is applied to a state: the miner's template trial-apply, the
# block connect, and every evidence re-validation all repeat identical
# ECDSA work.  The verdict is a pure function of (digest, signature set,
# required keyset), so it is memoized here; the cache is content-keyed
# (tampering with any byte yields a different key) and bounded.

_VERIFY_CACHE: "OrderedDict[tuple, bool]" = OrderedDict()
_VERIFY_CACHE_MAX = 4096
_verify_cache_hits = 0
_verify_cache_misses = 0


def verify_cache_info() -> dict:
    """Hit/miss counters of the ``Multisignature.verify`` memo."""
    return {
        "hits": _verify_cache_hits,
        "misses": _verify_cache_misses,
        "size": len(_VERIFY_CACHE),
    }


def clear_verify_cache() -> None:
    """Empty the memo and reset its counters (tests, benchmarks)."""
    global _verify_cache_hits, _verify_cache_misses
    _VERIFY_CACHE.clear()
    _verify_cache_hits = 0
    _verify_cache_misses = 0


@dataclass(frozen=True)
class SignedMessage:
    """A message digest signed by a single key."""

    digest: bytes
    signature: EcdsaSignature
    signer: PublicKey

    def verify(self) -> bool:
        """Return True iff the signature is valid for the digest."""
        return self.signer.verify(self.digest, self.signature)

    def to_wire(self):
        return {
            "digest": self.digest,
            "signature": self.signature.to_bytes(),
            "signer": self.signer.to_bytes(),
        }


def sign_payload(keypair: KeyPair, domain: str, payload: bytes) -> SignedMessage:
    """Sign ``payload`` under a domain-separation ``domain`` tag."""
    digest = tagged_hash(domain, payload)
    return SignedMessage(digest, keypair.sign(digest), keypair.public_key)


def verify_payload(message: SignedMessage, domain: str, payload: bytes) -> bool:
    """Verify a :class:`SignedMessage` against the expected payload."""
    digest = tagged_hash(domain, payload)
    return message.digest == digest and message.verify()


@dataclass(frozen=True)
class Multisignature:
    """The multisignature ``ms(D)`` over a payload digest.

    Attributes:
        digest: the canonical digest of ``(D, t)``.
        signatures: one :class:`SignedMessage` per required signer.

    The multisignature is *complete* when every required public key has
    contributed a valid signature over the shared digest.
    """

    digest: bytes
    signatures: tuple[SignedMessage, ...] = field(default_factory=tuple)

    def to_wire(self):
        return {"digest": self.digest, "signatures": list(self.signatures)}

    def id(self) -> bytes:
        """A stable identifier for this multisignature (keying Trent's store).

        The identifier covers only the digest, not the signature bytes, so
        that re-signing the same ``(D, t)`` pair cannot be used to register
        the same AC2T twice (the paper's timestamp ``t`` is what
        distinguishes identical swaps between the same participants).
        """
        return tagged_hash("repro/ms-id", self.digest)

    def signer_addresses(self) -> set[bytes]:
        return {sig.signer.address().raw for sig in self.signatures}

    def with_signature(self, message: SignedMessage) -> "Multisignature":
        """Return a new multisignature including ``message``."""
        if message.digest != self.digest:
            raise InvalidSignatureError(
                "signature is over a different digest than the multisignature"
            )
        return Multisignature(self.digest, self.signatures + (message,))

    def verify(self, required_signers: list[PublicKey]) -> bool:
        """Return True iff every required signer signed the digest validly.

        Signature order is irrelevant, matching the paper's remark that
        "the order of participant signatures in ms(D) is not important".
        The verdict is memoized by (digest, signature set, keyset) —
        see the module-level cache — so repeated validations of the
        same multisigned graph skip the component ECDSA verifications.
        """
        global _verify_cache_hits, _verify_cache_misses
        key = (
            self.digest,
            tuple(
                sorted(
                    (sig.digest, sig.signer.to_bytes(), sig.signature.to_bytes())
                    for sig in self.signatures
                )
            ),
            tuple(sorted(pk.to_bytes() for pk in required_signers)),
        )
        cached = _VERIFY_CACHE.get(key)
        if cached is not None:
            _verify_cache_hits += 1
            _VERIFY_CACHE.move_to_end(key)
            return cached
        _verify_cache_misses += 1
        have = {
            sig.signer.to_bytes()
            for sig in self.signatures
            if sig.digest == self.digest and sig.verify()
        }
        need = {pk.to_bytes() for pk in required_signers}
        result = need <= have
        _VERIFY_CACHE[key] = result
        while len(_VERIFY_CACHE) > _VERIFY_CACHE_MAX:
            _VERIFY_CACHE.popitem(last=False)
        return result


def multisign(keypairs: list[KeyPair], domain: str, payload: bytes) -> Multisignature:
    """Have every keypair sign ``payload``; returns the combined ``ms``."""
    digest = tagged_hash(domain, payload)
    signatures = tuple(
        SignedMessage(digest, kp.sign(digest), kp.public_key) for kp in keypairs
    )
    return Multisignature(digest, signatures)


def combine_payload(*parts: bytes) -> bytes:
    """Canonical, unambiguous byte encoding of multi-part payloads."""
    return hash_concat(*parts)
