"""Hash primitives used across the library.

All hashing in the repo funnels through this module so that the digest
algorithm is swappable in one place.  The paper relies on a cryptographic
one-way hash ``h = H(s)`` both for hashlocks (Section 1) and for chaining
blocks / Merkle trees (Section 2); we use SHA-256 throughout, like Bitcoin.
"""

from __future__ import annotations

import hashlib

DIGEST_SIZE = 32

#: Number of hex characters in a digest rendered with :func:`hex_digest`.
HEX_DIGEST_LENGTH = DIGEST_SIZE * 2


def sha256(data: bytes) -> bytes:
    """Return the SHA-256 digest of ``data``."""
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise TypeError(f"sha256 expects bytes, got {type(data).__name__}")
    return hashlib.sha256(bytes(data)).digest()


def double_sha256(data: bytes) -> bytes:
    """Return SHA-256(SHA-256(data)), the digest Bitcoin uses for block ids."""
    return sha256(sha256(data))


def hash_hex(data: bytes) -> str:
    """Return the SHA-256 digest of ``data`` as a lowercase hex string."""
    return sha256(data).hex()


def hashlock(secret: bytes) -> bytes:
    """Return the hashlock ``h = H(s)`` for a hash secret ``s``.

    A hashlock locks assets in a smart contract until the preimage ``s``
    is revealed (Section 1 of the paper).
    """
    return sha256(secret)


def verify_hashlock(lock: bytes, secret: bytes) -> bool:
    """Return True iff ``H(secret) == lock``."""
    return hashlock(secret) == lock


def hash_concat(*parts: bytes) -> bytes:
    """Hash the length-prefixed concatenation of ``parts``.

    Length prefixes prevent ambiguity attacks where two different part
    sequences concatenate to the same byte string.
    """
    hasher = hashlib.sha256()
    for part in parts:
        if not isinstance(part, (bytes, bytearray, memoryview)):
            raise TypeError(f"hash_concat expects bytes, got {type(part).__name__}")
        hasher.update(len(part).to_bytes(8, "big"))
        hasher.update(bytes(part))
    return hasher.digest()


def hash_str(text: str) -> bytes:
    """Hash a unicode string (UTF-8 encoded)."""
    return sha256(text.encode("utf-8"))


def hash_int(value: int) -> bytes:
    """Hash an arbitrary-size signed integer deterministically."""
    length = max(1, (value.bit_length() + 8) // 8)
    return sha256(value.to_bytes(length, "big", signed=True))


def tagged_hash(tag: str, data: bytes) -> bytes:
    """BIP-340 style tagged hash: SHA256(SHA256(tag) || SHA256(tag) || data).

    Domain separation keeps digests computed for different purposes
    (transaction ids, block ids, signature challenges) from colliding.
    """
    tag_digest = hash_str(tag)
    return sha256(tag_digest + tag_digest + data)
