"""Cryptographic primitives: hashing, Merkle trees, ECDSA, commitments.

Everything the protocols need is implemented from first principles in
pure Python — see the individual modules for details.
"""

from .commitment import (
    CommitmentPurpose,
    CommitmentScheme,
    ContractStateCommitment,
    HashlockCommitment,
    SignatureCommitment,
    witness_statement_digest,
)
from .ecdsa import EcdsaSignature, Point, sign_digest, verify_digest
from .hashing import hash_concat, hash_hex, hashlock, sha256, tagged_hash, verify_hashlock
from .keys import Address, KeyPair, PublicKey
from .merkle import MerkleProof, MerkleTree, merkle_root
from .signatures import (
    Multisignature,
    SignedMessage,
    combine_payload,
    multisign,
    sign_payload,
    verify_payload,
)

__all__ = [
    "Address",
    "CommitmentPurpose",
    "CommitmentScheme",
    "ContractStateCommitment",
    "EcdsaSignature",
    "HashlockCommitment",
    "KeyPair",
    "MerkleProof",
    "MerkleTree",
    "Multisignature",
    "Point",
    "PublicKey",
    "SignatureCommitment",
    "SignedMessage",
    "combine_payload",
    "hash_concat",
    "hash_hex",
    "hashlock",
    "merkle_root",
    "multisign",
    "sha256",
    "sign_digest",
    "sign_payload",
    "tagged_hash",
    "verify_digest",
    "verify_hashlock",
    "verify_payload",
    "witness_statement_digest",
]
