"""Pure-Python ECDSA over secp256k1.

The paper uses digital signatures in three places: end-user transactions
(Section 2.3), Trent's witness signatures that act as commitment-scheme
secrets (Section 4.1), and the participants' multisignature ``ms(D)`` over
the AC2T graph (Section 4).  This module implements the curve arithmetic
and the sign/verify algorithms from first principles — no external crypto
dependency — with deterministic RFC-6979-style nonces so that every run
of the simulator is reproducible.

The implementation favours clarity over speed; signing costs a few
hundred microseconds, which is ample for simulation workloads.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from ..errors import InvalidKeyError, InvalidSignatureError

# secp256k1 domain parameters (the Bitcoin curve): y^2 = x^3 + 7 over F_p.
P = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFC2F
N = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEBAAEDCE6AF48A03BBFD25E8CD0364141
A = 0
B = 7
GX = 0x79BE667EF9DCBBAC55A06295CE870B07029BFCDB2DCE28D959F2815B16F81798
GY = 0x483ADA7726A3C4655DA4FBFC0E1108A8FD17B448A68554199C47D08FFB10D4B8


@dataclass(frozen=True)
class Point:
    """A point on secp256k1 in affine coordinates; ``None`` fields = infinity."""

    x: int | None
    y: int | None

    @property
    def is_infinity(self) -> bool:
        return self.x is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_infinity:
            return "Point(infinity)"
        return f"Point(x={self.x:#x}, y={self.y:#x})"


INFINITY = Point(None, None)
G = Point(GX, GY)


def is_on_curve(point: Point) -> bool:
    """Return True iff ``point`` satisfies the curve equation (or is infinity)."""
    if point.is_infinity:
        return True
    x, y = point.x, point.y
    return (y * y - (x * x * x + A * x + B)) % P == 0


def _inverse_mod(k: int, p: int) -> int:
    """Modular inverse via Python's built-in extended-gcd pow."""
    if k % p == 0:
        raise ZeroDivisionError("inverse of zero")
    return pow(k, -1, p)


def point_add(p1: Point, p2: Point) -> Point:
    """Add two curve points (group law, affine formulas)."""
    if p1.is_infinity:
        return p2
    if p2.is_infinity:
        return p1
    if p1.x == p2.x and (p1.y + p2.y) % P == 0:
        return INFINITY
    if p1.x == p2.x:
        # Point doubling.
        slope = (3 * p1.x * p1.x + A) * _inverse_mod(2 * p1.y, P) % P
    else:
        slope = (p2.y - p1.y) * _inverse_mod(p2.x - p1.x, P) % P
    x3 = (slope * slope - p1.x - p2.x) % P
    y3 = (slope * (p1.x - x3) - p1.y) % P
    return Point(x3, y3)


def point_neg(point: Point) -> Point:
    """Return the additive inverse of a point."""
    if point.is_infinity:
        return INFINITY
    return Point(point.x, (-point.y) % P)


def _jacobian_double(x: int, y: int, z: int) -> tuple[int, int, int]:
    """Double a Jacobian point (X, Y, Z) where x = X/Z², y = Y/Z³."""
    if y == 0:
        return 0, 1, 0  # infinity
    ysq = y * y % P
    s = 4 * x * ysq % P
    m = (3 * x * x + A * pow(z, 4, P)) % P
    nx = (m * m - 2 * s) % P
    ny = (m * (s - nx) - 8 * ysq * ysq) % P
    nz = 2 * y * z % P
    return nx, ny, nz


def _jacobian_add_affine(
    x1: int, y1: int, z1: int, x2: int, y2: int
) -> tuple[int, int, int]:
    """Mixed addition: Jacobian (X1, Y1, Z1) plus affine (x2, y2)."""
    if z1 == 0:
        return x2, y2, 1
    z1sq = z1 * z1 % P
    u2 = x2 * z1sq % P
    s2 = y2 * z1sq * z1 % P
    if u2 == x1:
        if (s2 + y1) % P == 0:
            return 0, 1, 0  # infinity
        return _jacobian_double(x1, y1, z1)
    h = (u2 - x1) % P
    r = (s2 - y1) % P
    hsq = h * h % P
    hcu = hsq * h % P
    v = x1 * hsq % P
    nx = (r * r - hcu - 2 * v) % P
    ny = (r * (v - nx) - y1 * hcu) % P
    nz = h * z1 % P
    return nx, ny, nz


def scalar_mult(k: int, point: Point) -> Point:
    """Compute ``k * point``.

    Uses a left-to-right double-and-add ladder in Jacobian coordinates,
    so the whole multiplication needs exactly one modular inversion (the
    final conversion back to affine) instead of one per group operation —
    the difference between ~20 ms and well under a millisecond per
    multiplication in pure Python, which is what makes simulating
    hundreds of concurrent signature-verifying swaps tractable.
    """
    if k % N == 0 or point.is_infinity:
        return INFINITY
    if k < 0:
        return scalar_mult(-k, point_neg(point))
    ax, ay = point.x, point.y
    jx, jy, jz = 0, 1, 0  # Jacobian infinity
    for shift in range(k.bit_length() - 1, -1, -1):
        if jz:
            jx, jy, jz = _jacobian_double(jx, jy, jz)
        if (k >> shift) & 1:
            jx, jy, jz = _jacobian_add_affine(jx, jy, jz, ax, ay)
    if jz == 0:
        return INFINITY
    zinv = _inverse_mod(jz, P)
    zinv_sq = zinv * zinv % P
    return Point(jx * zinv_sq % P, jy * zinv_sq * zinv % P)


# ---------------------------------------------------------------------------
# Key handling
# ---------------------------------------------------------------------------


def validate_private_scalar(d: int) -> None:
    """Raise :class:`InvalidKeyError` unless ``d`` is a valid private scalar."""
    if not isinstance(d, int) or not 1 <= d < N:
        raise InvalidKeyError("private scalar must satisfy 1 <= d < n")


def derive_public_point(d: int) -> Point:
    """Return the public point ``d * G`` for private scalar ``d``."""
    validate_private_scalar(d)
    return scalar_mult(d, G)


def compress_point(point: Point) -> bytes:
    """SEC1 compressed encoding (33 bytes) of a non-infinity point."""
    if point.is_infinity:
        raise InvalidKeyError("cannot encode the point at infinity")
    prefix = b"\x02" if point.y % 2 == 0 else b"\x03"
    return prefix + point.x.to_bytes(32, "big")


def decompress_point(data: bytes) -> Point:
    """Decode a SEC1 compressed point, validating curve membership."""
    if len(data) != 33 or data[0] not in (2, 3):
        raise InvalidKeyError("malformed compressed point")
    x = int.from_bytes(data[1:], "big")
    if x >= P:
        raise InvalidKeyError("x coordinate out of field range")
    y_squared = (pow(x, 3, P) + A * x + B) % P
    y = pow(y_squared, (P + 1) // 4, P)  # works because P % 4 == 3
    if (y * y) % P != y_squared:
        raise InvalidKeyError("point is not on the curve")
    if (y % 2 == 0) != (data[0] == 2):
        y = P - y
    point = Point(x, y)
    if not is_on_curve(point):
        raise InvalidKeyError("decoded point is not on the curve")
    return point


# ---------------------------------------------------------------------------
# Deterministic nonce (RFC 6979, SHA-256)
# ---------------------------------------------------------------------------


def _bits2int(data: bytes) -> int:
    value = int.from_bytes(data, "big")
    excess = len(data) * 8 - N.bit_length()
    if excess > 0:
        value >>= excess
    return value


def deterministic_nonce(private_scalar: int, digest: bytes) -> int:
    """Derive the RFC-6979 deterministic nonce ``k`` for signing ``digest``."""
    holen = 32
    x = private_scalar.to_bytes(32, "big")
    h1 = _bits2int(digest) % N
    h1_bytes = h1.to_bytes(32, "big")
    v = b"\x01" * holen
    k = b"\x00" * holen
    k = hmac.new(k, v + b"\x00" + x + h1_bytes, hashlib.sha256).digest()
    v = hmac.new(k, v, hashlib.sha256).digest()
    k = hmac.new(k, v + b"\x01" + x + h1_bytes, hashlib.sha256).digest()
    v = hmac.new(k, v, hashlib.sha256).digest()
    while True:
        v = hmac.new(k, v, hashlib.sha256).digest()
        candidate = _bits2int(v)
        if 1 <= candidate < N:
            return candidate
        k = hmac.new(k, v + b"\x00", hashlib.sha256).digest()
        v = hmac.new(k, v, hashlib.sha256).digest()


# ---------------------------------------------------------------------------
# Sign / verify
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EcdsaSignature:
    """An ECDSA signature ``(r, s)`` with low-s normalization applied."""

    r: int
    s: int

    def to_bytes(self) -> bytes:
        """Fixed-width 64-byte encoding (r || s)."""
        return self.r.to_bytes(32, "big") + self.s.to_bytes(32, "big")

    def to_wire(self):
        return {"sig": self.to_bytes()}

    @classmethod
    def from_bytes(cls, data: bytes) -> "EcdsaSignature":
        if len(data) != 64:
            raise InvalidSignatureError("signature must be 64 bytes")
        return cls(int.from_bytes(data[:32], "big"), int.from_bytes(data[32:], "big"))


def sign_digest(private_scalar: int, digest: bytes) -> EcdsaSignature:
    """Sign a 32-byte digest, returning a canonical low-s signature."""
    validate_private_scalar(private_scalar)
    if len(digest) != 32:
        raise InvalidSignatureError("digest must be 32 bytes")
    z = _bits2int(digest) % N
    k = deterministic_nonce(private_scalar, digest)
    while True:
        point = scalar_mult(k, G)
        r = point.x % N
        if r == 0:
            k = (k + 1) % N or 1
            continue
        s = _inverse_mod(k, N) * (z + r * private_scalar) % N
        if s == 0:
            k = (k + 1) % N or 1
            continue
        if s > N // 2:
            s = N - s
        return EcdsaSignature(r, s)


def verify_digest(public_point: Point, digest: bytes, signature: EcdsaSignature) -> bool:
    """Return True iff ``signature`` is valid for ``digest`` under the key."""
    if public_point.is_infinity or not is_on_curve(public_point):
        return False
    if len(digest) != 32:
        return False
    r, s = signature.r, signature.s
    if not (1 <= r < N and 1 <= s < N):
        return False
    z = _bits2int(digest) % N
    w = _inverse_mod(s, N)
    u1 = z * w % N
    u2 = r * w % N
    point = point_add(scalar_mult(u1, G), scalar_mult(u2, public_point))
    if point.is_infinity:
        return False
    return point.x % N == r
