"""The campaign datastore's versioned SQLite schema.

One database holds any number of *campaigns* (sweep runs, benchmark
runs, ingested artifact directories).  Each campaign owns *points* —
one executed (or skipped) experiment each — and every point carries its
flat summary metrics twice: once as an indexed ``metrics`` key/value
table (what ``repro query`` predicates compile against) and once as the
exact row JSON (what results are rendered from), plus the byte-exact
serialized ``ExperimentResult`` artifact in ``artifacts``.

Layout::

    campaigns (1) ──── (N) points
                            ├── (N) metrics    (indexed key/value)
                            └── (1) artifacts  (byte-exact result JSON)

Connections are configured for concurrent multi-process appends, the
mode the distributed-execution road map needs (several workers, one
campaign id):

==================  ========  ==========================================
pragma              value     purpose
==================  ========  ==========================================
``journal_mode``    WAL       concurrent readers during appends
``foreign_keys``    ON        points/metrics/artifacts never orphan
``synchronous``     NORMAL    durability/throughput balance under WAL
``busy_timeout``    30000 ms  writers queue instead of failing fast
==================  ========  ==========================================

The schema is versioned through ``schema_migrations``: every migration
that ever ran is recorded with its version and description, and opening
a database created by a *newer* code version raises
:class:`~repro.errors.StoreError` instead of guessing.
"""

from __future__ import annotations

import sqlite3

from ..errors import StoreError

#: Ordered migrations — ``(description, statements)``; index + 1 is the
#: schema version each produces.  Append-only: never edit a shipped
#: migration, add a new one.  Statements are individual (not a script)
#: so each migration runs inside one explicit transaction.
MIGRATIONS: tuple[tuple[str, tuple[str, ...]], ...] = (
    (
        "initial schema: campaigns, points, metrics, artifacts",
        (
            """
            CREATE TABLE campaigns (
                campaign_id INTEGER PRIMARY KEY AUTOINCREMENT,
                name        TEXT NOT NULL,
                kind        TEXT NOT NULL DEFAULT 'sweep',
                spec_json   TEXT,
                created_at  TEXT NOT NULL
            )
            """,
            "CREATE INDEX idx_campaigns_name ON campaigns(name, campaign_id)",
            """
            CREATE TABLE points (
                point_id    INTEGER PRIMARY KEY AUTOINCREMENT,
                campaign_id INTEGER NOT NULL
                            REFERENCES campaigns(campaign_id) ON DELETE CASCADE,
                point_index INTEGER NOT NULL,
                name        TEXT NOT NULL DEFAULT '',
                status      TEXT NOT NULL DEFAULT 'ok',
                coords_json TEXT NOT NULL DEFAULT '{}',
                seed        INTEGER,
                spec_json   TEXT,
                row_json    TEXT NOT NULL DEFAULT '{}',
                skip_reason TEXT,
                UNIQUE (campaign_id, point_index)
            )
            """,
            """
            CREATE TABLE metrics (
                point_id   INTEGER NOT NULL
                           REFERENCES points(point_id) ON DELETE CASCADE,
                name       TEXT NOT NULL,
                value      REAL,
                text_value TEXT,
                PRIMARY KEY (point_id, name)
            ) WITHOUT ROWID
            """,
            "CREATE INDEX idx_metrics_value ON metrics(name, value)",
            "CREATE INDEX idx_metrics_text  ON metrics(name, text_value)",
            """
            CREATE TABLE artifacts (
                point_id INTEGER PRIMARY KEY
                         REFERENCES points(point_id) ON DELETE CASCADE,
                body     BLOB NOT NULL,
                sha256   TEXT NOT NULL
            )
            """,
        ),
    ),
)

SCHEMA_VERSION = len(MIGRATIONS)


def connect(path: str) -> sqlite3.Connection:
    """Open (creating if needed) a campaign database at ``path``.

    Applies the connection pragmas, creates the ``schema_migrations``
    table, runs any migration the database has not seen yet, and
    rejects databases written by a newer schema version.
    """
    try:
        conn = sqlite3.connect(path, timeout=30.0, isolation_level=None)
    except sqlite3.Error as exc:  # pragma: no cover - e.g. unreadable path
        raise StoreError(f"cannot open campaign database {path!r}: {exc}") from exc
    conn.row_factory = sqlite3.Row
    try:
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA foreign_keys=ON")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute("PRAGMA busy_timeout=30000")
        _migrate(conn, path)
    except StoreError:
        conn.close()
        raise
    except sqlite3.DatabaseError as exc:
        conn.close()
        raise StoreError(f"{path!r} is not a campaign database: {exc}") from exc
    return conn


def schema_version(conn: sqlite3.Connection) -> int:
    """The version the connected database is migrated to."""
    row = conn.execute(
        "SELECT MAX(version) AS version FROM schema_migrations"
    ).fetchone()
    return row["version"] or 0


def _migrate(conn: sqlite3.Connection, path: str) -> None:
    conn.execute(
        """
        CREATE TABLE IF NOT EXISTS schema_migrations (
            version     INTEGER PRIMARY KEY,
            description TEXT NOT NULL,
            applied_at  TEXT NOT NULL
        )
        """
    )
    current = schema_version(conn)
    if current > SCHEMA_VERSION:
        raise StoreError(
            f"campaign database {path!r} is schema version {current}, newer "
            f"than this code's {SCHEMA_VERSION}; upgrade the repro package"
        )
    for version in range(current + 1, SCHEMA_VERSION + 1):
        description, statements = MIGRATIONS[version - 1]
        # BEGIN IMMEDIATE serializes concurrent first-open races: the
        # loser blocks on busy_timeout, then sees the version applied.
        conn.execute("BEGIN IMMEDIATE")
        try:
            if schema_version(conn) >= version:
                conn.execute("ROLLBACK")
                continue
            for statement in statements:
                conn.execute(statement)
            conn.execute(
                "INSERT INTO schema_migrations (version, description, applied_at)"
                " VALUES (?, ?, datetime('now'))",
                (version, description),
            )
            conn.execute("COMMIT")
        except sqlite3.DatabaseError:
            conn.execute("ROLLBACK")
            raise
