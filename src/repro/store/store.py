"""`CampaignStore`: the typed API over the campaign database.

One store holds many campaigns; one campaign holds many points; every
executed point carries its indexed flat metrics and the byte-exact
serialized ``ExperimentResult`` artifact it produced.  The write path
is safe under concurrent multi-process appenders: every append is one
``BEGIN IMMEDIATE`` transaction over a WAL database with a 30 s busy
timeout, so distributed workers (or a local pool) can append points
keyed by a shared campaign id without losing rows.

The store is also the sweep subsystem's durable resume archive:
:meth:`stored_artifact` only returns bytes whose stored spec echo still
matches the freshly expanded point — exactly the validation the
``--resume DIR`` path applies — so editing a sweep invalidates exactly
the stale points, never the whole campaign.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
from dataclasses import dataclass
from typing import Any, Iterable

from ..errors import StoreError
from . import schema

#: Metrics derived at append time from the stored row, so predicates
#: like ``violation_rate > 0`` work without every producer computing
#: them.  Each entry: derived key -> (numerator key, denominator key).
DERIVED_RATES = {
    "violation_rate": ("atomicity_violations", "total"),
}


@dataclass(frozen=True)
class CampaignInfo:
    """One campaign's identity row, plus its point tallies."""

    campaign_id: int
    name: str
    kind: str
    created_at: str
    points: int
    skipped: int

    def to_dict(self) -> dict:
        return {
            "campaign_id": self.campaign_id,
            "name": self.name,
            "kind": self.kind,
            "created_at": self.created_at,
            "points": self.points,
            "skipped": self.skipped,
        }


def _derive_row_metrics(row: dict) -> dict:
    """The stored row: the caller's flat row plus the derived rates."""
    out = dict(row)
    for key, (num, den) in DERIVED_RATES.items():
        if key in out or num not in out or den not in out:
            continue
        try:
            out[key] = out[num] / out[den] if out[den] else 0.0
        except TypeError:
            continue
    return out


class CampaignStore:
    """Open (creating if needed) the campaign database at ``path``.

    Usable as a context manager; every public method is safe to call
    from independent processes holding their own store instance.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._conn: sqlite3.Connection | None = schema.connect(path)

    # -- lifecycle ---------------------------------------------------------

    @property
    def conn(self) -> sqlite3.Connection:
        if self._conn is None:
            raise StoreError(f"campaign store {self.path!r} is closed")
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def schema_version(self) -> int:
        return schema.schema_version(self.conn)

    # -- campaigns ---------------------------------------------------------

    def create_campaign(
        self, name: str, kind: str = "sweep", spec_json: str | None = None
    ) -> int:
        """Always create a new campaign (one per benchmark run, so the
        same name accumulates a perf trajectory of campaigns)."""
        cursor = self.conn.execute(
            "INSERT INTO campaigns (name, kind, spec_json, created_at)"
            " VALUES (?, ?, ?, datetime('now'))",
            (name, kind, spec_json),
        )
        return int(cursor.lastrowid)

    def ensure_campaign(
        self, name: str, kind: str = "sweep", spec_json: str | None = None
    ) -> int:
        """Find the latest campaign named ``name`` of ``kind``, creating
        it if absent — the sweep runner's resume identity.

        The stored sweep-spec echo is refreshed to ``spec_json``; point
        staleness is judged per point (see :meth:`stored_artifact`), so
        an edited sweep invalidates exactly its stale points.
        """
        conn = self.conn
        conn.execute("BEGIN IMMEDIATE")
        try:
            row = conn.execute(
                "SELECT campaign_id FROM campaigns WHERE name = ? AND kind = ?"
                " ORDER BY campaign_id DESC LIMIT 1",
                (name, kind),
            ).fetchone()
            if row is not None:
                campaign_id = int(row["campaign_id"])
                if spec_json is not None:
                    conn.execute(
                        "UPDATE campaigns SET spec_json = ? WHERE campaign_id = ?",
                        (spec_json, campaign_id),
                    )
            else:
                cursor = conn.execute(
                    "INSERT INTO campaigns (name, kind, spec_json, created_at)"
                    " VALUES (?, ?, ?, datetime('now'))",
                    (name, kind, spec_json),
                )
                campaign_id = int(cursor.lastrowid)
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        return campaign_id

    def campaigns(self) -> list[CampaignInfo]:
        """Every campaign, oldest first, with point tallies."""
        rows = self.conn.execute(
            """
            SELECT c.campaign_id, c.name, c.kind, c.created_at,
                   SUM(CASE WHEN p.status = 'ok' THEN 1 ELSE 0 END) AS points,
                   SUM(CASE WHEN p.status = 'skipped' THEN 1 ELSE 0 END) AS skipped
            FROM campaigns c LEFT JOIN points p USING (campaign_id)
            GROUP BY c.campaign_id ORDER BY c.campaign_id
            """
        ).fetchall()
        return [
            CampaignInfo(
                campaign_id=row["campaign_id"],
                name=row["name"],
                kind=row["kind"],
                created_at=row["created_at"],
                points=row["points"] or 0,
                skipped=row["skipped"] or 0,
            )
            for row in rows
        ]

    def campaign_spec_json(self, campaign_id: int) -> str | None:
        row = self.conn.execute(
            "SELECT spec_json FROM campaigns WHERE campaign_id = ?",
            (campaign_id,),
        ).fetchone()
        if row is None:
            raise StoreError(f"no campaign {campaign_id} in {self.path!r}")
        return row["spec_json"]

    def resolve_campaign(self, selector: int | str | None) -> CampaignInfo:
        """A campaign by id, by name (latest wins), or the latest overall.

        ``selector`` may be an integer id, a decimal-string id, a
        campaign name, or None (the most recently created campaign).
        """
        campaigns = self.campaigns()
        if not campaigns:
            raise StoreError(f"{self.path!r} holds no campaigns")
        if selector is None:
            return campaigns[-1]
        if isinstance(selector, int) or (
            isinstance(selector, str) and selector.isdigit()
        ):
            wanted = int(selector)
            for info in campaigns:
                if info.campaign_id == wanted:
                    return info
            raise StoreError(
                f"no campaign {wanted} in {self.path!r}; ids: "
                f"{[c.campaign_id for c in campaigns]}"
            )
        named = [info for info in campaigns if info.name == selector]
        if not named:
            names = sorted({c.name for c in campaigns})
            raise StoreError(
                f"no campaign named {selector!r} in {self.path!r}; "
                f"names: {', '.join(names)}"
            )
        return named[-1]

    def previous_campaign(self, info: CampaignInfo) -> CampaignInfo | None:
        """The campaign before ``info`` with the same name and kind —
        the other end of a perf-trajectory comparison."""
        earlier = [
            c
            for c in self.campaigns()
            if c.name == info.name
            and c.kind == info.kind
            and c.campaign_id < info.campaign_id
        ]
        return earlier[-1] if earlier else None

    # -- points ------------------------------------------------------------

    def append_point(
        self,
        campaign_id: int,
        index: int,
        *,
        name: str = "",
        status: str = "ok",
        coords: dict | None = None,
        seed: int | None = None,
        spec: dict | None = None,
        row: dict | None = None,
        artifact: str | bytes | None = None,
        skip_reason: str | None = None,
        extra_metrics: dict | None = None,
    ) -> None:
        """Durably record one point, replacing any earlier row at the
        same ``(campaign_id, index)``.

        One ``BEGIN IMMEDIATE`` transaction covers the point row, its
        indexed metric rows (from ``row``), and the artifact blob, so a
        reader never observes a half-appended point and concurrent
        appenders from separate processes serialize instead of losing
        rows.  ``artifact`` is stored byte-exactly (text is encoded as
        UTF-8) and hashed for integrity.

        ``extra_metrics`` maps names to floats indexed *only* into the
        metrics table (never merged into ``row_json``, whose key set is
        a pinned export contract) — the channel sweep campaigns use to
        file each point's final metrics-registry snapshot as queryable
        rows.
        """
        stored_row = _derive_row_metrics(row) if row is not None else {}
        coords_json = json.dumps(coords or {}, sort_keys=True)
        spec_json = None if spec is None else json.dumps(spec, sort_keys=True)
        row_json = json.dumps(stored_row, sort_keys=True)
        body: bytes | None
        if artifact is None:
            body = None
        elif isinstance(artifact, bytes):
            body = artifact
        else:
            body = artifact.encode("utf-8")
        conn = self.conn
        conn.execute("BEGIN IMMEDIATE")
        try:
            conn.execute(
                "DELETE FROM points WHERE campaign_id = ? AND point_index = ?",
                (campaign_id, index),
            )
            cursor = conn.execute(
                "INSERT INTO points (campaign_id, point_index, name, status,"
                " coords_json, seed, spec_json, row_json, skip_reason)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    campaign_id,
                    index,
                    name,
                    status,
                    coords_json,
                    seed,
                    spec_json,
                    row_json,
                    skip_reason,
                ),
            )
            point_id = cursor.lastrowid
            metric_rows = list(self._metric_rows(point_id, stored_row))
            metric_rows += [
                (point_id, metric, float(value), None)
                for metric, value in sorted((extra_metrics or {}).items())
            ]
            conn.executemany(
                "INSERT INTO metrics (point_id, name, value, text_value)"
                " VALUES (?, ?, ?, ?)",
                metric_rows,
            )
            if body is not None:
                conn.execute(
                    "INSERT INTO artifacts (point_id, body, sha256)"
                    " VALUES (?, ?, ?)",
                    (point_id, body, hashlib.sha256(body).hexdigest()),
                )
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise

    @staticmethod
    def _metric_rows(point_id: int, row: dict) -> Iterable[tuple]:
        for key, value in row.items():
            if isinstance(value, bool):
                yield point_id, key, float(value), None
            elif isinstance(value, (int, float)):
                yield point_id, key, float(value), None
            elif isinstance(value, str):
                yield point_id, key, None, value
            elif value is None:
                yield point_id, key, None, None
            # Structured values stay queryable only through row_json.

    def _point_row(self, campaign_id: int, index: int) -> sqlite3.Row | None:
        return self.conn.execute(
            "SELECT * FROM points WHERE campaign_id = ? AND point_index = ?",
            (campaign_id, index),
        ).fetchone()

    def get_artifact(self, campaign_id: int, index: int) -> str:
        """The byte-exact serialized ``ExperimentResult`` the point
        stored (raises :class:`StoreError` if absent or corrupted)."""
        point = self._point_row(campaign_id, index)
        if point is None:
            raise StoreError(
                f"campaign {campaign_id} has no point {index} in {self.path!r}"
            )
        blob = self.conn.execute(
            "SELECT body, sha256 FROM artifacts WHERE point_id = ?",
            (point["point_id"],),
        ).fetchone()
        if blob is None:
            raise StoreError(
                f"campaign {campaign_id} point {index} stored no artifact"
            )
        body = blob["body"]
        if hashlib.sha256(body).hexdigest() != blob["sha256"]:
            raise StoreError(
                f"campaign {campaign_id} point {index} artifact is corrupted "
                f"(sha256 mismatch)"
            )
        return body.decode("utf-8")

    def stored_artifact(
        self, campaign_id: int, index: int, spec: dict
    ) -> str | None:
        """The stored artifact text for a point whose spec echo still
        matches ``spec``, or None (execute it) — the same validation the
        directory resume path applies, so stale points are invalidated
        identically."""
        point = self._point_row(campaign_id, index)
        if point is None or point["status"] != "ok" or point["spec_json"] is None:
            return None
        if json.loads(point["spec_json"]) != spec:
            return None
        try:
            text = self.get_artifact(campaign_id, index)
        except StoreError:
            return None
        try:
            stored_spec = json.loads(text).get("spec")
        except (json.JSONDecodeError, AttributeError):
            return None
        if stored_spec != spec:
            return None
        return text

    def rows(self, campaign_id: int, status: str = "ok") -> list[dict]:
        """The flat summary rows of one campaign, index order."""
        rows = self.conn.execute(
            "SELECT point_index, row_json FROM points"
            " WHERE campaign_id = ? AND status = ? ORDER BY point_index",
            (campaign_id, status),
        ).fetchall()
        return [json.loads(row["row_json"]) for row in rows]

    def points(self, campaign_id: int, status: str = "ok") -> list[dict]:
        """Identity + coords + row per point of one campaign, index order."""
        rows = self.conn.execute(
            "SELECT point_index, name, status, coords_json, seed, row_json,"
            " skip_reason FROM points WHERE campaign_id = ? AND status = ?"
            " ORDER BY point_index",
            (campaign_id, status),
        ).fetchall()
        return [
            {
                "index": row["point_index"],
                "name": row["name"],
                "status": row["status"],
                "coords": json.loads(row["coords_json"]),
                "seed": row["seed"],
                "row": json.loads(row["row_json"]),
                "skip_reason": row["skip_reason"],
            }
            for row in rows
        ]

    # -- queries -----------------------------------------------------------

    def query(
        self, expr: str, campaign: int | str | None = None
    ) -> list[dict]:
        """Evaluate a predicate expression over stored points.

        Returns each matching point's flat row with ``campaign`` /
        ``campaign_id`` / ``index`` identity merged in, ordered by
        campaign then point index.  Unless the expression itself
        constrains ``status``, only executed (``status='ok'``) points
        are considered.  ``campaign`` optionally pins one campaign (id
        or name, latest wins).
        """
        from .query import compile_query

        fragment, params, identifiers = compile_query(expr)
        clauses = [f"({fragment})"]
        if "status" not in identifiers:
            clauses.append("p.status = 'ok'")
        if campaign is not None:
            info = self.resolve_campaign(campaign)
            clauses.append("p.campaign_id = ?")
            params = params + [info.campaign_id]
        sql = (
            "SELECT c.campaign_id AS campaign_id, c.name AS campaign,"
            " p.point_index, p.row_json"
            " FROM points p JOIN campaigns c USING (campaign_id)"
            f" WHERE {' AND '.join(clauses)}"
            " ORDER BY p.campaign_id, p.point_index"
        )
        out: list[dict] = []
        for row in self.conn.execute(sql, params):
            merged: dict[str, Any] = {
                "campaign": row["campaign"],
                "campaign_id": row["campaign_id"],
                "index": row["point_index"],
            }
            merged.update(json.loads(row["row_json"]))
            merged["index"] = row["point_index"]
            out.append(merged)
        return out
