"""The ``repro query`` predicate grammar, compiled to indexed SQL.

A query expression filters campaign points by their flat summary
columns — metric values (``commit_rate < 0.5``), sweep coordinates
(``protocol = 'nolan'``), and the point identity fields::

    commit_rate < 0.5 AND protocol = 'nolan'
    violation_rate > 0 OR priced_out >= 3
    NOT (depth >= 4) AND hashpower = 6.0

Grammar (keywords case-insensitive)::

    expr        := or_expr
    or_expr     := and_expr ( "OR" and_expr )*
    and_expr    := unary ( "AND" unary )*
    unary       := "NOT" unary | "(" expr ")" | comparison
    comparison  := IDENT op literal
    op          := "=" | "==" | "!=" | "<>" | "<" | "<=" | ">" | ">="
    literal     := NUMBER | STRING ('…' or "…") | "true" | "false"

Identifiers resolve against the point's stored key/value metric rows;
the handful of identity fields (``index``, ``name``, ``seed``,
``status``, ``campaign``) compile straight to their table columns.
Numeric literals compare against the indexed ``metrics.value`` column
and strings against ``metrics.text_value``, so every comparison is an
index probe, not a table scan.  ``!=`` matches points where the key is
*present* and differs (a point with no ``depth`` coordinate never
matches ``depth != 4``).

The compiler emits a parameterized SQL fragment over the ``points``
(alias ``p``) and ``campaigns`` (alias ``c``) tables; values travel as
bound parameters, never interpolated text.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Union

from ..errors import QueryError

#: Identity fields compiled straight to table columns (text columns
#: compare as text, the rest numerically).
_IDENTITY_COLUMNS = {
    "index": ("p.point_index", False),
    "seed": ("p.seed", False),
    "name": ("p.name", True),
    "status": ("p.status", True),
    "campaign": ("c.name", True),
}

_OPERATORS = {"=": "=", "==": "=", "!=": "!=", "<>": "!=",
              "<": "<", "<=": "<=", ">": ">", ">=": ">="}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<op><=|>=|==|!=|<>|=|<|>)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<number>-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)
  | (?P<string>'(?:[^']|'')*'|"(?:[^"]|"")*")
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    pos: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise QueryError(
                f"bad query: unexpected character {text[pos]!r} at column {pos}"
            )
        kind = match.lastgroup
        if kind != "ws":
            tokens.append(_Token(kind=kind, text=match.group(), pos=pos))
        pos = match.end()
    return tokens


# -- AST --------------------------------------------------------------------


@dataclass(frozen=True)
class Comparison:
    key: str
    op: str
    value: Any  # float | str | bool


@dataclass(frozen=True)
class Not:
    operand: "Node"


@dataclass(frozen=True)
class BoolOp:
    op: str  # "AND" | "OR"
    operands: tuple["Node", ...]


Node = Union[Comparison, Not, BoolOp]


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.at = 0

    def parse(self) -> Node:
        if not self.tokens:
            raise QueryError("bad query: empty expression")
        node = self._or()
        if self.at < len(self.tokens):
            tok = self.tokens[self.at]
            raise QueryError(
                f"bad query: unexpected {tok.text!r} at column {tok.pos}"
            )
        return node

    # -- token helpers ----------------------------------------------------

    def _peek(self) -> _Token | None:
        return self.tokens[self.at] if self.at < len(self.tokens) else None

    def _take(self) -> _Token:
        tok = self._peek()
        if tok is None:
            raise QueryError("bad query: unexpected end of expression")
        self.at += 1
        return tok

    def _keyword(self, word: str) -> bool:
        tok = self._peek()
        if tok is not None and tok.kind == "ident" and tok.text.upper() == word:
            self.at += 1
            return True
        return False

    # -- grammar ----------------------------------------------------------

    def _or(self) -> Node:
        operands = [self._and()]
        while self._keyword("OR"):
            operands.append(self._and())
        return operands[0] if len(operands) == 1 else BoolOp("OR", tuple(operands))

    def _and(self) -> Node:
        operands = [self._unary()]
        while self._keyword("AND"):
            operands.append(self._unary())
        return operands[0] if len(operands) == 1 else BoolOp("AND", tuple(operands))

    def _unary(self) -> Node:
        if self._keyword("NOT"):
            return Not(self._unary())
        tok = self._peek()
        if tok is not None and tok.kind == "lparen":
            self.at += 1
            node = self._or()
            closer = self._peek()
            if closer is None or closer.kind != "rparen":
                raise QueryError("bad query: missing closing parenthesis")
            self.at += 1
            return node
        return self._comparison()

    def _comparison(self) -> Comparison:
        tok = self._take()
        if tok.kind != "ident":
            raise QueryError(
                f"bad query: expected a metric name at column {tok.pos}, "
                f"got {tok.text!r}"
            )
        if tok.text.upper() in ("AND", "OR", "NOT"):
            raise QueryError(
                f"bad query: {tok.text!r} at column {tok.pos} is a keyword, "
                f"not a metric name"
            )
        key = tok.text
        op_tok = self._take()
        if op_tok.kind != "op":
            raise QueryError(
                f"bad query: expected an operator after {key!r}, got "
                f"{op_tok.text!r} at column {op_tok.pos}"
            )
        op = _OPERATORS[op_tok.text]
        value = self._literal(key)
        return Comparison(key=key, op=op, value=value)

    def _literal(self, key: str) -> Any:
        tok = self._take()
        if tok.kind == "number":
            return float(tok.text)
        if tok.kind == "string":
            quote = tok.text[0]
            return tok.text[1:-1].replace(quote * 2, quote)
        if tok.kind == "ident" and tok.text.lower() in ("true", "false"):
            return tok.text.lower() == "true"
        raise QueryError(
            f"bad query: expected a number, 'string', true, or false after "
            f"{key!r}, got {tok.text!r} at column {tok.pos} (quote strings: "
            f"{key} = '{tok.text}')"
        )


def parse_query(text: str) -> Node:
    """Parse a predicate expression into its AST (raises QueryError)."""
    return _Parser(text).parse()


def query_identifiers(node: Node) -> set[str]:
    """Every identifier the expression compares (for default filters)."""
    if isinstance(node, Comparison):
        return {node.key}
    if isinstance(node, Not):
        return query_identifiers(node.operand)
    out: set[str] = set()
    for operand in node.operands:
        out |= query_identifiers(operand)
    return out


# -- compilation ------------------------------------------------------------


def _compile_node(node: Node, params: list) -> str:
    if isinstance(node, Comparison):
        return _compile_comparison(node, params)
    if isinstance(node, Not):
        return f"NOT ({_compile_node(node.operand, params)})"
    joined = f" {node.op} ".join(
        f"({_compile_node(operand, params)})" for operand in node.operands
    )
    return joined


def _compile_comparison(node: Comparison, params: list) -> str:
    value = node.value
    if isinstance(value, bool):
        # Booleans are stored numerically (0/1) like every other number.
        value = float(value)
    if node.key in _IDENTITY_COLUMNS:
        column, is_text = _IDENTITY_COLUMNS[node.key]
        if is_text != isinstance(value, str):
            want = "a string" if is_text else "a number"
            raise QueryError(
                f"bad query: {node.key!r} compares as {want} "
                f"(got {node.value!r})"
            )
        params.append(value)
        return f"{column} {node.op} ?"
    column = "text_value" if isinstance(value, str) else "value"
    params.append(node.key)
    params.append(value)
    return (
        "EXISTS (SELECT 1 FROM metrics m WHERE m.point_id = p.point_id "
        f"AND m.name = ? AND m.{column} {node.op} ?)"
    )


def compile_query(text: str) -> tuple[str, list, set[str]]:
    """Compile a predicate into ``(sql_fragment, params, identifiers)``.

    The fragment references ``points`` as ``p`` and ``campaigns`` as
    ``c``; callers embed it in their own ``WHERE`` clause.
    """
    node = parse_query(text)
    params: list = []
    sql = _compile_node(node, params)
    return sql, params, query_identifiers(node)
