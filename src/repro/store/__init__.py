"""The campaign datastore: every campaign, benchmark, and sweep in one
queryable SQLite database.

Sweep campaigns and benchmark runs used to scatter per-point JSON files
and one in-memory aggregate; this subsystem gives them a durable home —
a versioned SQLite schema (campaigns → points → metrics → artifacts,
WAL mode, foreign keys, indexed metric columns) behind a typed
:class:`CampaignStore` API:

* transactional :meth:`~CampaignStore.append_point`, safe under
  concurrent multi-process appenders (the distributed-execution shape:
  workers on separate hosts appending points keyed by campaign id);
* byte-exact artifact recovery — :meth:`~CampaignStore.get_artifact`
  returns exactly the serialized ``ExperimentResult`` that was stored;
* indexed predicate queries — :meth:`~CampaignStore.query` compiles
  ``"commit_rate < 0.5 AND protocol='nolan'"`` (:mod:`repro.store.query`)
  into indexed SQL;
* resume-from-store — ``SweepRunner(spec, store=...)`` skips points
  whose stored spec echo matches, byte-identical to ``--resume DIR``;
* cross-run regression tracking — :func:`compare_campaigns`
  (:mod:`repro.store.compare`) joins two campaigns by expansion
  coordinates and flags directed metric regressions;
* importers for existing artifacts — :func:`ingest_path`
  (:mod:`repro.store.ingest`).

CLI surface: ``repro sweep --store DB``, ``repro query EXPR --db DB``,
``repro compare DB_A DB_B``, ``repro store ingest|list|artifact``.
"""

from .compare import (
    COMPARE_CSV_COLUMNS,
    HIGHER_IS_BETTER,
    LOWER_IS_BETTER,
    CompareReport,
    MetricDelta,
    compare_campaigns,
)
from .ingest import IngestReport, ingest_path
from .query import compile_query, parse_query
from .schema import MIGRATIONS, SCHEMA_VERSION
from .store import CampaignInfo, CampaignStore

__all__ = [
    "COMPARE_CSV_COLUMNS",
    "CampaignInfo",
    "CampaignStore",
    "CompareReport",
    "HIGHER_IS_BETTER",
    "IngestReport",
    "LOWER_IS_BETTER",
    "MIGRATIONS",
    "MetricDelta",
    "SCHEMA_VERSION",
    "compare_campaigns",
    "compile_query",
    "ingest_path",
    "parse_query",
]
