"""Cross-run comparison: join two campaigns, flag metric regressions.

``repro compare`` joins the points of two campaigns (from two
databases, or two campaign ids in one) by their expansion coordinates
and diffs every shared numeric metric.  Known metrics carry a
direction — a commit-rate drop or a latency rise is a *regression*, the
opposite an *improvement* — so the benchmark suite becomes a tracked
perf trajectory: run a bench campaign per commit, then one command
diffs this run against the previous one and exits non-zero when
anything got worse beyond the threshold.

Neutral metrics (no known direction) are reported as plain changes and
never fail the comparison.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field

from .store import CampaignInfo, CampaignStore

#: Metrics where a larger value is an improvement.
HIGHER_IS_BETTER = frozenset(
    {
        "commit_rate",
        "committed",
        "swaps_per_second",
        "swaps_per_second_wall",
        "points_per_second",
    }
)

#: Metrics where a larger value is a regression.
LOWER_IS_BETTER = frozenset(
    {
        "atomicity_violations",
        "violation_rate",
        "mean_latency",
        "p50_latency",
        "p99_latency",
        "makespan",
        "fee_per_commit",
        "priced_out",
        "mixed",
        "undecided",
        "wall_seconds",
    }
)

#: Identity/row keys that are never treated as comparable metrics.
_IDENTITY_KEYS = frozenset({"index", "name", "seed", "status", "skip_reason"})

#: The pinned CSV column order of a comparison export.
COMPARE_CSV_COLUMNS = (
    "coords",
    "metric",
    "a",
    "b",
    "delta",
    "rel_change",
    "direction",
    "regression",
)


@dataclass(frozen=True)
class MetricDelta:
    """One metric of one joined point pair."""

    coords: dict
    metric: str
    a: float
    b: float

    @property
    def delta(self) -> float:
        return self.b - self.a

    @property
    def rel_change(self) -> float:
        """Relative change vs A (``inf`` when A is zero and B is not)."""
        if self.a == 0:
            return 0.0 if self.delta == 0 else float("inf")
        return self.delta / abs(self.a)

    @property
    def direction(self) -> str:
        """``better`` / ``worse`` / ``changed`` / ``same``."""
        if self.delta == 0:
            return "same"
        if self.metric in HIGHER_IS_BETTER:
            return "better" if self.delta > 0 else "worse"
        if self.metric in LOWER_IS_BETTER:
            return "worse" if self.delta > 0 else "better"
        return "changed"

    def exceeds(self, threshold: float) -> bool:
        return abs(self.rel_change) > threshold

    def is_regression(self, threshold: float) -> bool:
        return self.direction == "worse" and self.exceeds(threshold)


@dataclass
class CompareReport:
    """Everything one campaign comparison produced.

    ``deltas`` holds every shared numeric metric of every joined point
    pair (including unchanged ones, so exports are complete);
    ``only_in_a`` / ``only_in_b`` list coordinates present on one side
    only.
    """

    campaign_a: CampaignInfo
    campaign_b: CampaignInfo
    threshold: float
    deltas: list[MetricDelta] = field(default_factory=list)
    only_in_a: list[dict] = field(default_factory=list)
    only_in_b: list[dict] = field(default_factory=list)
    joined_points: int = 0

    @property
    def regressions(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.is_regression(self.threshold)]

    @property
    def improvements(self) -> list[MetricDelta]:
        return [
            d
            for d in self.deltas
            if d.direction == "better" and d.exceeds(self.threshold)
        ]

    @property
    def changes(self) -> list[MetricDelta]:
        """Direction-less metrics that moved beyond the threshold."""
        return [
            d
            for d in self.deltas
            if d.direction == "changed" and d.exceeds(self.threshold)
        ]

    def to_dict(self) -> dict:
        return {
            "campaign_a": self.campaign_a.to_dict(),
            "campaign_b": self.campaign_b.to_dict(),
            "threshold": self.threshold,
            "joined_points": self.joined_points,
            "only_in_a": self.only_in_a,
            "only_in_b": self.only_in_b,
            "deltas": [
                {
                    "coords": d.coords,
                    "metric": d.metric,
                    "a": d.a,
                    "b": d.b,
                    "delta": d.delta,
                    "rel_change": d.rel_change,
                    "direction": d.direction,
                    "regression": d.is_regression(self.threshold),
                }
                for d in self.deltas
            ],
        }

    def to_csv(self) -> str:
        """Every metric delta as CSV in the pinned column order
        (:data:`COMPARE_CSV_COLUMNS`), rows sorted by (coords, metric)
        — deterministic for diffing across runs and Python versions."""
        import json as _json

        buffer = io.StringIO()
        buffer.write(",".join(COMPARE_CSV_COLUMNS) + "\n")
        rows = sorted(
            self.deltas,
            key=lambda d: (_json.dumps(d.coords, sort_keys=True), d.metric),
        )
        for d in rows:
            cells = [
                _csv_escape(_json.dumps(d.coords, sort_keys=True)),
                d.metric,
                repr(float(d.a)),
                repr(float(d.b)),
                repr(float(d.delta)),
                repr(float(d.rel_change)),
                d.direction,
                str(d.is_regression(self.threshold)),
            ]
            buffer.write(",".join(cells) + "\n")
        return buffer.getvalue()


def _csv_escape(cell: str) -> str:
    if any(ch in cell for ch in ',"\n'):
        return '"' + cell.replace('"', '""') + '"'
    return cell


def _points_by_coords(store: CampaignStore, campaign_id: int) -> dict[str, list[dict]]:
    """Executed points grouped by their canonical coordinate key."""
    import json as _json

    grouped: dict[str, list[dict]] = {}
    for point in store.points(campaign_id):
        key = _json.dumps(point["coords"], sort_keys=True)
        grouped.setdefault(key, []).append(point)
    return grouped


def compare_campaigns(
    store_a: CampaignStore,
    campaign_a: CampaignInfo,
    store_b: CampaignStore,
    campaign_b: CampaignInfo,
    threshold: float = 0.05,
) -> CompareReport:
    """Join two campaigns by expansion coordinates and diff metrics.

    Points pair by identical coordinate dicts (duplicates pair in index
    order); every numeric metric present in both rows of a pair becomes
    a :class:`MetricDelta`.  ``threshold`` is the relative-change bar a
    directed metric must clear to count as a regression/improvement.
    """
    report = CompareReport(
        campaign_a=campaign_a, campaign_b=campaign_b, threshold=threshold
    )
    a_groups = _points_by_coords(store_a, campaign_a.campaign_id)
    b_groups = _points_by_coords(store_b, campaign_b.campaign_id)
    for key in sorted(set(a_groups) | set(b_groups)):
        a_list = a_groups.get(key, [])
        b_list = b_groups.get(key, [])
        for a_point, b_point in zip(a_list, b_list):
            report.joined_points += 1
            coords = a_point["coords"]
            coord_keys = set(coords)
            row_a, row_b = a_point["row"], b_point["row"]
            for metric in sorted(set(row_a) & set(row_b)):
                if metric in _IDENTITY_KEYS or metric in coord_keys:
                    continue
                va, vb = row_a[metric], row_b[metric]
                if isinstance(va, bool) or isinstance(vb, bool):
                    va, vb = float(va), float(vb)
                if not isinstance(va, (int, float)) or not isinstance(
                    vb, (int, float)
                ):
                    continue
                report.deltas.append(
                    MetricDelta(coords=coords, metric=metric, a=va, b=vb)
                )
        for point in a_list[len(b_list):]:
            report.only_in_a.append(point["coords"])
        for point in b_list[len(a_list):]:
            report.only_in_b.append(point["coords"])
    return report
