"""Importers: existing artifacts → campaign database rows.

``repro store ingest`` recognizes three shapes and files each under a
campaign of the matching kind:

* a **resume directory** of ``point-NNNNN.json`` files (what
  ``repro sweep --resume DIR`` writes) — each file is one serialized
  ``ExperimentResult``; the bytes are stored verbatim, so recovery
  stays byte-exact and a later ``--store`` resume of the same sweep
  can reuse the imported points;
* a single **ExperimentResult JSON** file (``repro run --json OUT``) —
  a one-point campaign;
* a **bench timing JSON** (the ``ENGINE_SCALE_JSON`` artifact of
  ``bench_engine_scale.py``: a dict of per-point timing dicts) — a
  ``bench`` campaign whose points carry the timing metrics.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass

from ..errors import StoreError
from .store import CampaignStore

_POINT_FILE = re.compile(r"^point-(\d+)\.json$")


@dataclass(frozen=True)
class IngestReport:
    """What one ingest call filed: the campaign and its point count."""

    campaign_id: int
    campaign: str
    kind: str
    points: int


def _artifact_row(artifact: dict, index: int) -> tuple[dict, dict]:
    """(coords, flat row) distilled from one ExperimentResult dict."""
    spec = artifact.get("spec") or {}
    metrics = artifact.get("metrics") or {}
    coords = {"protocol": spec.get("protocol")}
    row: dict = {"index": index, "name": spec.get("name", ""), **coords}
    row["seed"] = spec.get("seed")
    for key, value in sorted(metrics.items()):
        if isinstance(value, (int, float, str)) or value is None:
            row[key] = value
    return coords, row


def _ingest_result_text(
    store: CampaignStore, campaign_id: int, index: int, text: str, origin: str
) -> None:
    try:
        artifact = json.loads(text)
    except json.JSONDecodeError as exc:
        raise StoreError(f"{origin}: not valid JSON: {exc}") from exc
    if not isinstance(artifact, dict) or "spec" not in artifact or "metrics" not in artifact:
        raise StoreError(
            f"{origin}: not an ExperimentResult artifact (no spec/metrics)"
        )
    coords, row = _artifact_row(artifact, index)
    store.append_point(
        campaign_id,
        index,
        name=row.get("name", ""),
        coords=coords,
        seed=row.get("seed"),
        spec=artifact["spec"],
        row=row,
        artifact=text,
    )


def _ingest_point_dir(store: CampaignStore, path: str, campaign: str) -> IngestReport:
    entries = []
    for entry in sorted(os.listdir(path)):
        match = _POINT_FILE.match(entry)
        if match is not None:
            entries.append((int(match.group(1)), entry))
    if not entries:
        raise StoreError(
            f"{path!r} holds no point-NNNNN.json files to ingest"
        )
    campaign_id = store.create_campaign(campaign, kind="ingest")
    for index, entry in entries:
        with open(os.path.join(path, entry), encoding="utf-8") as handle:
            text = handle.read()
        _ingest_result_text(
            store, campaign_id, index, text, os.path.join(path, entry)
        )
    return IngestReport(
        campaign_id=campaign_id, campaign=campaign, kind="ingest",
        points=len(entries),
    )


def _looks_like_timings(data: dict) -> bool:
    return bool(data) and all(
        isinstance(value, dict) and "wall_seconds" in value
        for value in data.values()
    )


def _ingest_timings(
    store: CampaignStore, data: dict, campaign: str
) -> IngestReport:
    campaign_id = store.create_campaign(campaign, kind="bench")

    def sort_key(item):
        key = item[0]
        return (0, int(key)) if key.isdigit() else (1, key)

    for index, (key, entry) in enumerate(sorted(data.items(), key=sort_key)):
        coords = {"num_swaps": int(key)} if key.isdigit() else {"point": key}
        row = {"index": index, **coords}
        for name, value in sorted(entry.items()):
            if isinstance(value, (int, float, str)) or value is None:
                row[name] = value
        store.append_point(
            campaign_id,
            index,
            name=f"{campaign}[{key}]",
            coords=coords,
            row=row,
            artifact=json.dumps(entry, sort_keys=True),
        )
    return IngestReport(
        campaign_id=campaign_id, campaign=campaign, kind="bench",
        points=len(data),
    )


def ingest_path(
    store: CampaignStore, path: str, campaign: str | None = None
) -> IngestReport:
    """Import ``path`` (see module docstring for recognized shapes).

    ``campaign`` defaults to the path's basename (without extension).
    """
    name = campaign or os.path.splitext(os.path.basename(os.path.normpath(path)))[0]
    if os.path.isdir(path):
        return _ingest_point_dir(store, path, name)
    try:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise StoreError(f"cannot read {path!r}: {exc}") from exc
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise StoreError(f"{path!r} is not valid JSON: {exc}") from exc
    if isinstance(data, dict) and "spec" in data and "metrics" in data:
        campaign_id = store.create_campaign(name, kind="ingest")
        _ingest_result_text(store, campaign_id, 0, text, path)
        return IngestReport(
            campaign_id=campaign_id, campaign=name, kind="ingest", points=1
        )
    if isinstance(data, dict) and _looks_like_timings(data):
        return _ingest_timings(store, data, name)
    raise StoreError(
        f"{path!r} is neither an ExperimentResult artifact, a bench "
        f"timing JSON, nor a point-NNNNN.json directory"
    )
