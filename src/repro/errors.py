"""Exception hierarchy for the repro library.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
The hierarchy mirrors the package layout: crypto, chain, simulation, and
protocol errors each have their own branch.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


# ---------------------------------------------------------------------------
# Crypto
# ---------------------------------------------------------------------------


class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class InvalidSignatureError(CryptoError):
    """A signature failed verification or is structurally malformed."""


class InvalidKeyError(CryptoError):
    """A private or public key is out of range or not on the curve."""


class InvalidProofError(CryptoError):
    """A Merkle inclusion proof is malformed or does not verify."""


class CommitmentError(CryptoError):
    """A commitment scheme was opened with an invalid secret."""


# ---------------------------------------------------------------------------
# Chain
# ---------------------------------------------------------------------------


class ChainError(ReproError):
    """Base class for blockchain failures."""


class ValidationError(ChainError):
    """A transaction, message, or block failed validation."""


class DoubleSpendError(ValidationError):
    """A transaction tried to spend an already-spent or unknown output."""


class InsufficientFundsError(ValidationError):
    """A party attempted to spend more value than it owns."""


class UnknownBlockError(ChainError):
    """A referenced block hash is not present in the block tree."""


class InvalidBlockError(ChainError):
    """A block failed structural, PoW, or payload validation."""


class ContractError(ValidationError):
    """Base class for smart-contract runtime failures.

    Derives from :class:`ValidationError` so that miners drop messages
    that cannot execute at all (unknown contract/class, bad function);
    note that a *revert* (:class:`ContractRequireError`) never escapes
    the runtime — reverted calls are included with a failure receipt.
    """


class ContractRequireError(ContractError):
    """A contract ``requires`` clause evaluated to false (call reverted)."""


class UnknownContractError(ContractError):
    """A call referenced a contract id that is not deployed."""


class FeeError(ValidationError):
    """A message did not carry enough fee to be accepted by miners."""


class FeeTooLowError(FeeError):
    """A fee-market mempool refused a message for paying too little.

    Raised when a message's fee rate falls below the min-relay floor,
    cannot displace cheaper pending messages from a full mempool, or
    fails the replace-by-fee bump requirement.
    """


# ---------------------------------------------------------------------------
# Simulation
# ---------------------------------------------------------------------------


class SimulationError(ReproError):
    """Base class for discrete-event simulator failures."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or on a stopped simulator."""


class NetworkError(SimulationError):
    """A message could not be routed (unknown node, closed network)."""


class TraceError(SimulationError):
    """A flight-recorder trace is malformed (bad schema, unknown keys)."""


class MetricsError(TraceError):
    """A metrics registry was misused (type clash, bad buckets) or a
    serialized snapshot is malformed."""


# ---------------------------------------------------------------------------
# Protocol
# ---------------------------------------------------------------------------


class ProtocolError(ReproError):
    """Base class for cross-chain commitment protocol failures."""


class GraphError(ProtocolError):
    """An AC2T graph is structurally invalid for the requested protocol."""


class SpecError(ProtocolError):
    """An :class:`~repro.experiment.ExperimentSpec` is invalid.

    Raised for unknown keys or malformed values during deserialization,
    unknown preset/registry names, bad dotted-path overrides, and
    semantic validation failures (negative counts, rates outside their
    domain, unregistered protocols or traffic generators)."""


class EvidenceError(ProtocolError):
    """Cross-chain evidence failed validation (Section 4.3)."""


class AtomicityViolation(ProtocolError):
    """An audit found both redeemed and refunded contracts in one AC2T.

    This is the failure mode the paper's AC3WN protocol is designed to
    make impossible; the HTLC baselines can raise it under crash failures.
    """


class WitnessError(ProtocolError):
    """The witness (Trent or the witness network) rejected a request."""


# ---------------------------------------------------------------------------
# Service mode
# ---------------------------------------------------------------------------


class ServiceError(ReproError):
    """A long-running :class:`~repro.service.SwapService` session was
    misused (submission after close, result of an unfinished swap,
    capacity exhausted) or a checkpoint/request-log file is malformed
    or inconsistent with the session that tries to restore from it."""


# ---------------------------------------------------------------------------
# Campaign datastore
# ---------------------------------------------------------------------------


class StoreError(ReproError):
    """A campaign datastore operation failed (bad schema version,
    unknown campaign/point, unreadable database, ingest of a file whose
    shape the importer does not recognize)."""


class QueryError(StoreError):
    """A ``repro query`` predicate expression is malformed (syntax
    error, unknown operator, or an ill-typed comparison)."""
