"""Pluggable live traffic sources for service sessions.

A :class:`TrafficSource` is an iterator of arrivals: each call to
:meth:`~TrafficSource.next` returns the *next* :class:`SourceItem`
(arrival time relative to session start, protocol, amount, fee budget)
or None when the source is exhausted.  Sources draw from their own
standalone :class:`~repro.sim.rng.RngStream` — seeded from the world
seed and the source *name* — so an arrival schedule is a pure function
of ``(seed, source spec)`` and never perturbs the simulation's other
randomness.  That purity is what makes checkpoint/restore work:
:meth:`~TrafficSource.skip` fast-forwards a fresh source past the
``n`` arrivals a restored session already accepted by regenerating
(and discarding) them, leaving the stream positioned exactly where the
interrupted session's was.

The registry mirrors the experiment traffic registry
(:mod:`repro.experiment.registry`): kinds register by name, specs
reference them by name, and new sources plug in without editing this
file.  Built-ins: ``poisson`` (homogeneous arrivals), ``diurnal``
(sinusoidal day/night cycle), ``flash-crowd`` (baseline rate with
multiplicative burst windows), and ``replay`` (re-emit a recorded
request log as live traffic).

The time-varying sources use *thinning* (Lewis & Shedler): candidates
are drawn homogeneously at the peak rate and accepted with probability
``rate(t) / peak`` — exactly two RNG draws per candidate, so the
stream position after ``n`` emissions is deterministic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from ..engine.engine import PROTOCOLS
from ..errors import ServiceError, SpecError
from ..experiment.spec import FeeBudgetSpec
from ..sim.rng import RngStream
from .spec import SourceSpec


@dataclass(frozen=True)
class SourceItem:
    """One arrival a source emitted.

    ``at`` is sim-seconds relative to session start; ``protocol`` is
    already concrete (sources resolve ``"mixed"`` themselves so the
    request log records exactly what ran).
    """

    at: float
    protocol: str
    amount: int
    fee_budget: FeeBudgetSpec | None


class TrafficSource:
    """Base class: deterministic arrival iterator with its own stream.

    Subclasses implement :meth:`_next_at` (the next arrival time after
    the current position, or None when exhausted); the base class
    handles protocol round-robin, amounts, budgets, and skip.
    """

    def __init__(self, spec: SourceSpec, seed: int, default_amount: int) -> None:
        self.spec = spec
        self.name = spec.name
        self.stream = RngStream(seed, f"service/source/{spec.name}")
        self.emitted = 0
        self._t = spec.start
        self._amount = spec.amount if spec.amount is not None else default_amount
        self._protocol = spec.protocol  # resolved by the service ("" = world's)

    def resolve_protocol(self, world_protocol: str) -> None:
        """Pin the session-level default before the first emission."""
        self._protocol = self.spec.protocol or world_protocol

    def _next_at(self) -> float | None:
        raise NotImplementedError

    def next(self) -> SourceItem | None:
        """The next arrival, or None when this source is exhausted."""
        at = self._next_at()
        if at is None:
            return None
        self._t = at
        protocol = self._protocol
        if protocol == "mixed":
            protocol = PROTOCOLS[self.emitted % len(PROTOCOLS)]
        self.emitted += 1
        return SourceItem(
            at=at,
            protocol=protocol,
            amount=self._amount,
            fee_budget=self.spec.fee_budget,
        )

    def skip(self, n: int) -> None:
        """Discard the next ``n`` emissions (checkpoint-cursor restore).

        Regenerating is the *point*: it consumes exactly the RNG draws
        the original session consumed, so the next real emission matches
        the interrupted session's pending arrival bit for bit.
        """
        for _ in range(n):
            if self.next() is None:
                raise ServiceError(
                    f"source {self.name!r} exhausted after fewer than the "
                    f"{n} emissions its checkpoint cursor records"
                )


class PoissonSource(TrafficSource):
    """Homogeneous Poisson arrivals at ``rate`` per sim-second."""

    def _next_at(self) -> float | None:
        return self._t + self.stream.expovariate(self.spec.rate)


class _ThinnedSource(TrafficSource):
    """Time-varying arrivals via thinning at a constant peak rate."""

    def _peak(self) -> float:
        raise NotImplementedError

    def _rate_at(self, t: float) -> float:
        raise NotImplementedError

    def _next_at(self) -> float | None:
        peak = self._peak()
        t = self._t
        while True:
            t += self.stream.expovariate(peak)
            if self.stream.random() < self._rate_at(t) / peak:
                return t


class DiurnalSource(_ThinnedSource):
    """A sinusoidal day/night cycle: rate swings between ``trough *
    rate`` (cycle start) and ``rate`` (half-cycle), period ``period``."""

    def _peak(self) -> float:
        return self.spec.rate

    def _rate_at(self, t: float) -> float:
        spec = self.spec
        swing = 0.5 * (1.0 - math.cos(2.0 * math.pi * t / spec.period))
        return spec.rate * (spec.trough + (1.0 - spec.trough) * swing)


class FlashCrowdSource(_ThinnedSource):
    """Baseline arrivals with multiplicative burst windows.

    Rate is ``rate`` outside bursts and ``rate * burst_multiplier``
    inside; the first burst opens at ``burst_at`` and repeats every
    ``burst_every`` seconds (None = a single burst)."""

    def _peak(self) -> float:
        return self.spec.rate * self.spec.burst_multiplier

    def _rate_at(self, t: float) -> float:
        spec = self.spec
        since = t - spec.burst_at
        if since >= 0:
            if spec.burst_every is not None:
                since = since % spec.burst_every
            if since < spec.burst_duration:
                return spec.rate * spec.burst_multiplier
        return spec.rate


class ReplaySource(TrafficSource):
    """Re-emit a recorded request log as live traffic (finite).

    Arrival times, protocols, amounts and budgets come verbatim from the
    log's records (whatever source originally produced them); the spec's
    ``start`` shifts the whole schedule.  No RNG is consumed, so skip
    just advances the record index.
    """

    def __init__(self, spec: SourceSpec, seed: int, default_amount: int) -> None:
        super().__init__(spec, seed, default_amount)
        from .requestlog import load_request_log

        try:
            with open(spec.path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            raise ServiceError(
                f"source {spec.name!r}: cannot read request log "
                f"{spec.path!r}: {exc}"
            ) from exc
        _, self._records = load_request_log(text)
        self._index = 0

    def next(self) -> SourceItem | None:
        if self._index >= len(self._records):
            return None
        record = self._records[self._index]
        self._index += 1
        self.emitted += 1
        return SourceItem(
            at=self.spec.start + record.at,
            protocol=record.protocol,
            amount=record.amount,
            fee_budget=record.fee_budget,
        )


# ---------------------------------------------------------------------------
# The source registry (mirrors repro.experiment.registry)
# ---------------------------------------------------------------------------

SourceFactory = Callable[[SourceSpec, int, int], TrafficSource]

_SOURCES: dict[str, tuple[SourceFactory, str]] = {}


def register_source(
    kind: str,
    factory: SourceFactory,
    description: str = "",
    replace: bool = False,
) -> None:
    """Register a traffic-source kind under ``kind``.

    ``factory(spec, seed, default_amount)`` must return a
    :class:`TrafficSource`.  Re-registering an existing kind raises
    :class:`~repro.errors.SpecError` unless ``replace=True``.
    """
    if not replace and kind in _SOURCES:
        raise SpecError(
            f"traffic source {kind!r} is already registered; "
            f"pass replace=True to override"
        )
    _SOURCES[kind] = (factory, description)


def unregister_source(kind: str) -> None:
    """Remove a registered source kind (tests clean up after themselves)."""
    _SOURCES.pop(kind, None)


def registered_sources() -> tuple[str, ...]:
    """All registered source kinds, sorted."""
    return tuple(sorted(_SOURCES))


def source_description(kind: str) -> str:
    if kind not in _SOURCES:
        raise SpecError(
            f"unknown traffic source {kind!r}; registered: {registered_sources()}"
        )
    return _SOURCES[kind][1]


def source_factory(kind: str) -> SourceFactory:
    """The factory registered under ``kind``."""
    if kind not in _SOURCES:
        raise SpecError(
            f"unknown traffic source {kind!r}; registered: {registered_sources()}"
        )
    return _SOURCES[kind][0]


register_source(
    "poisson",
    PoissonSource,
    "homogeneous Poisson arrivals at a constant rate",
)
register_source(
    "diurnal",
    DiurnalSource,
    "sinusoidal day/night cycle between trough*rate and rate",
)
register_source(
    "flash-crowd",
    FlashCrowdSource,
    "baseline rate with multiplicative burst windows",
)
register_source(
    "replay",
    ReplaySource,
    "re-emit a recorded request log as live traffic",
)
