"""The engine as a long-running service: :class:`SwapService`.

A service session wraps :class:`~repro.engine.SwapEngine` in an
open-ended run: instead of a pre-scheduled traffic list with a fixed
horizon, arrivals come from live :class:`~repro.service.sources.TrafficSource`
plugins (and/or the in-process :meth:`SwapService.submit_swap` API),
each accepted request is appended to a replayable request log, and the
session can be checkpointed mid-flight and restored in a fresh process
with byte-identical subsequent behavior.

**The accept loop is the whole design.**  It runs *outside* the event
queue: the session keeps one pending arrival per source, picks the
earliest, advances the simulator exactly to that arrival time, and only
then submits the swap.  Live serving, request-log replay, and
checkpoint restore all drive this one code path — which is what makes
"re-execute the log" and "resume from the checkpoint" structurally
byte-identical to the original session rather than approximately so.

**Checkpoints are log-structured.**  Live engine state (drivers,
queued events) is closures all the way down and cannot be serialized;
what *can* be serialized is the session's complete causal input: the
spec, the accepted request records, each source's accept cursor, and
the clock.  ``restore`` rebuilds the world from the spec, re-drives the
records through the accept loop, advances to the checkpoint clock, and
verifies a digest of the engine's counters — deterministic replay
makes the reconstructed state *the* state, not a copy of it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable

from ..adversary import build_roster
from ..engine import PROTOCOLS, SwapEngine
from ..engine.engine import SwapRequest
from ..engine.metrics import EngineMetrics
from ..errors import ServiceError
from ..experiment.runner import (
    _outcome_to_dict,
    _reset_caches,
    _shock_chain,
    build_environment,
    build_observability,
)
from ..workloads.scenarios import (
    TrafficItem,
    schedule_fee_shock,
    swap_traffic_graphs,
)
from .requestlog import RequestRecord, dump_request_log
from .sources import SourceItem, TrafficSource, source_factory
from .spec import EXTERNAL_SOURCE, ServiceSpec

#: Checkpoint format identifier (bump on incompatible schema changes).
CKPT_SCHEMA = "repro-service-ckpt/1"

_CKPT_KEYS = frozenset(
    {"schema", "clock", "epoch", "accepted", "spec", "records", "cursors", "digest"}
)

#: "Lookahead not yet filled" sentinel (None means source exhausted).
_UNSET = object()


class SwapHandle:
    """A future over one submitted swap's terminal outcome.

    Returned by :meth:`SwapService.submit_swap` (and queryable for any
    accepted request via :meth:`SwapService.handle`).  Resolution is
    driven by the engine's outcome hooks; callbacks fire inside the
    simulation event that finalized the swap, in registration order.
    """

    def __init__(self, service: "SwapService", request: SwapRequest) -> None:
        self._service = service
        self._request = request
        self._callbacks: list[Callable[["SwapHandle"], None]] = []

    @property
    def swap_id(self) -> int:
        return self._request.swap_id

    @property
    def protocol(self) -> str:
        return self._request.protocol

    def done(self) -> bool:
        """True once the swap reached a terminal outcome."""
        return self._request.outcome is not None

    def result(self):
        """The terminal :class:`~repro.core.protocol.SwapOutcome`.

        Raises :class:`~repro.errors.ServiceError` while the swap is
        still in flight — use :meth:`wait` or :meth:`done` first.
        """
        if self._request.outcome is None:
            raise ServiceError(
                f"swap {self._request.swap_id} has no outcome yet; "
                f"wait() for it or check done()"
            )
        return self._request.outcome

    def wait(self, timeout: float) -> bool:
        """Advance the session's clock until done or ``timeout`` sim-seconds.

        Time moves through the session's sampling-aware advance, so
        windowed metrics keep their cadence.  Returns :meth:`done`.
        """
        service = self._service
        sim = service.env.simulator
        deadline = sim.now + timeout
        while not self.done() and sim.now < deadline:
            service._advance_to(min(deadline, sim.now + service.spec.metrics_interval))
        return self.done()

    def add_done_callback(self, fn: Callable[["SwapHandle"], None]) -> None:
        """Call ``fn(handle)`` at completion (immediately if already done)."""
        if self.done():
            fn(self)
            return
        self._callbacks.append(fn)

    def _resolve(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)

    def __repr__(self) -> str:
        state = self._request.outcome.decision if self.done() else "in-flight"
        return f"SwapHandle(swap={self.swap_id} {self.protocol} {state})"


@dataclass
class ServiceResult:
    """Everything one service session produced, as one serializable artifact.

    Mirrors :class:`~repro.experiment.ExperimentResult` where the
    concepts coincide (spec echo, aggregate/per-protocol metrics,
    per-swap outcomes, only-when-enabled observability reports) and
    adds the service-mode surfaces: the accepted count, the windowed
    metrics series, checkpoint epochs, and the quiesce stall report.
    """

    spec: ServiceSpec
    metrics: EngineMetrics
    by_protocol: dict[str, EngineMetrics]
    accepted: int
    windows: list[dict]
    epochs: int
    stall: dict | None
    chain_reorgs: dict[str, int]
    requests: list[SwapRequest] = field(repr=False, default_factory=list)
    metrics_registry: Any = field(default=None, repr=False)
    alerts: list | None = field(default=None, repr=False)

    def to_dict(self) -> dict:
        from dataclasses import asdict

        reports: dict = {}
        if self.metrics_registry is not None:
            reports["metrics"] = self.metrics_registry.to_dict()
        if self.alerts is not None:
            reports["alerts"] = [alert.to_dict() for alert in self.alerts]
        return {
            "spec": self.spec.to_dict(),
            "metrics": asdict(self.metrics),
            "by_protocol": {
                name: asdict(metrics) for name, metrics in self.by_protocol.items()
            },
            "outcomes": [
                _outcome_to_dict(r.outcome, r.swap_id, r.arrival_time)
                for r in self.requests
                if r.outcome is not None
            ],
            "accepted": self.accepted,
            "windows": self.windows,
            # ``epochs`` is deliberately NOT exported: how often a
            # session was checkpointed is operator metadata, and
            # including it would make a restored session's artifact
            # differ from the uninterrupted one it must byte-match.
            "stall": self.stall,
            "chain_reorgs": dict(self.chain_reorgs),
            "reports": reports,
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")


class SwapService:
    """One open-ended swap-serving session over a simulated world.

    Construction builds the full world up front: ``capacity`` swap
    slots are pre-provisioned (per-slot participants funded at genesis
    — a session can accept at most ``capacity`` swaps), the world warms
    up, fee shocks are scheduled, and the observability stack from the
    embedded world spec is wired exactly as ``run_experiment`` wires it.

    Typical lifecycles::

        SwapService(spec).run()                       # serve to horizon
        service.serve(max_swaps=40); service.checkpoint(p)   # mid-flight
        SwapService.restore(p).run()                  # resume elsewhere
        SwapService.replay(spec, records)             # re-drive a log
    """

    def __init__(self, spec: ServiceSpec) -> None:
        spec.validate()
        self.spec = spec
        world = spec.world
        _reset_caches()
        # Slot pre-provisioning: the graphs are built once with the
        # world's default amount so genesis can fund every slot's
        # participants; a slot accepted with a different amount rebuilds
        # its graph (same names, keys, chains, timestamp) on the fly.
        self._slots = swap_traffic_graphs(
            spec.capacity,
            list(world.chains.asset_ids()),
            participants_per_swap=world.traffic.participants_per_swap,
            amount=world.traffic.amount,
            prefix=world.traffic.prefix,
        )
        self.env = build_environment(
            world, [TrafficItem(at=0.0, graph=graph) for graph in self._slots]
        )
        for shock in world.fee_shocks:
            schedule_fee_shock(
                self.env,
                _shock_chain(world, shock),
                at=self.env.simulator.now + shock.at,
                count=shock.count,
                fee_rate=shock.fee_rate,
                whale=shock.whale,
            )
        self.engine = SwapEngine(
            self.env,
            default_protocol=(
                "ac3wn" if world.protocol == "mixed" else world.protocol
            ),
            witness_chain_id=world.chains.witness,
            eager=world.engine.eager,
            jitter_span=world.engine.jitter,
        )
        (
            self.collector,
            self.metrics_registry,
            self.monitor,
            self._sampler,
        ) = build_observability(world, self.env, self.engine)
        build_roster(world, self.env, self.engine)
        self.engine.outcome_hooks.append(self._on_outcome)
        #: Session time zero: everything in the request log and the
        #: windowed series is relative to this post-warm-up instant.
        self.start = self.env.simulator.now
        self.records: list[RequestRecord] = []
        self.windows: list[dict] = []
        self.epoch = 0
        self.stall: dict | None = None
        self._handles: dict[int, SwapHandle] = {}
        self._sources: list[TrafficSource] | None = None
        self._lookahead: list = []
        self._next_sample_at = self.start + spec.metrics_interval
        self._accepts_by_source: dict[str, int] = {}
        self._closed = False
        self._store = None
        self._campaign_id = None
        self._window_gauges = None
        if self.metrics_registry is not None:
            registry = self.metrics_registry
            self._window_gauges = {
                name: registry.gauge(
                    f"repro_service_window_{name}",
                    f"service sliding-window {name.replace('_', ' ')}",
                )
                for name in (
                    "total",
                    "commit_rate",
                    "p50_latency",
                    "p99_latency",
                    "priced_out_rate",
                    "in_flight",
                )
            }

    # -- session state -----------------------------------------------------

    @property
    def accepted(self) -> int:
        """Requests admitted so far (== consumed slots == log length)."""
        return len(self.records)

    @property
    def closed(self) -> bool:
        """True once the session drained; no further submissions."""
        return self._closed

    def handle(self, swap_id: int) -> SwapHandle:
        """The :class:`SwapHandle` for any accepted request."""
        if swap_id not in self._handles:
            raise ServiceError(f"no accepted swap {swap_id} in this session")
        return self._handles[swap_id]

    def metrics_window(self, window: float | None = None):
        """The live windowed metrics as of the session clock."""
        return self.engine.metrics_window(
            window if window is not None else self.spec.metrics_window,
            end=self.env.simulator.now,
        )

    def attach_store(self, store, campaign: str | None = None) -> None:
        """File every checkpoint epoch into a campaign datastore.

        ``store`` is an open :class:`~repro.store.CampaignStore`; each
        subsequent checkpoint appends one point (index = epoch) whose
        row is the windowed metrics at checkpoint time and whose
        artifact is the checkpoint document itself — byte-exact, so a
        session can be restored straight out of the database.
        """
        self._store = store
        self._campaign_id = store.ensure_campaign(
            campaign or self.spec.name, kind="service", spec_json=self.spec.to_json()
        )

    # -- the accept path (shared by live serving, replay, and restore) -----

    def _slot_graph(self, index: int, amount: int):
        if amount == self.spec.world.traffic.amount:
            return self._slots[index]
        from ..core.graph import AssetEdge, SwapGraph
        from ..workloads.graphs import participant_keys

        world = self.spec.world
        chain_ids = list(world.chains.asset_ids())
        count = world.traffic.participants_per_swap
        names = [
            f"{world.traffic.prefix}{index:04d}.{chr(ord('a') + j)}"
            for j in range(count)
        ]
        keys = participant_keys(names)
        edges = [
            AssetEdge(
                source=names[j],
                recipient=names[(j + 1) % count],
                chain_id=chain_ids[(index + j) % len(chain_ids)],
                amount=amount,
            )
            for j in range(count)
        ]
        return SwapGraph.build(keys, edges, timestamp=index)

    def _accept(self, source_name: str, item: SourceItem) -> SwapHandle:
        if self._closed:
            raise ServiceError("session is closed; no further submissions")
        seq = self.accepted
        if seq >= self.spec.capacity:
            raise ServiceError(
                f"capacity exhausted: all {self.spec.capacity} pre-provisioned "
                f"slots are taken (raise spec.capacity)"
            )
        graph = self._slot_graph(seq, item.amount)
        request = self.engine.submit(
            graph,
            protocol=item.protocol,
            at=self.start + item.at,
            fee_budget=None if item.fee_budget is None else item.fee_budget.build(),
        )
        self.records.append(
            RequestRecord(
                seq=seq,
                at=item.at,
                source=source_name,
                protocol=item.protocol,
                amount=item.amount,
                fee_budget=item.fee_budget,
            )
        )
        self._accepts_by_source[source_name] = (
            self._accepts_by_source.get(source_name, 0) + 1
        )
        handle = SwapHandle(self, request)
        self._handles[request.swap_id] = handle
        collector = self.collector
        if collector is not None and collector.wants("service"):
            collector.emit(
                "service",
                "accept",
                swap_id=request.swap_id,
                source=source_name,
                protocol=item.protocol,
                amount=item.amount,
            )
        return handle

    def _on_outcome(self, request: SwapRequest) -> None:
        handle = self._handles.get(request.swap_id)
        if handle is not None:
            handle._resolve()

    # -- time: all advancement goes through the sampling-aware step --------

    def _advance_to(self, target: float) -> None:
        """Run the simulation to ``target``, sampling windowed metrics at
        every ``metrics_interval`` boundary crossed on the way.

        This is the *only* way session code moves the clock, which is
        what makes the window series (and the gauges/alerts derived
        from it) a pure function of the accepted requests — replay and
        restore re-derive it exactly."""
        sim = self.env.simulator
        while self._next_sample_at <= target:
            boundary = self._next_sample_at
            if boundary > sim.now:
                sim.run_until(boundary)
            self._sample_window()
            self._next_sample_at = boundary + self.spec.metrics_interval
        if target > sim.now:
            sim.run_until(target)

    def _sample_window(self) -> None:
        sim = self.env.simulator
        wm = self.engine.metrics_window(self.spec.metrics_window, end=sim.now)
        sample = {
            "t": sim.now - self.start,
            "total": wm.total,
            "committed": wm.committed,
            "commit_rate": wm.commit_rate,
            "p50_latency": wm.p50_latency,
            "p99_latency": wm.p99_latency,
            "priced_out": wm.priced_out,
            "priced_out_rate": wm.priced_out_rate,
            "accepted": self.accepted,
            "in_flight": self.engine.in_flight,
        }
        self.windows.append(sample)
        if self._window_gauges is not None:
            gauges = self._window_gauges
            gauges["total"].set(float(wm.total))
            gauges["commit_rate"].set(wm.commit_rate)
            gauges["p50_latency"].set(wm.p50_latency)
            gauges["p99_latency"].set(wm.p99_latency)
            gauges["priced_out_rate"].set(wm.priced_out_rate)
            gauges["in_flight"].set(float(self.engine.in_flight))
        collector = self.collector
        if collector is not None and collector.wants("service"):
            collector.emit("service", "window", **sample)

    # -- live serving ------------------------------------------------------

    def _ensure_sources(self) -> None:
        if self._sources is not None:
            return
        world = self.spec.world
        self._sources = []
        for source_spec in self.spec.sources:
            source = source_factory(source_spec.kind)(
                source_spec, world.seed, world.traffic.amount
            )
            source.resolve_protocol(world.protocol)
            self._sources.append(source)
        self._lookahead = [_UNSET] * len(self._sources)

    def submit_swap(
        self,
        protocol: str | None = None,
        amount: int | None = None,
        fee_budget=None,
    ) -> SwapHandle:
        """Submit one swap through the in-process API, arriving *now*.

        The submission is appended to the request log under the
        reserved ``external`` source, so replay and restore reproduce
        it like any source-emitted arrival.  ``fee_budget`` is a
        :class:`~repro.experiment.FeeBudgetSpec` (kept spec-shaped so
        the record stays serializable).
        """
        if self._closed:
            raise ServiceError("session is closed; no further submissions")
        world = self.spec.world
        protocol = protocol or world.protocol
        if protocol == "mixed":
            protocol = PROTOCOLS[self.accepted % len(PROTOCOLS)]
        item = SourceItem(
            at=self.env.simulator.now - self.start,
            protocol=protocol,
            amount=amount if amount is not None else world.traffic.amount,
            fee_budget=fee_budget,
        )
        return self._accept(EXTERNAL_SOURCE, item)

    def serve(
        self,
        duration: float | None = None,
        max_swaps: int | None = None,
        checkpoint_path: str | None = None,
        checkpoint_every: int | None = None,
    ) -> int:
        """Accept source arrivals until the horizon, a swap cap, or
        source exhaustion; returns the total accepted so far.

        ``duration`` (default ``spec.duration``) is measured from
        *session start*, so a restored session given the same duration
        continues toward the same absolute deadline.  ``max_swaps``
        stops mid-flight without advancing to the horizon — the
        checkpoint-then-abandon primitive.  With ``checkpoint_path``,
        a checkpoint is written every ``checkpoint_every`` (default
        ``spec.checkpoint_every``) accepted swaps.
        """
        if self._closed:
            raise ServiceError("session is closed; cannot serve")
        self._ensure_sources()
        spec = self.spec
        horizon = duration if duration is not None else spec.duration
        deadline = None if horizon is None else self.start + horizon
        cap = max_swaps if max_swaps is not None else spec.max_swaps
        limit = spec.capacity if cap is None else min(cap, spec.capacity)
        every = (
            checkpoint_every if checkpoint_every is not None else spec.checkpoint_every
        )
        sources = self._sources
        lookahead = self._lookahead
        for index, source in enumerate(sources):
            if lookahead[index] is _UNSET:
                lookahead[index] = source.next()
        hit_limit = False
        while True:
            if self.accepted >= limit:
                hit_limit = True
                break
            best = None
            best_index = -1
            for index, item in enumerate(lookahead):
                if item is None:
                    continue
                if best is None or item.at < best.at:
                    best, best_index = item, index
            if best is None:
                break  # every live source exhausted
            if deadline is not None and self.start + best.at > deadline:
                break
            self._advance_to(self.start + best.at)
            self._accept(sources[best_index].name, best)
            lookahead[best_index] = sources[best_index].next()
            if (
                every is not None
                and checkpoint_path is not None
                and self.accepted % every == 0
            ):
                self.checkpoint(checkpoint_path)
        if not hit_limit and deadline is not None:
            self._advance_to(deadline)
        return self.accepted

    def drain(self, max_wall_s: float | None = 60.0) -> None:
        """Quiesce the session: wait out in-flight swaps (bounded by
        ``spec.drain_timeout`` sim-seconds), stop the miners, and run
        the queue dry under :meth:`~repro.sim.Simulator.run_until_idle`
        guards.  A non-idle stop is surfaced as a ``service/stall``
        trace event and in :attr:`stall`.  Closes the session.
        """
        if self._closed:
            return
        sim = self.env.simulator
        engine = self.engine
        deadline = sim.now + self.spec.drain_timeout
        while engine.completed < len(engine.requests) and sim.now < deadline:
            self._advance_to(min(deadline, sim.now + self.spec.metrics_interval))
        # Stop the perpetual reschedulers (miners, the obs sampler)
        # before running the queue dry — they are what keeps an open
        # session's queue deliberately non-empty.
        for miner in self.env.miners.values():
            miner.stop()
        if self._sampler is not None:
            self._sampler.stop()
        reason, processed = sim.run_until_idle(
            max_wall_s=max_wall_s, max_events=self.spec.world.engine.max_events
        )
        if reason != "idle":
            self.stall = {"reason": reason, "events": processed}
            collector = self.collector
            if collector is not None and collector.wants("service"):
                collector.emit("service", "stall", reason=reason, events=processed)
        # A drained queue with unfinished swaps (drain timeout hit, or a
        # stalled loop) force-finalizes those drivers, like engine.run.
        for request in engine.requests:
            if request.driver is not None and not request.driver.finished:
                request.driver._finish()
        self._closed = True

    def run(
        self,
        duration: float | None = None,
        max_swaps: int | None = None,
        checkpoint_path: str | None = None,
        checkpoint_every: int | None = None,
    ) -> ServiceResult:
        """Serve to the horizon, drain, and aggregate: the one-call
        session lifecycle (``repro serve``'s engine)."""
        self.serve(
            duration=duration,
            max_swaps=max_swaps,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
        )
        self.drain()
        return self.result()

    def result(self) -> ServiceResult:
        """Aggregate the session so far (callable mid-session too)."""
        raw = self.engine.result()
        return ServiceResult(
            spec=self.spec,
            metrics=raw.metrics,
            by_protocol=raw.by_protocol,
            accepted=self.accepted,
            windows=list(self.windows),
            epochs=self.epoch,
            stall=self.stall,
            chain_reorgs=raw.chain_reorgs,
            requests=raw.requests,
            metrics_registry=self.metrics_registry,
            alerts=self.monitor.alerts if self.monitor is not None else None,
        )

    def request_log(self) -> str:
        """The session's replayable request log (strict JSONL)."""
        return dump_request_log(self.spec, self.records)

    def save_request_log(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.request_log())

    # -- checkpoint / restore ----------------------------------------------

    def _digest(self) -> dict:
        metrics = self.engine._metrics
        return {
            "accepted": self.accepted,
            "completed": self.engine.completed,
            "committed": metrics.committed,
            "total_fees": metrics.total_fees,
            "events": self.env.simulator.events_processed,
        }

    def checkpoint(self, path: str | None = None) -> str:
        """Serialize the session's causal state; returns the document.

        The checkpoint is the session's complete deterministic input —
        spec, accepted records, per-source accept cursors, clock — plus
        a digest of the engine's live counters that :meth:`restore`
        verifies after replaying, so a restore that diverged (edited
        spec, wrong code version) fails loudly instead of silently
        forking the timeline.
        """
        if self._closed:
            raise ServiceError("session is closed; nothing left to checkpoint")
        self.epoch += 1
        document = {
            "schema": CKPT_SCHEMA,
            "clock": self.env.simulator.now,
            "epoch": self.epoch,
            "accepted": self.accepted,
            "spec": self.spec.to_dict(),
            "records": [record.to_dict() for record in self.records],
            "cursors": dict(sorted(self._accepts_by_source.items())),
            "digest": self._digest(),
        }
        text = json.dumps(document, sort_keys=True, separators=(",", ":")) + "\n"
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
        collector = self.collector
        if collector is not None and collector.wants("service"):
            collector.emit(
                "service", "checkpoint", epoch=self.epoch, accepted=self.accepted
            )
        if self._store is not None:
            wm = self.metrics_window()
            self._store.append_point(
                self._campaign_id,
                self.epoch,
                name=f"epoch-{self.epoch:04d}",
                coords={
                    "epoch": self.epoch,
                    "clock": self.env.simulator.now - self.start,
                    "accepted": self.accepted,
                },
                seed=self.spec.world.seed,
                row={
                    "total": wm.total,
                    "committed": wm.committed,
                    "commit_rate": wm.commit_rate,
                    "p50_latency": wm.p50_latency,
                    "p99_latency": wm.p99_latency,
                    "priced_out": wm.priced_out,
                    "completed": self.engine.completed,
                },
                artifact=text,
            )
        return text

    def _replay_records(self, records: list[RequestRecord]) -> None:
        for record in records:
            if record.seq != self.accepted:
                raise ServiceError(
                    f"request records out of order: seq {record.seq} arrived "
                    f"when the session had accepted {self.accepted}"
                )
            self._advance_to(self.start + record.at)
            self._accept(
                record.source,
                SourceItem(
                    at=record.at,
                    protocol=record.protocol,
                    amount=record.amount,
                    fee_budget=record.fee_budget,
                ),
            )

    @classmethod
    def restore(cls, path: str) -> "SwapService":
        """Resume a checkpointed session in a fresh process.

        Rebuilds the world from the spec echo, re-drives the recorded
        requests through the accept loop, advances to the checkpoint
        clock, verifies the digest, and fast-forwards every live source
        past its accept cursor — leaving a session whose subsequent
        behavior is byte-identical to the uninterrupted original.
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except OSError as exc:
            raise ServiceError(f"cannot read checkpoint {path!r}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise ServiceError(f"malformed checkpoint {path!r}: {exc}") from exc
        if not isinstance(data, dict):
            raise ServiceError(f"checkpoint {path!r} must be a JSON object")
        keys = set(data)
        if keys != _CKPT_KEYS:
            unknown = sorted(keys - _CKPT_KEYS)
            missing = sorted(_CKPT_KEYS - keys)
            raise ServiceError(
                f"malformed checkpoint {path!r}: unknown keys {unknown}, "
                f"missing keys {missing}"
            )
        if data["schema"] != CKPT_SCHEMA:
            raise ServiceError(
                f"unsupported checkpoint schema {data['schema']!r} "
                f"(expected {CKPT_SCHEMA!r})"
            )
        try:
            spec = ServiceSpec.from_dict(data["spec"])
        except Exception as exc:
            raise ServiceError(f"malformed checkpoint spec echo: {exc}") from exc
        records = [RequestRecord.from_dict(raw) for raw in data["records"]]
        if len(records) != int(data["accepted"]):
            raise ServiceError(
                f"checkpoint {path!r} declares {data['accepted']} accepted "
                f"requests but carries {len(records)} records"
            )
        service = cls(spec)
        service._replay_records(records)
        service._advance_to(float(data["clock"]))
        service.epoch = int(data["epoch"])
        digest = service._digest()
        if digest != data["digest"]:
            raise ServiceError(
                f"checkpoint digest mismatch after replay: checkpoint says "
                f"{data['digest']}, replay produced {digest} — the spec, "
                f"code version, or checkpoint file changed"
            )
        service._ensure_sources()
        cursors = data["cursors"]
        if not isinstance(cursors, dict):
            raise ServiceError("checkpoint cursors must be an object")
        for index, source in enumerate(service._sources):
            count = cursors.get(source.name, 0)
            if count:
                source.skip(int(count))
        return service

    @classmethod
    def replay(
        cls, spec: ServiceSpec, records: list[RequestRecord]
    ) -> ServiceResult:
        """Re-execute a recorded session to completion.

        Live sources are never consulted — the records *are* the
        arrivals — so a replayed session accepts exactly the logged
        requests, then runs out the original horizon and drains.  Since
        replay uses the same accept path as live serving, its result
        and re-dumped request log are byte-identical to the original's.
        """
        service = cls(spec)
        service._replay_records(records)
        if spec.duration is not None:
            service._advance_to(service.start + spec.duration)
        service.drain()
        return service.result()
