"""The declarative service-session schema: :class:`ServiceSpec`.

A service session is described the same way an experiment is — one
typed, strictly-serializable spec — but instead of a pre-scheduled
traffic list it names **traffic sources** (entries in the source
registry, :mod:`repro.service.sources`) that generate arrivals while
the session runs, plus the session's operational envelope: slot
capacity, serving horizon, checkpoint cadence, and the windowed-metrics
sampling knobs.

The world the session runs in (chains, fee market, latency, engine
options, observability) is an embedded :class:`ExperimentSpec` under
``world`` — service mode reuses the entire experiment schema for
everything that is not about *when the next swap arrives*.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..errors import SpecError
from ..experiment.spec import (
    ExperimentSpec,
    FeeBudgetSpec,
    spec_from_dict,
    spec_to_dict,
)

#: Source name reserved for swaps submitted through the in-process
#: :meth:`~repro.service.SwapService.submit_swap` API; request-log
#: records carry it so replay can re-drive manual submissions too.
EXTERNAL_SOURCE = "external"


@dataclass(frozen=True)
class SourceSpec:
    """One live traffic source feeding a service session.

    Attributes:
        kind: a registered source kind (see
            :func:`repro.service.sources.register_source`):
            ``"poisson"``, ``"diurnal"``, ``"flash-crowd"`` and
            ``"replay"`` ship built in.
        name: unique label for this source within the session; stamped
            into every request-log record it produces (and used as the
            checkpoint cursor key), so it must be stable across restore.
        protocol: protocol for this source's swaps — a registered name
            or ``"mixed"`` (round-robin over the four built-ins);
            empty inherits ``world.protocol``.
        rate: mean arrivals per sim-second (the *peak* rate for the
            diurnal source, the *baseline* rate for flash-crowd).
        amount: per-edge asset amount (None = ``world.traffic.amount``).
        fee_budget: per-swap fee envelope (None = unbudgeted).
        start: sim-seconds after session start before the first arrival
            can occur.
        period / trough: diurnal cycle length and the floor fraction of
            ``rate`` at the trough (``0 < trough <= 1``).
        burst_at / burst_every / burst_duration / burst_multiplier:
            flash-crowd bursts — the first burst begins ``burst_at``
            seconds into the session, repeats every ``burst_every``
            seconds (None = one burst only), lasts ``burst_duration``
            seconds, and multiplies the baseline rate by
            ``burst_multiplier`` while active.
        path: request-log file to re-emit (``"replay"`` sources only).
    """

    kind: str = "poisson"
    name: str = "source"
    protocol: str = ""
    rate: float = 4.0
    amount: int | None = None
    fee_budget: FeeBudgetSpec | None = None
    start: float = 0.0
    period: float = 60.0
    trough: float = 0.25
    burst_at: float = 5.0
    burst_every: float | None = None
    burst_duration: float = 3.0
    burst_multiplier: float = 4.0
    path: str = ""


@dataclass(frozen=True)
class ServiceSpec:
    """One complete, runnable, serializable service-session description.

    Attributes:
        name: session label (campaign identity in the datastore).
        world: the embedded :class:`ExperimentSpec` describing the
            simulated world; its ``traffic`` section sizes the
            pre-provisioned swap slots (participants per swap, default
            amount, participant name prefix) — ``num_swaps``/``rate``
            are ignored in service mode (arrivals come from sources).
        sources: the live traffic sources (may be empty for sessions
            driven purely through ``submit_swap``).
        capacity: pre-provisioned swap slots.  Genesis funding happens
            once, up front, so a session can accept at most ``capacity``
            swaps before it must be re-provisioned; the accept loop
            treats it as a hard max-swaps bound.
        duration: serving horizon in sim-seconds from session start
            (None = bounded only by ``max_swaps``/``capacity``).
        max_swaps: stop accepting after this many swaps (None = no cap
            below ``capacity``).
        checkpoint_every: write a checkpoint every N accepted swaps when
            the CLI/session is given a checkpoint path (None = only on
            demand).
        metrics_window: trailing sim-time window for the live windowed
            metrics (commit rate, p50/p99 latency, priced-out rate).
        metrics_interval: sim-seconds between windowed-metrics samples.
        drain_timeout: sim-seconds the post-serve drain may take before
            the session force-finalizes the remaining in-flight swaps.
    """

    name: str = "service"
    world: ExperimentSpec = field(default_factory=ExperimentSpec)
    sources: tuple[SourceSpec, ...] = ()
    capacity: int = 256
    duration: float | None = 30.0
    max_swaps: int | None = None
    checkpoint_every: int | None = None
    metrics_window: float = 10.0
    metrics_interval: float = 5.0
    drain_timeout: float = 120.0

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        return spec_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ServiceSpec":
        return spec_from_dict(cls, data)

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ServiceSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"service spec is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    # -- validation --------------------------------------------------------

    def resolved_protocol(self, source: SourceSpec) -> str:
        """The protocol a source actually submits under."""
        return source.protocol or self.world.protocol

    def validate(self) -> "ServiceSpec":
        """Check semantic constraints; returns self for chaining."""
        from ..engine.engine import registered_protocols
        from .sources import registered_sources

        def fail(message: str) -> None:
            raise SpecError(f"invalid service spec {self.name!r}: {message}")

        self.world.validate()
        if self.capacity < 1:
            fail("capacity must be at least 1")
        if self.duration is not None and self.duration <= 0:
            fail("duration must be positive")
        if self.duration is None and self.max_swaps is None:
            # capacity always bounds the session, but an unbounded-time
            # session that must fill every slot is almost never intended.
            fail("set duration or max_swaps (capacity alone is a slot pool)")
        if self.max_swaps is not None and self.max_swaps < 1:
            fail("max_swaps must be at least 1")
        if self.max_swaps is not None and self.max_swaps > self.capacity:
            fail(
                f"max_swaps ({self.max_swaps}) exceeds capacity "
                f"({self.capacity}): provision more slots"
            )
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            fail("checkpoint_every must be at least 1")
        if self.metrics_window <= 0:
            fail("metrics_window must be positive")
        if self.metrics_interval <= 0:
            fail("metrics_interval must be positive")
        if self.drain_timeout <= 0:
            fail("drain_timeout must be positive")
        seen: set[str] = set()
        for index, source in enumerate(self.sources):
            where = f"sources[{index}]"
            if not source.name:
                fail(f"{where}: name must be non-empty")
            if source.name == EXTERNAL_SOURCE:
                fail(
                    f"{where}: name {EXTERNAL_SOURCE!r} is reserved for "
                    f"submit_swap submissions"
                )
            if source.name in seen:
                fail(f"{where}: duplicate source name {source.name!r}")
            seen.add(source.name)
            if source.kind not in registered_sources():
                fail(
                    f"{where}: unknown source kind {source.kind!r}; "
                    f"registered: {registered_sources()}"
                )
            protocol = self.resolved_protocol(source)
            if protocol != "mixed" and protocol not in registered_protocols():
                fail(
                    f"{where}: unknown protocol {protocol!r}; expected "
                    f"'mixed' or one of {registered_protocols()}"
                )
            if (
                protocol in ("nolan", "mixed")
                and self.world.traffic.participants_per_swap != 2
            ):
                fail(
                    f"{where}: protocol {protocol!r} includes Nolan, which is "
                    f"strictly two-party: world.traffic.participants_per_swap "
                    f"must be 2"
                )
            if source.start < 0:
                fail(f"{where}: start must be non-negative")
            if source.amount is not None and source.amount < 1:
                fail(f"{where}: amount must be at least 1")
            if source.kind == "replay":
                if not source.path:
                    fail(f"{where}: replay sources need a path")
                continue
            if source.rate <= 0:
                fail(f"{where}: rate must be positive")
            if source.kind == "diurnal":
                if source.period <= 0:
                    fail(f"{where}: period must be positive")
                if not 0.0 < source.trough <= 1.0:
                    fail(f"{where}: trough must be within (0, 1]")
            if source.kind == "flash-crowd":
                if source.burst_at < 0:
                    fail(f"{where}: burst_at must be non-negative")
                if source.burst_every is not None and source.burst_every <= 0:
                    fail(f"{where}: burst_every must be positive")
                if source.burst_duration <= 0:
                    fail(f"{where}: burst_duration must be positive")
                if source.burst_multiplier < 1.0:
                    fail(f"{where}: burst_multiplier must be at least 1")
                if (
                    source.burst_every is not None
                    and source.burst_duration > source.burst_every
                ):
                    fail(f"{where}: burst_duration exceeds burst_every")
        return self
