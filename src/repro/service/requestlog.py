"""The replayable request log: strict JSONL of every accepted request.

A service session appends one :class:`RequestRecord` per accepted swap
— arrival time (relative to session start), source label, concrete
protocol, amount, and fee budget.  The log's header echoes the full
:class:`~repro.service.spec.ServiceSpec`, so a log is self-contained:
``repro replay LOG`` rebuilds the world from the echo and re-drives
every record through the same accept path the live session used,
reproducing outcomes exactly.

Serde is strict in both directions (fixed key sets, sorted keys,
compact separators), so ``dump → load → dump`` is byte-identical and
two sessions that accepted the same requests produce byte-identical
logs — the property the checkpoint/restore and replay tests pin with
a file-level compare.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Iterable

from ..errors import ServiceError
from ..experiment.spec import FeeBudgetSpec, spec_from_dict
from .spec import ServiceSpec

#: Request-log format identifier (bump on incompatible schema changes).
LOG_SCHEMA = "repro-service-log/1"

_HEADER_KEYS = frozenset({"schema", "spec", "records"})
_RECORD_KEYS = frozenset({"seq", "at", "source", "protocol", "amount", "fee_budget"})


@dataclass(frozen=True)
class RequestRecord:
    """One accepted request, exactly as the session admitted it.

    ``seq`` is the session-wide accept index (== the swap's slot and
    engine swap id); ``at`` is the arrival time relative to session
    start.  ``source`` is the emitting source's name (or ``external``
    for :meth:`~repro.service.SwapService.submit_swap` submissions);
    ``protocol`` is always concrete, never ``"mixed"``.
    """

    seq: int
    at: float
    source: str
    protocol: str
    amount: int
    fee_budget: FeeBudgetSpec | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "at": self.at,
            "source": self.source,
            "protocol": self.protocol,
            "amount": self.amount,
            "fee_budget": (
                None
                if self.fee_budget is None
                else {
                    "cap": self.fee_budget.cap,
                    "fee_rate": self.fee_budget.fee_rate,
                    "bump_factor": self.fee_budget.bump_factor,
                    "max_bumps": self.fee_budget.max_bumps,
                }
            ),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RequestRecord":
        if not isinstance(data, dict):
            raise ServiceError(
                f"malformed request record: expected an object, got "
                f"{type(data).__name__}"
            )
        keys = set(data)
        if keys != _RECORD_KEYS:
            unknown = sorted(keys - _RECORD_KEYS)
            missing = sorted(_RECORD_KEYS - keys)
            raise ServiceError(
                f"malformed request record: unknown keys {unknown}, "
                f"missing keys {missing}"
            )
        budget = data["fee_budget"]
        if budget is not None:
            try:
                budget = spec_from_dict(FeeBudgetSpec, budget, path="fee_budget")
            except Exception as exc:
                raise ServiceError(f"malformed request record: {exc}") from exc
        if not isinstance(data["seq"], int) or isinstance(data["seq"], bool):
            raise ServiceError("malformed request record: seq must be an int")
        if not isinstance(data["amount"], int) or isinstance(data["amount"], bool):
            raise ServiceError("malformed request record: amount must be an int")
        if not isinstance(data["source"], str) or not isinstance(
            data["protocol"], str
        ):
            raise ServiceError(
                "malformed request record: source and protocol must be strings"
            )
        return cls(
            seq=data["seq"],
            at=float(data["at"]),
            source=data["source"],
            protocol=data["protocol"],
            amount=data["amount"],
            fee_budget=budget,
        )


def dump_request_log(spec: ServiceSpec, records: Iterable[RequestRecord]) -> str:
    """Serialize a session's accepted requests as strict JSONL.

    One header line (schema + spec echo + record count), then one line
    per record in accept order.  Deterministic: sorted keys, compact
    separators, trailing newline.
    """
    rows = [record.to_dict() for record in records]
    header = {
        "schema": LOG_SCHEMA,
        "spec": spec.to_dict(),
        "records": len(rows),
    }
    lines = [json.dumps(header, sort_keys=True, separators=(",", ":"))]
    for row in rows:
        lines.append(json.dumps(row, sort_keys=True, separators=(",", ":")))
    return "\n".join(lines) + "\n"


def load_request_log(text: str) -> tuple[ServiceSpec, list[RequestRecord]]:
    """Parse a request log produced by :func:`dump_request_log` (strict)."""
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ServiceError("empty request log")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise ServiceError(f"malformed request-log header: {exc}") from exc
    if not isinstance(header, dict):
        raise ServiceError("request-log header must be a JSON object")
    keys = set(header)
    if keys != _HEADER_KEYS:
        unknown = sorted(keys - _HEADER_KEYS)
        missing = sorted(_HEADER_KEYS - keys)
        raise ServiceError(
            f"malformed request-log header: unknown keys {unknown}, "
            f"missing keys {missing}"
        )
    if header["schema"] != LOG_SCHEMA:
        raise ServiceError(
            f"unsupported request-log schema {header['schema']!r} "
            f"(expected {LOG_SCHEMA!r})"
        )
    try:
        spec = ServiceSpec.from_dict(header["spec"])
    except Exception as exc:
        raise ServiceError(f"malformed request-log spec echo: {exc}") from exc
    declared = int(header["records"])
    if declared != len(lines) - 1:
        raise ServiceError(
            f"request-log header declares {declared} records but file has "
            f"{len(lines) - 1}"
        )
    records: list[RequestRecord] = []
    for index, line in enumerate(lines[1:], start=2):
        try:
            raw = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ServiceError(
                f"malformed request record on line {index}: {exc}"
            ) from exc
        record = RequestRecord.from_dict(raw)
        if record.seq != index - 2:
            raise ServiceError(
                f"request records out of order on line {index}: "
                f"seq {record.seq}, expected {index - 2}"
            )
        records.append(record)
    return spec, records
