"""Named service-session presets, mirroring the experiment preset catalog.

Presets are factories so every call returns a fresh spec; register new
ones with :func:`register_service_preset` without editing this file.
The stock presets are CI-sized (tens of swaps, tens of sim-seconds) —
steady Poisson serving, a compressed diurnal cycle, and the flash-crowd
session the ``service-smoke`` CI job checkpoints, restores, and replays.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from ..errors import SpecError
from ..experiment.spec import (
    ChainsSpec,
    ExperimentSpec,
    FeeBudgetSpec,
    FeeMarketSpec,
    MetricsSpec,
    ObsSpec,
    TrafficSpec,
)
from .spec import ServiceSpec, SourceSpec

ServicePresetFactory = Callable[[], ServiceSpec]

_SERVICE_PRESETS: dict[str, tuple[ServicePresetFactory, str]] = {}


def register_service_preset(
    name: str,
    factory: ServicePresetFactory,
    description: str = "",
    replace: bool = False,
) -> None:
    """Register a named service preset (factory returning a fresh spec)."""
    if not replace and name in _SERVICE_PRESETS:
        raise SpecError(
            f"service preset {name!r} is already registered; "
            f"pass replace=True to override"
        )
    _SERVICE_PRESETS[name] = (factory, description)


def unregister_service_preset(name: str) -> None:
    """Remove a registered service preset (tests clean up)."""
    _SERVICE_PRESETS.pop(name, None)


def service_preset_names() -> tuple[str, ...]:
    """All registered service preset names, sorted."""
    return tuple(sorted(_SERVICE_PRESETS))


def service_preset_description(name: str) -> str:
    if name not in _SERVICE_PRESETS:
        raise SpecError(
            f"unknown service preset {name!r}; available: {service_preset_names()}"
        )
    return _SERVICE_PRESETS[name][1]


def service_preset_spec(name: str) -> ServiceSpec:
    """A fresh :class:`ServiceSpec` for a registered preset name."""
    if name not in _SERVICE_PRESETS:
        raise SpecError(
            f"unknown service preset {name!r}; available: {service_preset_names()}"
        )
    return _SERVICE_PRESETS[name][0]()


def _serve_world(seed: int) -> ExperimentSpec:
    """The shared CI-sized world: two fast chains + witness, live
    windowed metrics on, two-party swaps so every protocol can serve."""
    return ExperimentSpec(
        name="service-world",
        seed=seed,
        protocol="ac3wn",
        chains=ChainsSpec(count=2, block_interval=1.0, confirmation_depth=2),
        traffic=TrafficSpec(participants_per_swap=2),
        obs=ObsSpec(metrics=MetricsSpec(enabled=True)),
    )


def _serve_steady() -> ServiceSpec:
    return ServiceSpec(
        name="serve-steady",
        world=_serve_world(seed=1200),
        sources=(SourceSpec(kind="poisson", name="steady", rate=4.0),),
        capacity=128,
        duration=20.0,
        metrics_window=10.0,
        metrics_interval=5.0,
    )


def _serve_diurnal() -> ServiceSpec:
    return ServiceSpec(
        name="serve-diurnal",
        world=_serve_world(seed=1201),
        sources=(
            SourceSpec(
                kind="diurnal",
                name="daily",
                rate=6.0,
                period=10.0,
                trough=0.2,
            ),
        ),
        capacity=128,
        duration=20.0,
        metrics_window=10.0,
        metrics_interval=5.0,
    )


def _serve_flash_crowd() -> ServiceSpec:
    world = dataclasses.replace(
        _serve_world(seed=1202), fee_market=FeeMarketSpec(enabled=True)
    )
    return ServiceSpec(
        name="serve-flash-crowd",
        world=world,
        sources=(
            SourceSpec(
                kind="flash-crowd",
                name="crowd",
                rate=2.0,
                burst_at=4.0,
                burst_every=8.0,
                burst_duration=3.0,
                burst_multiplier=4.0,
                fee_budget=FeeBudgetSpec(cap=4000, fee_rate=None),
            ),
        ),
        capacity=128,
        duration=20.0,
        metrics_window=10.0,
        metrics_interval=5.0,
    )


register_service_preset(
    "serve-steady",
    _serve_steady,
    "steady Poisson serving at 4 swaps/s for 20 s (AC3WN)",
)
register_service_preset(
    "serve-diurnal",
    _serve_diurnal,
    "compressed day/night cycle: peak 6 swaps/s, trough 20%",
)
register_service_preset(
    "serve-flash-crowd",
    _serve_flash_crowd,
    "fee-market world with periodic 4x flash-crowd bursts",
)
