"""Service mode: the engine as a long-running, checkpointable swap server.

The public surface:

* :class:`SwapService` / :class:`SwapHandle` / :class:`ServiceResult` —
  the open-ended session, its in-process submission API, and its
  artifact (:mod:`repro.service.service`);
* :class:`ServiceSpec` / :class:`SourceSpec` — the declarative session
  schema (:mod:`repro.service.spec`);
* :func:`register_source` and the built-in sources — pluggable live
  traffic (:mod:`repro.service.sources`);
* :class:`RequestRecord` / :func:`dump_request_log` /
  :func:`load_request_log` — the replayable request log
  (:mod:`repro.service.requestlog`);
* :func:`register_service_preset` / :func:`service_preset_spec` — the
  named preset catalog (:mod:`repro.service.presets`).
"""

from .presets import (
    register_service_preset,
    service_preset_description,
    service_preset_names,
    service_preset_spec,
    unregister_service_preset,
)
from .requestlog import (
    LOG_SCHEMA,
    RequestRecord,
    dump_request_log,
    load_request_log,
)
from .service import CKPT_SCHEMA, ServiceResult, SwapHandle, SwapService
from .sources import (
    DiurnalSource,
    FlashCrowdSource,
    PoissonSource,
    ReplaySource,
    SourceItem,
    TrafficSource,
    register_source,
    registered_sources,
    source_description,
    source_factory,
    unregister_source,
)
from .spec import EXTERNAL_SOURCE, ServiceSpec, SourceSpec

__all__ = [
    "CKPT_SCHEMA",
    "DiurnalSource",
    "EXTERNAL_SOURCE",
    "FlashCrowdSource",
    "LOG_SCHEMA",
    "PoissonSource",
    "ReplaySource",
    "RequestRecord",
    "ServiceResult",
    "ServiceSpec",
    "SourceItem",
    "SourceSpec",
    "SwapHandle",
    "SwapService",
    "TrafficSource",
    "dump_request_log",
    "load_request_log",
    "register_service_preset",
    "register_source",
    "registered_sources",
    "service_preset_description",
    "service_preset_names",
    "service_preset_spec",
    "source_description",
    "source_factory",
    "unregister_service_preset",
    "unregister_source",
]
