"""repro — a reproduction of "Atomic Commitment Across Blockchains"
(Zakhary, Agrawal, El Abbadi; VLDB 2020).

The package implements the paper's AC3WN protocol (atomic cross-chain
commitment with a permissionless witness network), the AC3TW centralized
variant, and the Nolan/Herlihy HTLC baselines, on top of a from-scratch
substrate: deterministic discrete-event simulation, UTXO blockchains
with proof-of-work and forks, a smart-contract runtime, SPV light
clients, and pure-Python secp256k1.

Quickstart::

    from repro import build_scenario, two_party_swap, run_ac3wn

    graph = two_party_swap(chain_a="bitcoin-sim", chain_b="ethereum-sim")
    env = build_scenario(graph=graph, witness_chain_id="witness")
    env.warm_up()
    outcome = run_ac3wn(env, graph, witness_chain_id="witness")
    assert outcome.decision == "commit" and outcome.is_atomic
"""

from . import analysis, chain, core, crypto, experiment, sim, sweeps, workloads
from .core import (
    AC3TWDriver,
    AC3WNConfig,
    AC3WNDriver,
    AssetEdge,
    HerlihyDriver,
    NolanDriver,
    SwapEnvironment,
    SwapGraph,
    SwapOutcome,
    TrustedWitness,
    run_ac3tw,
    run_ac3wn,
    run_herlihy,
    run_nolan,
)
from .experiment import (
    ExperimentResult,
    ExperimentSpec,
    apply_overrides,
    preset_spec,
    run_experiment,
)
from .sweeps import (
    SweepAxis,
    SweepResult,
    SweepRunner,
    SweepSpec,
    run_sweep,
    sweep_spec,
)
from .workloads import (
    ScenarioEnvironment,
    build_scenario,
    directed_cycle,
    figure7a_cyclic,
    figure7b_disconnected,
    ring_with_diameter,
    two_party_swap,
)

__version__ = "1.0.0"

__all__ = [
    "AC3TWDriver",
    "AC3WNConfig",
    "AC3WNDriver",
    "AssetEdge",
    "ExperimentResult",
    "ExperimentSpec",
    "HerlihyDriver",
    "NolanDriver",
    "ScenarioEnvironment",
    "SwapEnvironment",
    "SwapGraph",
    "SwapOutcome",
    "SweepAxis",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "TrustedWitness",
    "analysis",
    "apply_overrides",
    "build_scenario",
    "chain",
    "core",
    "crypto",
    "directed_cycle",
    "experiment",
    "figure7a_cyclic",
    "figure7b_disconnected",
    "preset_spec",
    "ring_with_diameter",
    "run_ac3tw",
    "run_ac3wn",
    "run_experiment",
    "run_herlihy",
    "run_nolan",
    "run_sweep",
    "sim",
    "sweep_spec",
    "sweeps",
    "two_party_swap",
    "workloads",
]
