"""Event records and the simulator's priority queue.

Events are ordered by (time, sequence-number) so that simultaneous events
fire in scheduling order, which keeps runs deterministic.

The queue is built for the engine's hot path — hundreds of thousands of
schedule/cancel pairs from protocol-driver deadline timers:

* :class:`Event` is a ``__slots__`` class (no per-event ``__dict__``).
* ``cancel`` is O(1): it flags the event and bumps the queue's
  cancelled counter; nothing is sifted out of the heap at cancel time.
* ``__len__`` is O(1) (heap size minus cancelled-in-heap counter).
* When cancelled entries outnumber live ones the queue *compacts* —
  one linear filter plus ``heapify`` — so dead timeout events never pay
  per-event ``heappop`` churn on the way out.
* Cancelled events recovered by the queue are pooled and reused by
  later ``push`` calls.  A handle is therefore dead once its event has
  fired or been cancelled: keep no references past that point.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable

from ..errors import SchedulingError

#: Upper bound on pooled Event objects kept for reuse.
_POOL_MAX = 256
#: Compaction threshold: never compact below this many cancelled entries
#: (tiny heaps aren't worth the heapify).
_COMPACT_MIN = 64


class Event:
    """A scheduled callback.

    Attributes:
        time: simulation time at which the callback fires.
        seq: tie-breaker preserving scheduling order at equal times.
        action: zero-argument callable to invoke.
        label: human-readable description for traces.
        cancelled: set via :meth:`cancel`; cancelled events are skipped.
    """

    __slots__ = ("time", "seq", "action", "label", "cancelled", "_queue", "_in_heap")

    def __init__(
        self,
        time: float,
        seq: int,
        action: Callable[[], None],
        label: str = "",
        queue: "EventQueue | None" = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.action = action
        self.label = label
        self.cancelled = False
        self._queue = queue
        self._in_heap = False

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def cancel(self) -> None:
        """Prevent the event from firing (O(1); lazy deletion in the heap)."""
        if not self.cancelled:
            self.cancelled = True
            if self._queue is not None:
                self._queue.cancelled_total += 1
                if self._in_heap:
                    self._queue._note_cancelled()

    def __repr__(self) -> str:
        state = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time!r}, seq={self.seq}{state})"


class EventQueue:
    """A min-heap of :class:`Event` objects with O(1) lazy cancellation."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._cancelled_in_heap = 0
        self._pool: list[Event] = []
        #: Lifetime observability counters (see :meth:`stats`).
        self.cancelled_total = 0
        self.pool_reuses = 0
        self.compactions = 0
        self.max_pending = 0

    def __len__(self) -> int:
        return len(self._heap) - self._cancelled_in_heap

    def stats(self) -> dict:
        """Lifetime queue statistics, for the CLI's ``--profile`` report."""
        return {
            "pending": len(self),
            "max_pending": self.max_pending,
            "cancelled": self.cancelled_total,
            "cancelled_in_heap": self._cancelled_in_heap,
            "pool_reuses": self.pool_reuses,
            "pool_size": len(self._pool),
            "compactions": self.compactions,
        }

    def push(self, time: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` at absolute ``time`` and return its handle."""
        if time != time:  # NaN guard
            raise SchedulingError("event time must not be NaN")
        if self._pool:
            event = self._pool.pop()
            self.pool_reuses += 1
            event.time = time
            event.seq = next(self._counter)
            event.action = action
            event.label = label
            event.cancelled = False
        else:
            event = Event(time, next(self._counter), action, label, queue=self)
        event._in_heap = True
        heapq.heappush(self._heap, event)
        depth = len(self._heap) - self._cancelled_in_heap
        if depth > self.max_pending:
            self.max_pending = depth
        return event

    def pop(self) -> Event | None:
        """Remove and return the earliest non-cancelled event, or None."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)
            event._in_heap = False
            if event.cancelled:
                self._cancelled_in_heap -= 1
                self._recycle(event)
                continue
            return event
        return None

    def peek_time(self) -> float | None:
        """Time of the earliest pending event without removing it."""
        heap = self._heap
        while heap and heap[0].cancelled:
            event = heapq.heappop(heap)
            event._in_heap = False
            self._cancelled_in_heap -= 1
            self._recycle(event)
        return heap[0].time if heap else None

    def clear(self) -> None:
        """Drop all pending events."""
        for event in self._heap:
            event._in_heap = False
        self._heap.clear()
        self._cancelled_in_heap = 0

    # -- internal ----------------------------------------------------------

    def _note_cancelled(self) -> None:
        self._cancelled_in_heap += 1
        # Compact once dead entries dominate: one O(n) filter + heapify
        # replaces n log n of lazy heappop churn.
        if (
            self._cancelled_in_heap >= _COMPACT_MIN
            and self._cancelled_in_heap * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        self.compactions += 1
        live: list[Event] = []
        for event in self._heap:
            if event.cancelled:
                event._in_heap = False
                self._recycle(event)
            else:
                live.append(event)
        heapq.heapify(live)
        self._heap = live
        self._cancelled_in_heap = 0

    def _recycle(self, event: Event) -> None:
        if len(self._pool) < _POOL_MAX:
            event.action = _noop  # drop the closure so it can be collected
            self._pool.append(event)


def _noop() -> None:  # pragma: no cover - placeholder for pooled events
    pass


@dataclass(frozen=True)
class TraceRecord:
    """One entry of the simulator's execution trace (for debugging/tests)."""

    time: float
    label: str
