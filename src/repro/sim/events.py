"""Event records and the simulator's priority queue.

Events are ordered by (time, sequence-number) so that simultaneous events
fire in scheduling order, which keeps runs deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from ..errors import SchedulingError


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Attributes:
        time: simulation time at which the callback fires.
        seq: tie-breaker preserving scheduling order at equal times.
        action: zero-argument callable to invoke.
        label: human-readable description for traces.
        cancelled: set via :meth:`cancel`; cancelled events are skipped.
    """

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Prevent the event from firing (lazy deletion in the heap)."""
        self.cancelled = True


class EventQueue:
    """A min-heap of :class:`Event` objects with lazy cancellation."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def push(self, time: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` at absolute ``time`` and return its handle."""
        if time != time:  # NaN guard
            raise SchedulingError("event time must not be NaN")
        event = Event(time=time, seq=next(self._counter), action=action, label=label)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event | None:
        """Remove and return the earliest non-cancelled event, or None."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> float | None:
        """Time of the earliest pending event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def clear(self) -> None:
        """Drop all pending events."""
        self._heap.clear()


@dataclass(frozen=True)
class TraceRecord:
    """One entry of the simulator's execution trace (for debugging/tests)."""

    time: float
    label: str
