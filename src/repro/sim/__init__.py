"""Discrete-event simulation substrate: clock, events, network, failures."""

from .events import Event, EventQueue, TraceRecord
from .failures import CrashWindow, FailureInjector, FailureSchedule
from .network import LatencyModel, Network, NetworkStats, Partition
from .node import Node
from .rng import RngRegistry, RngStream
from .simulator import Simulator

__all__ = [
    "CrashWindow",
    "Event",
    "EventQueue",
    "FailureInjector",
    "FailureSchedule",
    "LatencyModel",
    "Network",
    "NetworkStats",
    "Node",
    "Partition",
    "RngRegistry",
    "RngStream",
    "Simulator",
    "TraceRecord",
]
