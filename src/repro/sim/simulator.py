"""The discrete-event simulation loop.

The :class:`Simulator` owns the virtual clock and the event queue.  All
other subsystems (chains, miners, networks, protocol drivers, failure
injectors) schedule callbacks on it.  Time is a float in abstract
"seconds"; nothing in the library depends on wall-clock time.
"""

from __future__ import annotations

from typing import Callable

from ..errors import SchedulingError
from .events import Event, EventQueue, TraceRecord
from .rng import RngRegistry, RngStream


class Simulator:
    """A deterministic discrete-event simulator.

    Example:
        >>> sim = Simulator(seed=7)
        >>> fired = []
        >>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
        >>> sim.run()
        >>> fired
        [5.0]
    """

    def __init__(self, seed: int = 0, trace: bool = False) -> None:
        self.now: float = 0.0
        self.rng = RngRegistry(seed)
        self._queue = EventQueue()
        self._trace_enabled = trace
        self.trace: list[TraceRecord] = []
        self._events_processed = 0

    # -- scheduling ----------------------------------------------------------

    def schedule(self, delay: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SchedulingError(f"cannot schedule {delay:.3f}s in the past")
        return self._queue.push(self.now + delay, action, label)

    def schedule_at(self, time: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` at an absolute simulation time."""
        if time < self.now:
            raise SchedulingError(
                f"cannot schedule at {time:.3f}, current time is {self.now:.3f}"
            )
        return self._queue.push(time, action, label)

    # -- execution -----------------------------------------------------------

    def step(self) -> bool:
        """Run the single earliest event. Returns False if queue was empty."""
        event = self._queue.pop()
        if event is None:
            return False
        if event.time < self.now:
            raise SchedulingError("event queue returned an event from the past")
        self.now = event.time
        if self._trace_enabled and event.label:
            self.trace.append(TraceRecord(self.now, event.label))
        self._events_processed += 1
        event.action()
        return True

    def run(self, max_events: int = 10_000_000) -> int:
        """Run until the event queue drains. Returns events processed."""
        processed = 0
        while processed < max_events and self.step():
            processed += 1
        if processed >= max_events:
            raise SchedulingError(f"simulation exceeded {max_events} events")
        return processed

    def run_until(self, time: float, max_events: int = 10_000_000) -> int:
        """Run events with time <= ``time``; advances clock to ``time``.

        Events scheduled after ``time`` stay queued, so the simulation can
        be resumed with further ``run_until`` / ``run`` calls.
        """
        processed = 0
        while processed < max_events:
            next_time = self._queue.peek_time()
            if next_time is None or next_time > time:
                break
            self.step()
            processed += 1
        if processed >= max_events:
            raise SchedulingError(f"simulation exceeded {max_events} events")
        if time > self.now:
            self.now = time
        return processed

    def run_until_idle(
        self,
        max_wall_s: float | None = None,
        max_events: int = 10_000_000,
    ) -> tuple[str, int]:
        """Run until the queue drains, with wall-clock and event guards.

        The open-ended-session counterpart of :meth:`run`: instead of
        raising when a guard trips, it returns ``(reason, processed)``
        where ``reason`` is ``"idle"`` (queue empty), ``"events"``
        (``max_events`` executed), or ``"wall"`` (``max_wall_s`` of real
        time elapsed) — so a service session can surface a stalled event
        loop as an observable condition rather than an exception.

        The wall-clock guard is checked every 1024 events to keep the
        hot loop syscall-free; it exists to bound *pathological* spins
        (a healthy session always ends via ``"idle"`` or ``"events"``,
        both of which are deterministic).
        """
        import time as _time

        start = _time.monotonic() if max_wall_s is not None else 0.0
        processed = 0
        while True:
            if processed >= max_events:
                return ("events", processed)
            if (
                max_wall_s is not None
                and processed % 1024 == 0
                and _time.monotonic() - start >= max_wall_s
            ):
                return ("wall", processed)
            if not self.step():
                return ("idle", processed)
            processed += 1

    def run_until_true(
        self,
        predicate: Callable[[], bool],
        timeout: float,
        max_events: int = 10_000_000,
    ) -> bool:
        """Run until ``predicate()`` holds or ``timeout`` is reached.

        Returns True iff the predicate became true.  The predicate is
        checked once per simulation *timestamp* — after all events at a
        given time have fired — so it may inspect any simulation state
        without paying a per-event re-evaluation cost on hot loops.
        The queue's next-event time is peeked exactly once per event and
        reused for both the deadline check and the new-timestamp check.
        """
        deadline = self.now + timeout
        if predicate():
            return True
        processed = 0
        next_time = self._queue.peek_time()
        while next_time is not None and next_time <= deadline:
            if processed >= max_events:
                raise SchedulingError(f"simulation exceeded {max_events} events")
            self.step()
            processed += 1
            next_time = self._queue.peek_time()
            # Only re-check once the batch of events at self.now is done:
            # the next event (if any) sits at a strictly later timestamp.
            if (next_time is None or next_time > self.now) and predicate():
                return True
        if deadline > self.now:
            self.now = deadline
        return predicate()

    # -- utilities -----------------------------------------------------------

    def stream(self, name: str) -> RngStream:
        """Named deterministic RNG stream (see :mod:`repro.sim.rng`)."""
        return self.rng.stream(name)

    @property
    def pending_events(self) -> int:
        """Number of queued, non-cancelled events."""
        return len(self._queue)

    @property
    def events_processed(self) -> int:
        """Total events executed so far."""
        return self._events_processed

    def queue_stats(self) -> dict:
        """Event-loop statistics: processed count plus the queue's
        lifetime counters (cancellations, pool reuse, compactions)."""
        return {"events_processed": self._events_processed, **self._queue.stats()}
