"""Message-passing network model with latency, loss, and partitions.

The paper's motivating failure mode is an *asynchronous environment where
crash failures and network delays are the norm* (Section 1).  This module
gives experiments precise control over both: per-link latency is drawn
from a configurable distribution, and partitions can isolate groups of
nodes for intervals of simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from ..errors import NetworkError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .node import Node
    from .simulator import Simulator


@dataclass(frozen=True)
class LatencyModel:
    """Distribution of one-way message latencies.

    ``base`` is the deterministic floor; ``jitter`` adds a uniform random
    component in [0, jitter].  With ``jitter=0`` the network is fully
    deterministic, which most unit tests use.
    """

    base: float = 0.05
    jitter: float = 0.0

    def sample(self, rng) -> float:
        if self.jitter <= 0:
            return self.base
        return self.base + rng.uniform(0.0, self.jitter)


@dataclass
class Partition:
    """A network partition separating ``group`` from everyone else."""

    group: frozenset[str]
    until: float  # absolute sim time at which the partition heals

    def separates(self, a: str, b: str, now: float) -> bool:
        if now >= self.until:
            return False
        return (a in self.group) != (b in self.group)


@dataclass
class NetworkStats:
    """Counters describing network activity (used by tests and benches)."""

    sent: int = 0
    delivered: int = 0
    dropped_partition: int = 0
    dropped_crashed: int = 0
    dropped_loss: int = 0


class Network:
    """Routes messages between registered nodes over the simulator clock."""

    def __init__(
        self,
        simulator: "Simulator",
        latency: LatencyModel | None = None,
        loss_rate: float = 0.0,
        name: str = "net",
    ) -> None:
        self.simulator = simulator
        self.latency = latency or LatencyModel()
        self.loss_rate = loss_rate
        self.name = name
        self._nodes: dict[str, "Node"] = {}
        self._partitions: list[Partition] = []
        self._rng = simulator.stream(f"network/{name}")
        self.stats = NetworkStats()

    # -- membership ----------------------------------------------------------

    def register(self, node: "Node") -> None:
        """Add a node to the network; its name must be unique."""
        if node.name in self._nodes:
            raise NetworkError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node

    def node(self, name: str) -> "Node":
        if name not in self._nodes:
            raise NetworkError(f"unknown node {name!r}")
        return self._nodes[name]

    @property
    def node_names(self) -> list[str]:
        return sorted(self._nodes)

    # -- partitions ----------------------------------------------------------

    def partition(self, group: set[str], duration: float) -> Partition:
        """Isolate ``group`` from all other nodes for ``duration`` seconds."""
        part = Partition(frozenset(group), self.simulator.now + duration)
        self._partitions.append(part)
        return part

    def heal_all(self) -> None:
        """Immediately remove every active partition."""
        self._partitions.clear()

    def _is_partitioned(self, sender: str, recipient: str) -> bool:
        now = self.simulator.now
        self._partitions = [p for p in self._partitions if now < p.until]
        return any(p.separates(sender, recipient, now) for p in self._partitions)

    # -- messaging -----------------------------------------------------------

    def send(self, sender: str, recipient: str, payload: Any) -> None:
        """Send ``payload`` from ``sender`` to ``recipient`` asynchronously.

        Delivery is dropped silently if the recipient is crashed at
        delivery time, a partition separates the endpoints at send time,
        or the loss model fires — mirroring best-effort gossip networks.
        """
        if recipient not in self._nodes:
            raise NetworkError(f"unknown recipient {recipient!r}")
        self.stats.sent += 1
        if self._is_partitioned(sender, recipient):
            self.stats.dropped_partition += 1
            return
        if self.loss_rate > 0 and self._rng.random() < self.loss_rate:
            self.stats.dropped_loss += 1
            return
        delay = self.latency.sample(self._rng)
        target = self._nodes[recipient]

        def deliver() -> None:
            if target.crashed:
                self.stats.dropped_crashed += 1
                return
            self.stats.delivered += 1
            target.on_message(sender, payload)

        self.simulator.schedule(delay, deliver, label=f"deliver {sender}->{recipient}")

    def broadcast(self, sender: str, payload: Any) -> None:
        """Send ``payload`` to every node except the sender."""
        for name in self.node_names:
            if name != sender:
                self.send(sender, name, payload)
