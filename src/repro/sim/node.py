"""Actor base class for simulation participants.

Miners, protocol participants, and witness services are all nodes: they
receive messages from a :class:`~repro.sim.network.Network`, keep local
state, and schedule their own timers on the simulator.  Crash failures
flip :attr:`crashed`; a crashed node neither receives messages nor fires
timers until it recovers.
"""

from __future__ import annotations

from typing import Any, Callable

from .network import Network
from .simulator import Simulator


class Node:
    """A named actor attached to a simulator and (optionally) a network.

    Slotted: thousands of nodes exist in a large engine run, and the base
    attributes are fixed.  Subclasses that declare extra attributes without
    their own ``__slots__`` simply regain a ``__dict__`` — that is fine.
    """

    __slots__ = (
        "simulator",
        "name",
        "network",
        "crashed",
        "inbox_log",
        "_recovery_listeners",
        "collector",
    )

    def __init__(self, simulator: Simulator, name: str, network: Network | None = None) -> None:
        self.simulator = simulator
        self.name = name
        self.network = network
        self.crashed = False
        self.inbox_log: list[tuple[float, str, Any]] = []
        self._recovery_listeners: list[Callable[[], None]] = []
        #: Optional flight recorder (set by :func:`repro.obs.instrument`);
        #: crash/recovery windows are emitted when attached.
        self.collector = None
        if network is not None:
            network.register(self)

    # -- messaging -----------------------------------------------------------

    def send(self, recipient: str, payload: Any) -> None:
        """Send a message through the attached network."""
        if self.network is None:
            raise RuntimeError(f"node {self.name!r} has no network attached")
        if self.crashed:
            return
        self.network.send(self.name, recipient, payload)

    def on_message(self, sender: str, payload: Any) -> None:
        """Handle a delivered message.  Subclasses override :meth:`handle`."""
        if self.crashed:
            return
        self.inbox_log.append((self.simulator.now, sender, payload))
        self.handle(sender, payload)

    def handle(self, sender: str, payload: Any) -> None:
        """Process a message; default is to record it only."""

    # -- timers ----------------------------------------------------------------

    def after(self, delay: float, action: Callable[[], None], label: str = "") -> None:
        """Run ``action`` after ``delay`` unless this node is crashed then."""

        def guarded() -> None:
            if not self.crashed:
                action()

        self.simulator.schedule(delay, guarded, label or f"{self.name} timer")

    # -- failures ----------------------------------------------------------------

    def crash(self) -> None:
        """Crash the node: it stops receiving messages and firing timers."""
        if self.collector is not None and not self.crashed:
            self.collector.emit("sim", "crash", actor=self.name)
        self.crashed = True

    def recover(self) -> None:
        """Recover from a crash; messages sent while crashed stay lost.

        Fires the registered recovery listeners — event-driven protocol
        drivers re-examine the world the moment their participant comes
        back, instead of polling for it.
        """
        if self.collector is not None and self.crashed:
            self.collector.emit("sim", "recover", actor=self.name)
        self.crashed = False
        for listener in list(self._recovery_listeners):
            listener()

    def add_recovery_listener(self, listener: Callable[[], None]) -> None:
        """Call ``listener`` (no args) every time this node recovers."""
        self._recovery_listeners.append(listener)

    def remove_recovery_listener(self, listener: Callable[[], None]) -> None:
        """Remove a recovery listener (no-op if absent)."""
        if listener in self._recovery_listeners:
            self._recovery_listeners.remove(listener)

    def __repr__(self) -> str:
        status = "crashed" if self.crashed else "up"
        return f"{type(self).__name__}({self.name!r}, {status})"
