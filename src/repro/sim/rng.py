"""Deterministic random-number streams for reproducible simulations.

Every stochastic choice in the simulator (block intervals, network
latencies, failure times, workload generation) draws from a named stream
derived from a single experiment seed.  Two runs with the same seed are
bit-for-bit identical regardless of the order in which subsystems are
constructed, because each subsystem gets its own independent stream.
"""

from __future__ import annotations

import random

from ..crypto.hashing import hash_str


class RngStream:
    """A named, seeded pseudo-random stream (thin wrapper over random.Random)."""

    def __init__(self, seed: int, name: str) -> None:
        material = hash_str(f"{seed}/{name}")
        self._rng = random.Random(int.from_bytes(material, "big"))
        self.name = name

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high]."""
        return self._rng.uniform(low, high)

    def expovariate(self, rate: float) -> float:
        """Exponential inter-arrival time with the given rate (1/mean)."""
        if rate <= 0:
            raise ValueError("rate must be positive")
        return self._rng.expovariate(rate)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._rng.randint(low, high)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._rng.random()

    def choice(self, seq):
        """Uniformly choose one element of a non-empty sequence."""
        return self._rng.choice(seq)

    def sample(self, seq, k: int):
        """Sample ``k`` distinct elements."""
        return self._rng.sample(seq, k)

    def shuffle(self, seq: list) -> None:
        """Shuffle a list in place."""
        self._rng.shuffle(seq)

    def bytes(self, n: int) -> bytes:
        """Return ``n`` pseudo-random bytes."""
        return self._rng.randbytes(n)

    def gauss(self, mu: float, sigma: float) -> float:
        """Normal variate."""
        return self._rng.gauss(mu, sigma)


class RngRegistry:
    """Factory of independent named streams derived from one seed."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: dict[str, RngStream] = {}

    def stream(self, name: str) -> RngStream:
        """Return the (cached) stream for ``name``."""
        if name not in self._streams:
            self._streams[name] = RngStream(self.seed, name)
        return self._streams[name]
