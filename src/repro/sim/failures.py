"""Failure injection: scheduled crashes, recoveries, and partitions.

Experiment E7 (the paper's Section 1 motivation) crashes a participant at
a chosen protocol step and observes whether the commitment protocol
preserves all-or-nothing atomicity.  The injectors here make such
schedules declarative and reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .network import Network
from .node import Node
from .simulator import Simulator


@dataclass(frozen=True)
class CrashWindow:
    """Crash a node at ``start`` and (optionally) recover at ``end``."""

    node_name: str
    start: float
    end: float | None = None  # None = never recovers

    def duration(self) -> float:
        if self.end is None:
            return float("inf")
        return self.end - self.start


@dataclass
class FailureSchedule:
    """A declarative set of crash windows and partition windows."""

    crashes: list[CrashWindow] = field(default_factory=list)
    partitions: list[tuple[frozenset[str], float, float]] = field(default_factory=list)

    def crash(self, node_name: str, start: float, end: float | None = None) -> "FailureSchedule":
        """Add a crash window (fluent)."""
        self.crashes.append(CrashWindow(node_name, start, end))
        return self

    def partition(self, group: set[str], start: float, end: float) -> "FailureSchedule":
        """Add a partition window isolating ``group`` (fluent)."""
        self.partitions.append((frozenset(group), start, end))
        return self


class FailureInjector:
    """Applies a :class:`FailureSchedule` to live nodes and a network."""

    def __init__(self, simulator: Simulator, network: Network | None = None) -> None:
        self.simulator = simulator
        self.network = network
        self.applied: list[str] = []

    def apply(self, schedule: FailureSchedule, nodes: dict[str, Node]) -> None:
        """Schedule every crash and partition in ``schedule``.

        ``nodes`` maps node names to node objects; unknown names raise
        KeyError immediately rather than mid-simulation.
        """
        for window in schedule.crashes:
            node = nodes[window.node_name]
            self._schedule_crash(node, window)
        for group, start, end in schedule.partitions:
            self._schedule_partition(group, start, end)

    def _schedule_crash(self, node: Node, window: CrashWindow) -> None:
        def do_crash() -> None:
            node.crash()
            self.applied.append(f"crash {node.name} @ {self.simulator.now:.3f}")

        # Windows starting in the past take effect immediately, so
        # schedules can be written relative to "the beginning" even after
        # a warm-up advanced the clock.
        start = max(window.start, self.simulator.now)
        self.simulator.schedule_at(start, do_crash, label=f"crash {node.name}")
        if window.end is not None:
            end = max(window.end, start)

            def do_recover() -> None:
                node.recover()
                self.applied.append(f"recover {node.name} @ {self.simulator.now:.3f}")

            self.simulator.schedule_at(end, do_recover, label=f"recover {node.name}")

    def _schedule_partition(self, group: frozenset[str], start: float, end: float) -> None:
        if self.network is None:
            raise RuntimeError("partition injection requires a network")

        def do_partition() -> None:
            self.network.partition(set(group), end - self.simulator.now)
            self.applied.append(f"partition {sorted(group)} @ {self.simulator.now:.3f}")

        start = max(start, self.simulator.now)
        self.simulator.schedule_at(start, do_partition, label=f"partition {sorted(group)}")
