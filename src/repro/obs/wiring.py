"""Attaching a flight recorder to a live world.

:func:`instrument` is the single place that knows where every emit site
lives: chain block/reorg listeners, mempool collector slots, node
crash/recovery slots, and the engine (which in turn threads the
collector into every driver it launches).  Wiring is category-aware —
listeners for categories the collector filters out are never even
registered, so a ``categories=("swap",)`` recorder pays nothing for
block traffic.
"""

from __future__ import annotations

from .trace import TraceCollector


def instrument(collector: TraceCollector, env, engine=None) -> TraceCollector:
    """Wire ``collector`` into a world (and optionally its engine).

    Safe to call before any swap is submitted; returns the collector for
    chaining.  The wiring is additive — nothing about the simulation's
    behaviour changes, only what gets observed.
    """
    collector.bind(env.simulator)

    if collector.wants("chain"):
        for chain_id, chain in sorted(env.chains.items()):

            def on_block(block, chain_id=chain_id):
                collector.emit(
                    "chain",
                    "block",
                    chain_id=chain_id,
                    height=block.header.height,
                    messages=len(block.messages),
                )

            def on_reorg(abandoned, adopted, chain_id=chain_id):
                collector.emit(
                    "chain",
                    "reorg",
                    chain_id=chain_id,
                    abandoned=abandoned,
                    adopted=adopted,
                )

            chain.add_block_listener(on_block)
            chain.add_reorg_listener(on_reorg)

    if collector.wants("mempool"):
        for pool in env.mempools.values():
            pool.collector = collector

    if collector.wants("sim"):
        for participant in env.participants.values():
            participant.collector = collector

    if engine is not None:
        engine.attach_collector(collector)
    return collector
