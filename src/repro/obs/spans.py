"""Per-swap span reconstruction over a recorded trace.

A :class:`SwapTimeline` folds the flat event stream back into the shape
an operator thinks in: *phase spans* (how long the swap sat in deploy /
commit / settle, and how many blocks each involved chain produced while
it waited), the per-contract deploy→confirm→settle milestones, the fee
churn (bumps, evictions, priced-out transitions), and every attack the
swap suffered.  Reorgs on the swap's chains during its lifetime are
attached as context even though reorg events carry no swap attribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..errors import TraceError
from .trace import TraceEvent


@dataclass
class PhaseSpan:
    """One contiguous phase of a swap's state machine."""

    name: str
    start: float
    end: float | None = None  # None: the run ended inside this phase
    #: Blocks connected per involved chain while the span was open.
    blocks: dict[str, int] = field(default_factory=dict)

    @property
    def duration(self) -> float | None:
        return None if self.end is None else self.end - self.start


@dataclass
class SwapTimeline:
    """Everything the trace knows about one swap, folded into spans."""

    swap_id: int
    protocol: str | None = None
    chains: tuple[str, ...] = ()
    started_at: float | None = None
    finished_at: float | None = None
    decision: str | None = None
    atomic: bool | None = None
    priced_out: bool = False
    fees_paid: int = 0
    evictions: int = 0
    fee_bumps: int = 0
    spans: list[PhaseSpan] = field(default_factory=list)
    #: Final contract milestones, keyed by edge key (from the outcome event).
    contracts: dict[str, dict] = field(default_factory=dict)
    #: Total blocks connected per involved chain during the swap's lifetime.
    blocks_waited: dict[str, int] = field(default_factory=dict)
    #: Events attributed to this swap (phase, fee, mempool, adversary...).
    events: list[TraceEvent] = field(default_factory=list)
    #: Adversary events targeting this swap (subset of :attr:`events`).
    attacks: list[TraceEvent] = field(default_factory=list)
    #: Reorgs on involved chains during the swap's lifetime (context:
    #: reorg events carry no swap attribution of their own).
    reorgs: list[TraceEvent] = field(default_factory=list)

    @classmethod
    def from_events(cls, events: Iterable[TraceEvent], swap_id: int) -> "SwapTimeline":
        """Fold a trace into the timeline of ``swap_id``.

        Raises :class:`~repro.errors.TraceError` when the trace holds no
        event for that swap (wrong id, or the ring buffer dropped it).
        """
        timeline = cls(swap_id=swap_id)
        mine: list[TraceEvent] = []
        chain_events: list[TraceEvent] = []
        for event in events:
            if event.swap_id == swap_id:
                mine.append(event)
            elif event.category == "chain":
                chain_events.append(event)
        if not mine:
            raise TraceError(f"trace contains no events for swap {swap_id}")
        timeline.events = mine

        for event in mine:
            if event.category == "swap" and event.kind == "launch":
                timeline.protocol = event.payload.get("protocol")
                timeline.chains = tuple(event.payload.get("chains", ()))
                timeline.started_at = event.time
            elif event.category == "swap" and event.kind == "phase":
                if timeline.spans and timeline.spans[-1].end is None:
                    timeline.spans[-1].end = event.time
                timeline.spans.append(
                    PhaseSpan(name=event.payload.get("phase", "?"), start=event.time)
                )
            elif event.category == "swap" and event.kind == "outcome":
                data = event.payload
                timeline.finished_at = event.time
                timeline.decision = data.get("decision")
                timeline.atomic = data.get("atomic")
                timeline.priced_out = bool(data.get("priced_out", False))
                timeline.fees_paid = int(data.get("fees_paid", 0))
                timeline.evictions = int(data.get("evictions", 0))
                timeline.fee_bumps = int(data.get("fee_bumps", 0))
                timeline.contracts = dict(data.get("contracts", {}))
            elif event.category == "adversary":
                timeline.attacks.append(event)

        if timeline.spans and timeline.spans[-1].end is None:
            timeline.spans[-1].end = timeline.finished_at

        # Blocks connected / reorgs suffered on involved chains while the
        # swap was in flight — the "blocks waited" columns of the spans.
        start = timeline.started_at
        end = timeline.finished_at
        context_end = end
        if timeline.attacks:
            # An attack can resolve (reorg adopt, exploit) after the
            # swap's own outcome: keep the reorg-context window open.
            last_attack = max(event.time for event in timeline.attacks)
            context_end = (
                last_attack if context_end is None else max(context_end, last_attack)
            )
        # Involved chains: the swap's asset chains, plus any chain an
        # adversary attacked it on (the witness chain, for reorg
        # attacks) — reorgs there are exactly the context that matters.
        involved = set(timeline.chains) | {
            event.chain_id for event in timeline.attacks if event.chain_id
        }
        for chain_id in timeline.chains:
            timeline.blocks_waited[chain_id] = 0
        for event in chain_events:
            if involved and event.chain_id not in involved:
                continue
            if start is not None and event.time < start:
                continue
            if event.kind == "block":
                if end is not None and event.time > end:
                    continue
                if event.chain_id is not None:
                    counts = timeline.blocks_waited
                    counts[event.chain_id] = counts.get(event.chain_id, 0) + 1
                for span in timeline.spans:
                    span_end = span.end if span.end is not None else float("inf")
                    if span.start <= event.time <= span_end and event.chain_id:
                        span.blocks[event.chain_id] = (
                            span.blocks.get(event.chain_id, 0) + 1
                        )
                        break
            elif event.kind == "reorg":
                if context_end is not None and event.time > context_end:
                    continue
                timeline.reorgs.append(event)
        return timeline

    # -- rendering -----------------------------------------------------------

    def render(self) -> str:
        """Human-readable timeline (the ``repro trace --swap`` view)."""
        lines: list[str] = []
        protocol = self.protocol or "?"
        decision = self.decision or "unfinished"
        header = f"swap {self.swap_id} ({protocol}) — {decision}"
        if self.started_at is not None and self.finished_at is not None:
            header += f", latency {self.finished_at - self.started_at:.2f}s"
        flags = []
        if self.priced_out:
            flags.append("priced-out")
        if self.atomic is False:
            flags.append("NON-ATOMIC")
        if self.attacks:
            # Count attack *instances* (launch/corrupt/eclipse), not the
            # follow-up won/lost/exploit events of the same attack.
            launched = sum(
                1
                for event in self.attacks
                if event.kind in ("launch", "corrupt", "eclipse")
            )
            flags.append(f"attacked x{launched or len(self.attacks)}")
        if flags:
            header += "  [" + ", ".join(flags) + "]"
        lines.append(header)
        lines.append(
            f"  fees={self.fees_paid} bumps={self.fee_bumps} "
            f"evictions={self.evictions} chains={','.join(self.chains) or '?'}"
        )
        if self.spans:
            lines.append("  phases:")
            width = max(len(span.name) for span in self.spans)
            for span in self.spans:
                end = f"{span.end:10.3f}" if span.end is not None else "       ..."
                duration = (
                    f"{span.duration:9.3f}s" if span.duration is not None else "      open"
                )
                blocks = " ".join(
                    f"{chain}={count}" for chain, count in sorted(span.blocks.items())
                )
                suffix = f"   blocks: {blocks}" if blocks else ""
                lines.append(
                    f"    {span.name:<{width}}  [{span.start:10.3f} → {end}] "
                    f"{duration}{suffix}"
                )
        if self.contracts:
            lines.append("  contracts:")
            width = max(len(key) for key in self.contracts)
            for key in sorted(self.contracts):
                record = self.contracts[key]
                milestones = " ".join(
                    f"{stamp}={record[stamp]:.3f}"
                    for stamp in ("deployed_at", "confirmed_at", "settled_at")
                    if record.get(stamp) is not None
                )
                lines.append(
                    f"    {key:<{width}}  state={record.get('state', '?')} {milestones}"
                )
        detail = [
            event
            for event in self.events
            if not (event.category == "swap" and event.kind in ("launch", "phase"))
        ]
        context = self.reorgs
        if detail or context:
            lines.append("  events:")
            for event in sorted(detail + context, key=lambda e: e.seq):
                where = f" {event.chain_id}" if event.chain_id else ""
                who = f" actor={event.actor}" if event.actor else ""
                payload = format_payload(event.payload)
                lines.append(
                    f"    t={event.time:10.3f}  {event.category}/{event.kind}"
                    f"{where}{who}  {payload}".rstrip()
                )
        return "\n".join(lines)


def format_payload(payload: dict) -> str:
    """Compact ``k=v`` rendering of an event payload (sorted, flat)."""
    parts = []
    for key in sorted(payload):
        value = payload[key]
        if isinstance(value, float):
            parts.append(f"{key}={value:.3f}")
        elif isinstance(value, dict):
            parts.append(f"{key}={{{len(value)}}}")
        elif isinstance(value, (list, tuple)):
            parts.append(f"{key}={','.join(str(v) for v in value)}")
        else:
            parts.append(f"{key}={value}")
    return " ".join(parts)


def swap_ids(events: Iterable[TraceEvent]) -> list[int]:
    """Every swap id that appears in the trace, ascending."""
    seen = {e.swap_id for e in events if e.swap_id is not None}
    return sorted(seen)


def category_histogram(events: Iterable[TraceEvent]) -> dict[tuple[str, str], int]:
    """Counts per (category, kind), the ``repro trace`` summary table."""
    histogram: dict[tuple[str, str], int] = {}
    for event in events:
        key = (event.category, event.kind)
        histogram[key] = histogram.get(key, 0) + 1
    return histogram
