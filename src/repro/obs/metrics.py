"""Live metrics: a label-aware registry fed by the trace event stream.

The :class:`MetricsRegistry` holds counter, gauge, and histogram
families keyed by metric name; each family holds one sample per label
set.  Histograms use *fixed* bucket boundaries chosen at registration
time, so two runs of the same spec produce identical snapshots whatever
the worker count or completion order — the same determinism contract
every other artifact in this repository carries.

Nothing here polls the simulation.  :class:`MetricsTap` subscribes to a
:class:`~repro.obs.trace.TraceCollector` as an in-stream sink and folds
the existing PR 7 emit sites (engine launch/phase/outcome, mempool
submit/evict/RBF, chain connect/reorg, adversary launch/won/lost, the
sampler's event-queue depth gauge) into registry updates, so arming
metrics costs exactly the tracing emit path plus one dict update per
event — and *zero* when disabled, because without a collector no emit
site fires at all.

Two export surfaces:

* :meth:`MetricsRegistry.to_prometheus` — the Prometheus text
  exposition format (``# HELP`` / ``# TYPE``, ``_bucket{le="..."}`` /
  ``_sum`` / ``_count`` for histograms), deterministically sorted.
* :meth:`MetricsRegistry.to_dict` / :meth:`from_dict` — a strict JSON
  snapshot (schema ``repro-metrics/1``) that round-trips byte-exactly
  and rejects unknown keys, like every other serde in the repo.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Iterator

from ..errors import MetricsError
from .trace import TraceEvent

#: Snapshot format identifier (bump on incompatible schema changes).
METRICS_SCHEMA = "repro-metrics/1"

#: Default swap-latency histogram boundaries (sim-seconds).  Fixed and
#: spec-overridable (``obs.metrics.latency_buckets``) — never derived
#: from observed data, so snapshots stay a pure function of the spec.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 80.0, 160.0, 320.0,
)

#: Reorg-depth histogram boundaries (blocks abandoned).
REORG_DEPTH_BUCKETS: tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 16.0)

_SNAPSHOT_KEYS = frozenset({"schema", "metrics"})
_FAMILY_KEYS = frozenset({"name", "type", "help", "buckets", "samples"})
_SAMPLE_KEYS = frozenset({"labels", "value"})
_HIST_SAMPLE_KEYS = frozenset({"labels", "buckets", "sum", "count"})


def _label_key(labels: dict[str, Any]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_labels(key: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{name}="{_escape(value)}"' for name, value in key]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    """Prometheus-style number rendering: integral floats without the
    trailing ``.0`` noise, everything else via repr (shortest round-trip)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class Counter:
    """A monotonically increasing family of label-keyed samples."""

    kind = "counter"

    __slots__ = ("name", "help", "_samples")

    def __init__(self, name: str, help: str) -> None:
        self.name = name
        self.help = help
        self._samples: dict[tuple[tuple[str, str], ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise MetricsError(f"counter {self.name!r} cannot decrease")
        key = _label_key(labels)
        self._samples[key] = self._samples.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        return self._samples.get(_label_key(labels), 0.0)

    def samples(self) -> Iterator[tuple[tuple[tuple[str, str], ...], float]]:
        return iter(sorted(self._samples.items()))


class Gauge:
    """A settable family of label-keyed samples (may go up and down)."""

    kind = "gauge"

    __slots__ = ("name", "help", "_samples")

    def __init__(self, name: str, help: str) -> None:
        self.name = name
        self.help = help
        self._samples: dict[tuple[tuple[str, str], ...], float] = {}

    def set(self, value: float, **labels: Any) -> None:
        self._samples[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = _label_key(labels)
        self._samples[key] = self._samples.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        return self._samples.get(_label_key(labels), 0.0)

    def samples(self) -> Iterator[tuple[tuple[tuple[str, str], ...], float]]:
        return iter(sorted(self._samples.items()))


class _HistogramSample:
    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, num_buckets: int) -> None:
        self.bucket_counts = [0] * num_buckets
        self.sum = 0.0
        self.count = 0


class Histogram:
    """Cumulative-bucket histogram with *fixed* boundaries.

    Buckets are chosen at registration time and never adapt to the
    data, which is what makes snapshots deterministic across worker
    counts: the shape of the output depends only on the spec, the
    values only on the (deterministic) simulation.
    """

    kind = "histogram"

    __slots__ = ("name", "help", "buckets", "_samples")

    def __init__(self, name: str, help: str, buckets: Iterable[float]) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise MetricsError(f"histogram {name!r} needs at least one bucket")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise MetricsError(
                f"histogram {name!r} buckets must be strictly increasing, "
                f"got {bounds}"
            )
        self.name = name
        self.help = help
        self.buckets = bounds
        self._samples: dict[tuple[tuple[str, str], ...], _HistogramSample] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        sample = self._samples.get(key)
        if sample is None:
            sample = self._samples[key] = _HistogramSample(len(self.buckets))
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                sample.bucket_counts[index] += 1
        sample.sum += value
        sample.count += 1

    def samples(self) -> Iterator[tuple[tuple[tuple[str, str], ...], _HistogramSample]]:
        return iter(sorted(self._samples.items()))


class MetricsRegistry:
    """All metric families of one run, keyed by name.

    Registration is idempotent for an identical (type, help, buckets)
    signature and an error otherwise — two subsystems cannot silently
    fight over one name.
    """

    def __init__(self) -> None:
        self._families: dict[str, Counter | Gauge | Histogram] = {}

    # -- registration --------------------------------------------------------

    def counter(self, name: str, help: str) -> Counter:
        return self._register(Counter(name, help))

    def gauge(self, name: str, help: str) -> Gauge:
        return self._register(Gauge(name, help))

    def histogram(
        self, name: str, help: str, buckets: Iterable[float]
    ) -> Histogram:
        return self._register(Histogram(name, help, buckets))

    def _register(self, family):
        existing = self._families.get(family.name)
        if existing is None:
            self._families[family.name] = family
            return family
        if (
            existing.kind != family.kind
            or existing.help != family.help
            or getattr(existing, "buckets", None) != getattr(family, "buckets", None)
        ):
            raise MetricsError(
                f"metric {family.name!r} re-registered with a different "
                f"signature ({existing.kind} vs {family.kind})"
            )
        return existing

    def families(self) -> list[Counter | Gauge | Histogram]:
        """Every family, name order (the deterministic export order)."""
        return [self._families[name] for name in sorted(self._families)]

    def __len__(self) -> int:
        return len(self._families)

    # -- flat scalar view (the store's queryable metric rows) ----------------

    def scalar_items(self) -> list[tuple[str, float]]:
        """Flatten to ``(key, value)`` rows for the campaign store index.

        Counters and gauges yield one row per label set
        (``name{label="value",...}``); histograms yield their ``_sum``
        and ``_count`` (per-bucket rows would swamp the index).
        """
        rows: list[tuple[str, float]] = []
        for family in self.families():
            if isinstance(family, Histogram):
                for key, sample in family.samples():
                    labels = _format_labels(key)
                    rows.append((f"{family.name}_sum{labels}", sample.sum))
                    rows.append((f"{family.name}_count{labels}", float(sample.count)))
            else:
                for key, value in family.samples():
                    rows.append((f"{family.name}{_format_labels(key)}", value))
        return rows

    # -- Prometheus text exposition ------------------------------------------

    def to_prometheus(self) -> str:
        """The text exposition format, deterministically sorted."""
        lines: list[str] = []
        for family in self.families():
            lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            if isinstance(family, Histogram):
                for key, sample in family.samples():
                    for bound, count in zip(family.buckets, sample.bucket_counts):
                        le = _format_labels(key, extra=f'le="{_format_value(bound)}"')
                        lines.append(f"{family.name}_bucket{le} {count}")
                    inf = _format_labels(key, extra='le="+Inf"')
                    lines.append(f"{family.name}_bucket{inf} {sample.count}")
                    labels = _format_labels(key)
                    lines.append(
                        f"{family.name}_sum{labels} {_format_value(sample.sum)}"
                    )
                    lines.append(f"{family.name}_count{labels} {sample.count}")
            else:
                for key, value in family.samples():
                    lines.append(
                        f"{family.name}{_format_labels(key)} {_format_value(value)}"
                    )
        return "\n".join(lines) + "\n"

    # -- strict JSON snapshot ------------------------------------------------

    def to_dict(self) -> dict:
        metrics = []
        for family in self.families():
            entry: dict[str, Any] = {
                "name": family.name,
                "type": family.kind,
                "help": family.help,
            }
            if isinstance(family, Histogram):
                entry["buckets"] = list(family.buckets)
                entry["samples"] = [
                    {
                        "labels": {name: value for name, value in key},
                        "buckets": list(sample.bucket_counts),
                        "sum": sample.sum,
                        "count": sample.count,
                    }
                    for key, sample in family.samples()
                ]
            else:
                entry["samples"] = [
                    {"labels": {name: value for name, value in key}, "value": value}
                    for key, value in family.samples()
                ]
            metrics.append(entry)
        return {"schema": METRICS_SCHEMA, "metrics": metrics}

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsRegistry":
        """Strictly rebuild a registry from :meth:`to_dict` output."""
        if not isinstance(data, dict):
            raise MetricsError("metrics snapshot must be a JSON object")
        keys = set(data)
        if keys != _SNAPSHOT_KEYS:
            raise MetricsError(
                f"malformed metrics snapshot: unknown keys "
                f"{sorted(keys - _SNAPSHOT_KEYS)}, missing keys "
                f"{sorted(_SNAPSHOT_KEYS - keys)}"
            )
        if data["schema"] != METRICS_SCHEMA:
            raise MetricsError(
                f"unsupported metrics schema {data['schema']!r} "
                f"(expected {METRICS_SCHEMA!r})"
            )
        registry = cls()
        if not isinstance(data["metrics"], list):
            raise MetricsError("metrics snapshot 'metrics' must be a list")
        for entry in data["metrics"]:
            registry._load_family(entry)
        return registry

    @classmethod
    def from_json(cls, text: str) -> "MetricsRegistry":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise MetricsError(f"metrics snapshot is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    def _load_family(self, entry: Any) -> None:
        if not isinstance(entry, dict):
            raise MetricsError("metrics snapshot family must be an object")
        keys = set(entry)
        wanted = _FAMILY_KEYS if entry.get("type") == "histogram" else _FAMILY_KEYS - {"buckets"}
        if keys != wanted:
            raise MetricsError(
                f"malformed metrics family: unknown keys {sorted(keys - wanted)}, "
                f"missing keys {sorted(wanted - keys)}"
            )
        kind = entry["type"]
        if kind == "counter":
            family = self.counter(entry["name"], entry["help"])
            self._load_scalar_samples(family, entry["samples"])
        elif kind == "gauge":
            family = self.gauge(entry["name"], entry["help"])
            self._load_scalar_samples(family, entry["samples"])
        elif kind == "histogram":
            family = self.histogram(entry["name"], entry["help"], entry["buckets"])
            for sample in entry["samples"]:
                if not isinstance(sample, dict) or set(sample) != _HIST_SAMPLE_KEYS:
                    raise MetricsError(
                        f"malformed histogram sample in {entry['name']!r}"
                    )
                counts = sample["buckets"]
                if len(counts) != len(family.buckets):
                    raise MetricsError(
                        f"histogram {entry['name']!r} sample has {len(counts)} "
                        f"bucket counts for {len(family.buckets)} buckets"
                    )
                loaded = _HistogramSample(len(family.buckets))
                loaded.bucket_counts = [int(c) for c in counts]
                loaded.sum = float(sample["sum"])
                loaded.count = int(sample["count"])
                family._samples[_label_key(sample["labels"])] = loaded
        else:
            raise MetricsError(f"unknown metric type {kind!r}")

    @staticmethod
    def _load_scalar_samples(family, samples: Any) -> None:
        for sample in samples:
            if not isinstance(sample, dict) or set(sample) != _SAMPLE_KEYS:
                raise MetricsError(f"malformed sample in {family.name!r}")
            family._samples[_label_key(sample["labels"])] = float(sample["value"])

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._families)} families)"


class MetricsTap:
    """Folds the trace event stream into registry updates.

    One instance per run; register :meth:`observe` as a collector sink.
    Every family the engine can ever touch is registered up front, so
    the set of families (and therefore the snapshot's shape) is a pure
    function of the spec, not of which events happened to fire.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        latency_buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        self.registry = registry
        r = registry
        self.swaps_launched = r.counter(
            "repro_swaps_launched_total", "Swaps handed to a protocol driver"
        )
        self.swaps_in_flight = r.gauge(
            "repro_swaps_in_flight", "Swaps launched but not yet decided"
        )
        self.swap_outcomes = r.counter(
            "repro_swap_outcomes_total", "Terminal swap decisions"
        )
        self.atomicity_violations = r.counter(
            "repro_atomicity_violations_total",
            "Swaps that settled non-atomically (the paper's failure mode)",
        )
        self.swap_latency = r.histogram(
            "repro_swap_latency_seconds",
            "Arrival-to-decision latency of finished swaps",
            buckets=latency_buckets,
        )
        self.swap_phases = r.counter(
            "repro_swap_phases_total", "Protocol phase transitions"
        )
        self.mempool_events = r.counter(
            "repro_mempool_events_total", "Mempool churn by kind"
        )
        self.mempool_pending = r.gauge(
            "repro_mempool_pending", "Messages pending per mempool"
        )
        self.fee_events = r.counter(
            "repro_fee_events_total", "Fee-market driver events by kind"
        )
        self.blocks = r.counter("repro_blocks_total", "Blocks connected per chain")
        self.chain_height = r.gauge("repro_chain_height", "Best-chain height")
        self.reorgs = r.counter("repro_reorgs_total", "Reorgs adopted per chain")
        self.reorg_depth = r.histogram(
            "repro_reorg_depth_blocks",
            "Blocks abandoned per reorg",
            buckets=REORG_DEPTH_BUCKETS,
        )
        self.sim_events = r.counter(
            "repro_sim_events_total", "Node crash/recovery events"
        )
        self.adversary_events = r.counter(
            "repro_adversary_events_total", "Adversary actor events by kind"
        )
        self.event_queue_depth = r.gauge(
            "repro_event_queue_depth",
            "Simulator events pending at the last sample",
        )
        self.alerts = r.counter(
            "repro_alerts_total", "Invariant-monitor alerts fired by rule"
        )

    def observe(self, event: TraceEvent) -> None:
        handler = getattr(self, f"_on_{event.category}", None)
        if handler is not None:
            handler(event)

    # -- per-category folds --------------------------------------------------

    def _on_swap(self, event: TraceEvent) -> None:
        payload = event.payload
        if event.kind == "launch":
            protocol = payload.get("protocol", "?")
            self.swaps_launched.inc(protocol=protocol)
            self.swaps_in_flight.inc()
        elif event.kind == "outcome":
            decision = payload.get("decision", "?")
            self.swap_outcomes.inc(decision=decision)
            self.swaps_in_flight.dec()
            if payload.get("atomic") is False:
                self.atomicity_violations.inc()
            latency = payload.get("latency")
            if latency is not None:
                self.swap_latency.observe(float(latency))
        elif event.kind == "phase":
            self.swap_phases.inc(phase=payload.get("phase", "?"))
        elif event.kind == "violation":
            # The adversary audit flipped a settled outcome after its
            # outcome event already counted as atomic.
            self.atomicity_violations.inc()

    def _on_mempool(self, event: TraceEvent) -> None:
        chain = event.chain_id or "?"
        self.mempool_events.inc(chain=chain, kind=event.kind)
        pending = event.payload.get("pending")
        if pending is not None:
            self.mempool_pending.set(float(pending), chain=chain)

    def _on_fee(self, event: TraceEvent) -> None:
        self.fee_events.inc(kind=event.kind)

    def _on_chain(self, event: TraceEvent) -> None:
        chain = event.chain_id or "?"
        if event.kind == "block":
            self.blocks.inc(chain=chain)
            height = event.payload.get("height")
            if height is not None:
                self.chain_height.set(float(height), chain=chain)
        elif event.kind == "reorg":
            self.reorgs.inc(chain=chain)
            abandoned = event.payload.get("abandoned")
            if abandoned is not None:
                self.reorg_depth.observe(float(abandoned), chain=chain)

    def _on_sim(self, event: TraceEvent) -> None:
        self.sim_events.inc(kind=event.kind)

    def _on_adversary(self, event: TraceEvent) -> None:
        self.adversary_events.inc(
            actor=event.actor or "?", kind=event.kind
        )

    def _on_sample(self, event: TraceEvent) -> None:
        depth = event.payload.get("queue_depth")
        if depth is not None:
            self.event_queue_depth.set(float(depth))

    def _on_alert(self, event: TraceEvent) -> None:
        self.alerts.inc(rule=event.kind)
