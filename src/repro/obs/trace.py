"""The flight recorder: structured trace events and their collector.

A :class:`TraceCollector` is a passive sink.  Subsystems that hold a
reference to one emit :class:`TraceEvent` records at interesting moments
(swap phase changes, block connects, reorgs, mempool churn, crashes,
attacks); when no collector is attached every emit site is a single
``if collector is not None`` check, so disabled runs are byte- and
time-identical to runs before this module existed.

Events are ordered by a per-collector sequence number assigned at emit
time.  Because the simulator fires events in deterministic (time, seq)
order, two runs at the same seed produce identical traces.

The JSONL surface (:meth:`TraceCollector.to_jsonl` /
:meth:`TraceCollector.from_jsonl`) is strict in both directions: the
writer emits a fixed key set with sorted keys, and the reader rejects
unknown or missing keys, so a round-trip is byte-identical.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Iterable

from ..errors import TraceError

#: Every category an emit site may use.  ``ObsSpec.categories`` and the
#: CLI validate against this tuple; keep it in sync with the emit sites.
CATEGORIES: tuple[str, ...] = (
    "swap",  # arrival / launch / phase transitions / outcome
    "chain",  # block connects, reorg adopt/abandon depths
    "mempool",  # submit / evict / replace-by-fee / fee rejections
    "fee",  # driver fee bumps, priced-out transitions
    "sim",  # node crash / recovery windows
    "adversary",  # attack launch / won / lost / exploit, byzantine acts
    "sample",  # windowed gauges from the TimeSeriesSampler
    "alert",  # InvariantMonitor rule firings (see repro.obs.monitor)
    "service",  # SwapService sessions: accepts / windows / checkpoints / stalls
)

#: Trace file format identifier (bump on incompatible schema changes).
SCHEMA = "repro-trace/1"

_HEADER_KEYS = frozenset({"schema", "categories", "ring_size", "dropped", "events"})
_EVENT_KEYS = frozenset({"seq", "t", "cat", "kind", "swap", "chain", "actor", "data"})


class TraceEvent:
    """One recorded moment.  Slotted: large runs emit tens of thousands."""

    __slots__ = ("seq", "time", "category", "kind", "swap_id", "chain_id", "actor", "payload")

    def __init__(
        self,
        seq: int,
        time: float,
        category: str,
        kind: str,
        swap_id: int | None = None,
        chain_id: str | None = None,
        actor: str | None = None,
        payload: dict[str, Any] | None = None,
    ) -> None:
        self.seq = seq
        self.time = time
        self.category = category
        self.kind = kind
        self.swap_id = swap_id
        self.chain_id = chain_id
        self.actor = actor
        self.payload = payload if payload is not None else {}

    def to_dict(self) -> dict[str, Any]:
        """Wire form used by the JSONL serde (short keys, fixed set)."""
        return {
            "seq": self.seq,
            "t": self.time,
            "cat": self.category,
            "kind": self.kind,
            "swap": self.swap_id,
            "chain": self.chain_id,
            "actor": self.actor,
            "data": self.payload,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TraceEvent":
        keys = set(data)
        if keys != _EVENT_KEYS:
            unknown = sorted(keys - _EVENT_KEYS)
            missing = sorted(_EVENT_KEYS - keys)
            raise TraceError(
                f"malformed trace event: unknown keys {unknown}, missing keys {missing}"
            )
        if not isinstance(data["cat"], str) or data["cat"] not in CATEGORIES:
            raise TraceError(f"unknown trace category {data['cat']!r}")
        if not isinstance(data["data"], dict):
            raise TraceError("trace event 'data' must be an object")
        return cls(
            seq=int(data["seq"]),
            time=float(data["t"]),
            category=data["cat"],
            kind=str(data["kind"]),
            swap_id=data["swap"],
            chain_id=data["chain"],
            actor=data["actor"],
            payload=data["data"],
        )

    def __repr__(self) -> str:
        who = f" swap={self.swap_id}" if self.swap_id is not None else ""
        where = f" chain={self.chain_id}" if self.chain_id is not None else ""
        return f"TraceEvent(#{self.seq} t={self.time:.3f} {self.category}/{self.kind}{who}{where})"


class TraceCollector:
    """Collects :class:`TraceEvent` records in emit order.

    Args:
        categories: categories to record; empty means *all*.  Filtering
            happens inside :meth:`emit` (a frozenset lookup), and wiring
            code additionally skips registering listeners for categories
            the collector does not want.
        ring_size: if set, keep only the most recent ``ring_size`` events
            (bounded flight-recorder mode); older events are dropped and
            counted in :attr:`dropped`.  ``None`` means unbounded.
        retain: keep events in the buffer (the default).  ``False`` turns
            the collector into a pure dispatcher: events are constructed
            and handed to the registered sinks but never stored — the
            mode the metrics registry and invariant monitor use when the
            trace itself was not requested.
    """

    def __init__(
        self,
        categories: Iterable[str] = (),
        ring_size: int | None = None,
        retain: bool = True,
    ) -> None:
        wanted = tuple(categories)
        for category in wanted:
            if category not in CATEGORIES:
                raise TraceError(
                    f"unknown trace category {category!r}; expected one of {CATEGORIES}"
                )
        self._categories: frozenset[str] = frozenset(wanted if wanted else CATEGORIES)
        self.ring_size = ring_size
        if ring_size is not None:
            if ring_size < 1:
                raise TraceError(f"ring_size must be >= 1, got {ring_size}")
            self._events: deque[TraceEvent] | list[TraceEvent] = deque(maxlen=ring_size)
        else:
            self._events = []
        self.retain = retain
        self.dropped = 0
        self._seq = 0
        self._clock: Any = None  # anything with a ``now`` float attribute
        self._sinks: list[Any] = []

    # -- recording ---------------------------------------------------------

    def bind(self, clock: Any) -> None:
        """Attach a clock (typically a :class:`~repro.sim.Simulator`)."""
        self._clock = clock

    def add_sink(self, sink) -> None:
        """Register an in-stream consumer: ``sink(event)`` is called for
        every event that passes the category filter, in emit order, after
        the event is recorded.  Sinks may themselves emit (the monitor
        writes ``alert`` events back into the trace); re-entrant emits
        are appended after the triggering event, so ordering and the
        monotone-seq serde invariant hold."""
        self._sinks.append(sink)

    @property
    def categories(self) -> frozenset[str]:
        return self._categories

    def wants(self, category: str) -> bool:
        """True if ``category`` passes this collector's filter."""
        return category in self._categories

    def emit(
        self,
        category: str,
        kind: str,
        swap_id: int | None = None,
        chain_id: str | None = None,
        actor: str | None = None,
        **payload: Any,
    ) -> None:
        """Record one event (no-op if ``category`` is filtered out)."""
        if category not in self._categories:
            return
        event = TraceEvent(
            seq=self._seq,
            time=self._clock.now if self._clock is not None else 0.0,
            category=category,
            kind=kind,
            swap_id=swap_id,
            chain_id=chain_id,
            actor=actor,
            payload=payload,
        )
        self._seq += 1
        if self.retain:
            events = self._events
            if self.ring_size is not None and len(events) == self.ring_size:
                self.dropped += 1
            events.append(event)
        for sink in self._sinks:
            sink(event)

    # -- access ------------------------------------------------------------

    def events(self) -> list[TraceEvent]:
        """All retained events, oldest first."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    # -- serde ---------------------------------------------------------------

    def to_jsonl(self) -> str:
        """Serialize as JSONL: one header line, then one line per event.

        Deterministic (sorted keys, compact separators) so that
        ``from_jsonl(to_jsonl(c)).to_jsonl() == to_jsonl(c)``.
        """
        header = {
            "schema": SCHEMA,
            "categories": sorted(self._categories),
            "ring_size": self.ring_size,
            "dropped": self.dropped,
            "events": len(self._events),
        }
        lines = [json.dumps(header, sort_keys=True, separators=(",", ":"))]
        for event in self._events:
            lines.append(json.dumps(event.to_dict(), sort_keys=True, separators=(",", ":")))
        return "\n".join(lines) + "\n"

    @classmethod
    def from_jsonl(cls, text: str) -> "TraceCollector":
        """Parse a trace produced by :meth:`to_jsonl` (strict)."""
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise TraceError("empty trace file")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise TraceError(f"malformed trace header: {exc}") from exc
        if not isinstance(header, dict):
            raise TraceError("trace header must be a JSON object")
        keys = set(header)
        if keys != _HEADER_KEYS:
            unknown = sorted(keys - _HEADER_KEYS)
            missing = sorted(_HEADER_KEYS - keys)
            raise TraceError(
                f"malformed trace header: unknown keys {unknown}, missing keys {missing}"
            )
        if header["schema"] != SCHEMA:
            raise TraceError(
                f"unsupported trace schema {header['schema']!r} (expected {SCHEMA!r})"
            )
        collector = cls(categories=header["categories"], ring_size=header["ring_size"])
        collector.dropped = int(header["dropped"])
        declared = int(header["events"])
        if declared != len(lines) - 1:
            raise TraceError(
                f"trace header declares {declared} events but file has {len(lines) - 1}"
            )
        max_seq = -1
        for index, line in enumerate(lines[1:], start=2):
            try:
                raw = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceError(f"malformed trace event on line {index}: {exc}") from exc
            if not isinstance(raw, dict):
                raise TraceError(f"trace event on line {index} must be a JSON object")
            event = TraceEvent.from_dict(raw)
            if event.seq <= max_seq:
                raise TraceError(
                    f"trace events out of order on line {index}: "
                    f"seq {event.seq} after {max_seq}"
                )
            max_seq = event.seq
            collector._events.append(event)
        collector._seq = max_seq + 1
        return collector

    def __repr__(self) -> str:
        mode = f"ring={self.ring_size}" if self.ring_size is not None else "unbounded"
        return f"TraceCollector({len(self._events)} events, {mode}, dropped={self.dropped})"
