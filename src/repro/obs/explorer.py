"""The trace timeline explorer behind ``repro trace`` / ``repro alerts``.

Pure functions from a parsed trace to text: a run summary (header info
plus a category/kind histogram and per-swap decisions), a per-swap span
timeline (:meth:`SwapTimeline.render`), the sampler's windowed series
as CSV (alert-annotated when the trace carries ``alert`` events), and
the invariant-monitor alert log.  The CLI stays a thin shell over these
so tests can exercise the rendering directly.
"""

from __future__ import annotations

from typing import Iterable

from .monitor import alerts_from_events
from .spans import SwapTimeline, category_histogram, swap_ids
from .trace import TraceCollector, TraceEvent


def load_trace(path: str) -> TraceCollector:
    """Read and strictly validate a JSONL trace file."""
    with open(path, "r", encoding="utf-8") as handle:
        return TraceCollector.from_jsonl(handle.read())


def summarize(collector: TraceCollector) -> str:
    """The default ``repro trace FILE`` view."""
    events = collector.events()
    lines = [
        f"trace: {len(events)} events"
        + (f" ({collector.dropped} dropped by ring)" if collector.dropped else "")
        + f", categories: {','.join(sorted(collector.categories))}"
    ]
    if events:
        lines.append(f"time span: {events[0].time:.3f} → {events[-1].time:.3f}")
    histogram = category_histogram(events)
    if histogram:
        lines.append("events by category/kind:")
        width = max(len(f"{cat}/{kind}") for cat, kind in histogram)
        for (cat, kind), count in sorted(histogram.items()):
            lines.append(f"  {f'{cat}/{kind}':<{width}}  {count}")
    ids = swap_ids(events)
    if ids:
        lines.append(f"swaps: {len(ids)} (ids {ids[0]}..{ids[-1]})")
        outcomes = _outcome_index(events)
        attacked = [
            swap
            for swap in ids
            if any(
                e.category == "adversary" for e in events if e.swap_id == swap
            )
        ]
        decisions: dict[str, int] = {}
        for swap in ids:
            outcome = outcomes.get(swap)
            decision = outcome.payload.get("decision", "?") if outcome else "unfinished"
            decisions[decision] = decisions.get(decision, 0) + 1
        lines.append(
            "decisions: "
            + " ".join(f"{k}={v}" for k, v in sorted(decisions.items()))
        )
        if attacked:
            lines.append(
                f"attacked swaps: {', '.join(str(s) for s in attacked)}"
                "  (render one with --swap ID)"
            )
    samples = sum(1 for e in events if e.category == "sample")
    if samples:
        lines.append(f"samples: {samples} (export the series with --series PATH)")
    alerts = sum(1 for e in events if e.category == "alert")
    if alerts:
        by_rule: dict[str, int] = {}
        for e in events:
            if e.category == "alert":
                by_rule[e.kind] = by_rule.get(e.kind, 0) + 1
        lines.append(
            f"alerts: {alerts} ("
            + " ".join(f"{k}={v}" for k, v in sorted(by_rule.items()))
            + ")  (list them with 'repro alerts FILE')"
        )
    return "\n".join(lines)


def render_alerts(collector: TraceCollector) -> str:
    """The ``repro alerts FILE`` view: every monitor firing, in order."""
    alerts = alerts_from_events(collector.events())
    if not alerts:
        return "no alerts recorded in this trace\n"
    lines = [alert.render() for alert in alerts]
    by_rule: dict[str, int] = {}
    for alert in alerts:
        by_rule[alert.rule] = by_rule.get(alert.rule, 0) + 1
    lines.append(
        f"{len(alerts)} alert(s): "
        + " ".join(f"{k}={v}" for k, v in sorted(by_rule.items()))
    )
    return "\n".join(lines) + "\n"


def render_swap(collector: TraceCollector, swap_id: int) -> str:
    """The ``repro trace FILE --swap ID`` view."""
    return SwapTimeline.from_events(collector.events(), swap_id).render()


def series_csv(events: Iterable[TraceEvent]) -> str:
    """Flatten ``sample/gauges`` events into a CSV table.

    Scalar gauges become columns directly; dict-valued gauges (mempool
    depth, height, reorgs) fan out into one ``gauge.chain`` column per
    chain.  Columns are the union over all samples, sorted, with ``t``
    first; missing values render empty.

    When the trace carries ``alert`` events (the invariant monitor was
    on), two annotation columns are appended: ``alerts`` counts the
    firings inside each sample window (``prev_t < time <= t``) and
    ``alert_rules`` names their rules, so the windows where something
    went wrong are visible right inside the series.
    """
    events = list(events)
    samples = [e for e in events if e.category == "sample"]
    alert_events = [e for e in events if e.category == "alert"]
    rows: list[dict[str, object]] = []
    columns: set[str] = set()
    previous_t = float("-inf")
    for event in samples:
        row: dict[str, object] = {"t": event.time}
        for gauge, value in event.payload.items():
            if isinstance(value, dict):
                for chain_id, inner in value.items():
                    row[f"{gauge}.{chain_id}"] = inner
            else:
                row[gauge] = value
        if alert_events:
            window = [
                a for a in alert_events if previous_t < a.time <= event.time
            ]
            row["alerts"] = len(window)
            row["alert_rules"] = ";".join(
                sorted({a.kind for a in window})
            )
        previous_t = event.time
        columns.update(row)
        rows.append(row)
    ordered = ["t"] + sorted(columns - {"t"})
    lines = [",".join(ordered)]
    for row in rows:
        lines.append(
            ",".join(_csv_cell(row.get(column)) for column in ordered)
        )
    return "\n".join(lines) + "\n"


def _csv_cell(value: object) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _outcome_index(events: Iterable[TraceEvent]) -> dict[int, TraceEvent]:
    index: dict[int, TraceEvent] = {}
    for event in events:
        if event.category == "swap" and event.kind == "outcome":
            if event.swap_id is not None:
                index[event.swap_id] = event
    return index
