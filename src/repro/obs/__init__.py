"""Observability: the flight recorder, live metrics, and the monitor.

Zero-cost when disabled: every emit site in the engine, drivers,
chains, mempools, nodes, and adversary actors sits behind a single
``if collector is not None`` check, so a run without a collector is
byte- and time-identical to one before this package existed.  The
metrics registry and the invariant monitor consume the same event
stream as in-process sinks, so they inherit the same contract.

See :mod:`repro.obs.trace` for the event model and JSONL serde,
:mod:`repro.obs.metrics` for the label-aware registry and its
Prometheus/JSON exporters, :mod:`repro.obs.monitor` for declarative
alert rules, :mod:`repro.obs.spans` for per-swap timeline
reconstruction, :mod:`repro.obs.sampler` for windowed time-series
gauges, and ``docs/observability.md`` for the full walkthrough.
"""

from .explorer import load_trace, render_alerts, render_swap, series_csv, summarize
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    METRICS_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsTap,
)
from .monitor import (
    Alert,
    AtomicityRule,
    InvariantMonitor,
    MempoolSaturationRule,
    PricedOutSpikeRule,
    ReorgDepthRule,
    Rule,
    StallRule,
    alerts_from_events,
)
from .sampler import TimeSeriesSampler
from .spans import PhaseSpan, SwapTimeline, category_histogram, swap_ids
from .trace import CATEGORIES, SCHEMA, TraceCollector, TraceEvent
from .wiring import instrument

__all__ = [
    "CATEGORIES",
    "DEFAULT_LATENCY_BUCKETS",
    "METRICS_SCHEMA",
    "SCHEMA",
    "Alert",
    "AtomicityRule",
    "Counter",
    "Gauge",
    "Histogram",
    "InvariantMonitor",
    "MempoolSaturationRule",
    "MetricsRegistry",
    "MetricsTap",
    "PhaseSpan",
    "PricedOutSpikeRule",
    "ReorgDepthRule",
    "Rule",
    "StallRule",
    "SwapTimeline",
    "TimeSeriesSampler",
    "TraceCollector",
    "TraceEvent",
    "alerts_from_events",
    "category_histogram",
    "instrument",
    "load_trace",
    "render_alerts",
    "render_swap",
    "series_csv",
    "summarize",
    "swap_ids",
]
