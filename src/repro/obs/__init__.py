"""Observability: the flight recorder, span folding, and samplers.

Zero-cost when disabled: every emit site in the engine, drivers,
chains, mempools, nodes, and adversary actors sits behind a single
``if collector is not None`` check, so a run without a collector is
byte- and time-identical to one before this package existed.

See :mod:`repro.obs.trace` for the event model and JSONL serde,
:mod:`repro.obs.spans` for per-swap timeline reconstruction,
:mod:`repro.obs.sampler` for windowed time-series gauges, and
``docs/observability.md`` for the full walkthrough.
"""

from .explorer import load_trace, render_swap, series_csv, summarize
from .sampler import TimeSeriesSampler
from .spans import PhaseSpan, SwapTimeline, category_histogram, swap_ids
from .trace import CATEGORIES, SCHEMA, TraceCollector, TraceEvent
from .wiring import instrument

__all__ = [
    "CATEGORIES",
    "SCHEMA",
    "PhaseSpan",
    "SwapTimeline",
    "TimeSeriesSampler",
    "TraceCollector",
    "TraceEvent",
    "category_histogram",
    "instrument",
    "load_trace",
    "render_swap",
    "series_csv",
    "summarize",
    "swap_ids",
]
