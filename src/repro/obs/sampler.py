"""Whole-run time series: windowed gauges on a fixed sim-time cadence.

The :class:`TimeSeriesSampler` schedules itself on the simulator every
``interval`` seconds and emits one ``sample/gauges`` event per firing:
in-flight / completed swap counts, the engine's trailing-window commit
rate and latency percentiles (:meth:`MetricsAccumulator.windowed`),
per-chain mempool depth and height, the simulator's pending
event-queue depth, and cumulative reorg counts.  The
sampler only *reads* simulation state, so enabling it never changes a
run's outcomes — it merely interleaves read-only callbacks.
"""

from __future__ import annotations

from ..errors import TraceError
from .trace import TraceCollector


class TimeSeriesSampler:
    """Emits ``sample`` events on a fixed sim-time cadence.

    Args:
        collector: sink for the gauge events (must want ``"sample"``).
        env: the shared :class:`~repro.core.protocol.SwapEnvironment`.
        engine: optional :class:`~repro.engine.SwapEngine` for swap-level
            gauges; without one only chain/mempool gauges are sampled.
        interval: sim-seconds between samples.
        window: trailing window for the windowed metrics view
            (default: four sample intervals).
    """

    def __init__(
        self,
        collector: TraceCollector,
        env,
        engine=None,
        interval: float = 10.0,
        window: float | None = None,
    ) -> None:
        if interval <= 0:
            raise TraceError(f"sample interval must be > 0, got {interval}")
        self.collector = collector
        self.env = env
        self.engine = engine
        self.interval = interval
        self.window = window if window is not None else interval * 4
        self.samples = 0
        self._stopped = False
        self._pending = None

    def start(self) -> "TimeSeriesSampler":
        """Arm the first sample, one interval from now."""
        if self._pending is None and not self._stopped:
            self._pending = self.env.simulator.schedule(
                self.interval, self._fire, label="obs sample"
            )
        return self

    def stop(self) -> None:
        """Stop sampling; any armed sample event is cancelled."""
        self._stopped = True
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    def _fire(self) -> None:
        self._pending = None
        if self._stopped:
            return
        self._emit_sample()
        self.samples += 1
        self._pending = self.env.simulator.schedule(
            self.interval, self._fire, label="obs sample"
        )

    def _emit_sample(self) -> None:
        gauges: dict = {
            "mempool": {
                chain_id: len(pool)
                for chain_id, pool in sorted(self.env.mempools.items())
            },
            "height": {
                chain_id: chain.height
                for chain_id, chain in sorted(self.env.chains.items())
            },
            "queue_depth": self.env.simulator.pending_events,
        }
        engine = self.engine
        if engine is not None:
            windowed = engine.metrics_window(self.window)
            gauges.update(
                submitted=len(engine.requests),
                in_flight=engine.in_flight,
                completed=engine.completed,
                window_total=windowed.total,
                commit_rate=windowed.commit_rate,
                p50_latency=windowed.p50_latency,
                p99_latency=windowed.p99_latency,
                reorgs={
                    chain_id: count
                    for chain_id, count in sorted(engine.chain_reorgs.items())
                },
            )
        self.collector.emit("sample", "gauges", **gauges)
