"""Online invariant monitoring: declarative alert rules over the stream.

Where the flight recorder explains a run *after* it finishes, the
:class:`InvariantMonitor` watches it *while it runs*: it subscribes to a
:class:`~repro.obs.trace.TraceCollector` as an in-stream sink and
evaluates a fixed set of rules against every event.  When a rule fires
it produces an ordered :class:`Alert` record three ways at once:

* appended to :attr:`InvariantMonitor.alerts` (exported into the result
  artifact as ``reports.alerts``),
* emitted back into the trace as an ``alert/<rule>`` event (so the
  explorer and the ``--series`` CSV can line alerts up with the
  timeline),
* optionally written to a real-time stream (``repro run`` wires stderr
  when ``obs.monitor.stderr`` is set).

Rules are deterministic functions of the event stream, so the alert
list — like every other artifact — is a pure function of the spec.
Alert ordering follows the triggering events' (time, seq) order.

The built-in rules (armed from ``obs.monitor.rules``):

* **atomicity** — a swap settled non-atomically (the paper's failure
  mode; severity ``critical``).
* **reorg_depth** — a reorg abandoned at least N blocks (default: the
  spec's confirmation depth — the depth-d defense was breached).
* **stall** — a swap went longer than ``stall_multiple`` base deadlines
  without a phase transition (checked on block connects, so the scan
  cost is bounded by block cadence).
* **mempool_saturation** — a mempool's pending depth crossed a
  threshold (with hysteresis: re-arms when it drains below).
* **priced_out_spike** — the priced-out share of recent outcomes
  crossed a rate threshold inside a trailing window.
"""

from __future__ import annotations

from typing import Any, Callable

from .trace import TraceCollector, TraceEvent


class Alert:
    """One rule firing, anchored to the event that triggered it."""

    __slots__ = ("index", "time", "rule", "severity", "message", "swap_id", "chain_id", "data")

    def __init__(
        self,
        index: int,
        time: float,
        rule: str,
        severity: str,
        message: str,
        swap_id: int | None = None,
        chain_id: str | None = None,
        data: dict[str, Any] | None = None,
    ) -> None:
        self.index = index
        self.time = time
        self.rule = rule
        self.severity = severity
        self.message = message
        self.swap_id = swap_id
        self.chain_id = chain_id
        self.data = data if data is not None else {}

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "time": self.time,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "swap_id": self.swap_id,
            "chain_id": self.chain_id,
            "data": self.data,
        }

    def render(self) -> str:
        """One human-readable line (the real-time stderr shape)."""
        who = f" swap={self.swap_id}" if self.swap_id is not None else ""
        where = f" chain={self.chain_id}" if self.chain_id is not None else ""
        return (
            f"ALERT t={self.time:.3f} [{self.rule}/{self.severity}]"
            f"{who}{where}: {self.message}"
        )

    def __repr__(self) -> str:
        return f"Alert(#{self.index} {self.render()})"


class Rule:
    """Base rule: subclasses react to events via ``observe``."""

    name = "rule"
    severity = "warning"

    def observe(self, event: TraceEvent, monitor: "InvariantMonitor") -> None:
        raise NotImplementedError


class AtomicityRule(Rule):
    """A swap settled non-atomically — the invariant the whole paper
    exists to protect just broke.

    Two triggers cover both ways a violation becomes visible: a
    ``swap/outcome`` event carrying ``atomic=False`` (the drivers saw
    the mixed settlement directly), and a ``swap/violation`` event (the
    adversary audit re-derived final states from chain truth and found
    a won fork had rewritten a settlement *after* its outcome event was
    emitted)."""

    name = "atomicity"
    severity = "critical"

    def observe(self, event: TraceEvent, monitor: "InvariantMonitor") -> None:
        if event.category != "swap":
            return
        if event.kind == "outcome":
            if event.payload.get("atomic") is not False:
                return
            monitor.fire(
                self,
                event,
                message=(
                    f"swap {event.swap_id} settled non-atomically "
                    f"(decision {event.payload.get('decision', '?')!r})"
                ),
                decision=event.payload.get("decision"),
            )
        elif event.kind == "violation":
            monitor.fire(
                self,
                event,
                message=(
                    f"swap {event.swap_id} settlement rewritten "
                    f"non-atomic by a won fork "
                    f"(decision {event.payload.get('decision', '?')!r}, "
                    f"{event.payload.get('rewritten', '?')} contract(s) "
                    "flipped)"
                ),
                decision=event.payload.get("decision"),
                rewritten=event.payload.get("rewritten"),
            )


class ReorgDepthRule(Rule):
    """A settled-history rewrite at or beyond the policy depth.

    Fires on *realized* reorgs (``chain/reorg`` abandoning at least
    ``threshold`` blocks — the depth-d defense was actually breached)
    and on *attempted* ones (``adversary/launch`` whose private fork
    contends a public lead of at least ``threshold`` blocks): a live
    operator wants the alarm when a hostile fork deep enough to rewrite
    policy-confirmed history is observed, whether or not the attacker's
    budget ultimately holds out."""

    name = "reorg_depth"

    def __init__(self, threshold: int) -> None:
        self.threshold = threshold

    def observe(self, event: TraceEvent, monitor: "InvariantMonitor") -> None:
        if event.category == "chain" and event.kind == "reorg":
            abandoned = event.payload.get("abandoned", 0)
            if abandoned < self.threshold:
                return
            monitor.fire(
                self,
                event,
                message=(
                    f"reorg on {event.chain_id!r} abandoned {abandoned} "
                    f"block(s) (policy depth {self.threshold})"
                ),
                abandoned=abandoned,
                threshold=self.threshold,
            )
        elif event.category == "adversary" and event.kind == "launch":
            lead = event.payload.get("public_lead")
            if lead is None or lead < self.threshold:
                return
            monitor.fire(
                self,
                event,
                message=(
                    f"hostile fork on {event.chain_id!r} contends "
                    f"{lead} policy-confirmed block(s) "
                    f"(policy depth {self.threshold})"
                ),
                public_lead=lead,
                threshold=self.threshold,
                attempted=True,
            )


class StallRule(Rule):
    """A swap made no phase progress for longer than the deadline budget.

    ``deadline`` is the resolved base budget in sim-seconds (the spec's
    slowest block interval × confirmation depth × the configured
    multiple).  Progress is tracked from launch and phase events;
    the check runs on block connects so its cost scales with block
    cadence, not event volume.  Each swap alerts at most once.
    """

    name = "stall"

    def __init__(self, deadline: float) -> None:
        self.deadline = deadline
        self._last_progress: dict[int, float] = {}
        self._alerted: set[int] = set()

    def observe(self, event: TraceEvent, monitor: "InvariantMonitor") -> None:
        if event.category == "swap":
            if event.swap_id is None:
                return
            if event.kind in ("launch", "phase"):
                self._last_progress[event.swap_id] = event.time
            elif event.kind == "outcome":
                self._last_progress.pop(event.swap_id, None)
            return
        if event.category != "chain" or event.kind != "block":
            return
        horizon = event.time - self.deadline
        for swap_id, last in self._last_progress.items():
            if last > horizon or swap_id in self._alerted:
                continue
            self._alerted.add(swap_id)
            monitor.fire(
                self,
                event,
                message=(
                    f"swap {swap_id} stalled: no phase progress for "
                    f"{event.time - last:.1f}s (budget {self.deadline:.1f}s)"
                ),
                swap_id=swap_id,
                stalled_for=event.time - last,
                deadline=self.deadline,
            )


class MempoolSaturationRule(Rule):
    """A mempool's pending depth crossed ``threshold`` messages.

    Fires once per crossing (hysteresis: the chain re-arms when its
    depth drops back below the threshold), so a saturated steady state
    produces one alert, not one per submit.
    """

    name = "mempool_saturation"

    def __init__(self, threshold: int) -> None:
        self.threshold = threshold
        self._saturated: set[str] = set()

    def observe(self, event: TraceEvent, monitor: "InvariantMonitor") -> None:
        if event.category != "mempool":
            return
        pending = event.payload.get("pending")
        if pending is None:
            return
        chain = event.chain_id or "?"
        if pending >= self.threshold:
            if chain in self._saturated:
                return
            self._saturated.add(chain)
            monitor.fire(
                self,
                event,
                message=(
                    f"mempool on {chain!r} saturated: {pending} pending "
                    f"(threshold {self.threshold})"
                ),
                pending=pending,
                threshold=self.threshold,
            )
        else:
            self._saturated.discard(chain)


class PricedOutSpikeRule(Rule):
    """The priced-out share of recent outcomes spiked.

    Over a trailing ``window`` of sim-seconds, fires when at least
    ``min_count`` outcomes were priced out *and* their share of all
    outcomes in the window reaches ``rate``.  Hysteresis: re-arms when
    the share falls back below the rate.
    """

    name = "priced_out_spike"

    def __init__(self, rate: float, window: float, min_count: int) -> None:
        self.rate = rate
        self.window = window
        self.min_count = min_count
        self._outcomes: list[tuple[float, bool]] = []
        self._armed = True

    def observe(self, event: TraceEvent, monitor: "InvariantMonitor") -> None:
        if event.category != "swap" or event.kind != "outcome":
            return
        priced_out = bool(event.payload.get("priced_out"))
        outcomes = self._outcomes
        outcomes.append((event.time, priced_out))
        horizon = event.time - self.window
        while outcomes and outcomes[0][0] < horizon:
            outcomes.pop(0)
        hits = sum(1 for _, p in outcomes if p)
        share = hits / len(outcomes)
        if hits >= self.min_count and share >= self.rate:
            if self._armed:
                self._armed = False
                monitor.fire(
                    self,
                    event,
                    message=(
                        f"priced-out spike: {hits}/{len(outcomes)} outcomes "
                        f"({share:.0%}) in the last {self.window:.0f}s "
                        f"(threshold {self.rate:.0%})"
                    ),
                    priced_out=hits,
                    outcomes=len(outcomes),
                    share=share,
                )
        elif share < self.rate:
            self._armed = True


class InvariantMonitor:
    """Evaluates rules in-stream and records ordered alerts.

    Register :meth:`observe` as a collector sink.  Alert events the
    monitor itself emits are ignored on the way back in, so rules can
    never recurse.
    """

    def __init__(
        self,
        collector: TraceCollector,
        rules: list[Rule],
        stream: Callable[[str], None] | None = None,
    ) -> None:
        self.collector = collector
        self.rules = list(rules)
        self.stream = stream
        self.alerts: list[Alert] = []

    def observe(self, event: TraceEvent) -> None:
        if event.category == "alert":
            return
        for rule in self.rules:
            rule.observe(event, self)

    def fire(
        self,
        rule: Rule,
        event: TraceEvent,
        message: str,
        swap_id: int | None = None,
        **data: Any,
    ) -> Alert:
        """Record one alert anchored to the triggering ``event``."""
        alert = Alert(
            index=len(self.alerts),
            time=event.time,
            rule=rule.name,
            severity=rule.severity,
            message=message,
            swap_id=event.swap_id if swap_id is None else swap_id,
            chain_id=event.chain_id,
            data=data,
        )
        self.alerts.append(alert)
        self.collector.emit(
            "alert",
            rule.name,
            swap_id=alert.swap_id,
            chain_id=alert.chain_id,
            severity=alert.severity,
            message=alert.message,
            **data,
        )
        if self.stream is not None:
            self.stream(alert.render())
        return alert

    def to_report(self) -> list[dict]:
        """The ``reports.alerts`` artifact section, firing order."""
        return [alert.to_dict() for alert in self.alerts]

    def __repr__(self) -> str:
        return (
            f"InvariantMonitor({len(self.rules)} rules, "
            f"{len(self.alerts)} alerts)"
        )


def alerts_from_events(events) -> list[Alert]:
    """Rebuild :class:`Alert` records from a trace's ``alert`` events
    (the ``repro alerts`` explorer path — severity/message/extra data
    ride in the event payload)."""
    alerts: list[Alert] = []
    for event in events:
        if event.category != "alert":
            continue
        payload = dict(event.payload)
        severity = payload.pop("severity", "warning")
        message = payload.pop("message", "")
        alerts.append(
            Alert(
                index=len(alerts),
                time=event.time,
                rule=event.kind,
                severity=severity,
                message=message,
                swap_id=event.swap_id,
                chain_id=event.chain_id,
                data=payload,
            )
        )
    return alerts
