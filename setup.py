"""Setup shim: enables legacy editable installs in offline environments
(no `wheel` package available, so PEP 660 builds are impossible).
All real metadata lives in pyproject.toml."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
