"""Tests for the AC2T graph model: structure, diameter, ms(D)."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.graph import AssetEdge, SwapGraph
from repro.crypto.keys import KeyPair
from repro.errors import GraphError
from repro.workloads.graphs import (
    bidirectional_path,
    complete_digraph,
    directed_cycle,
    figure7a_cyclic,
    figure7b_disconnected,
    participant_keys,
    random_graph,
    two_party_swap,
)
from repro.sim.rng import RngRegistry


class TestAssetEdge:
    def test_negative_amount_rejected(self):
        with pytest.raises(GraphError):
            AssetEdge("a", "b", "c", 0)

    def test_self_transfer_rejected(self):
        with pytest.raises(GraphError):
            AssetEdge("a", "a", "c", 1)


class TestGraphValidation:
    def test_unknown_endpoint_rejected(self):
        keys = participant_keys(["a", "b"])
        with pytest.raises(GraphError):
            SwapGraph.build(keys, [AssetEdge("a", "ghost", "c", 1)])

    def test_empty_edges_rejected(self):
        with pytest.raises(GraphError):
            SwapGraph.build(participant_keys(["a", "b"]), [])

    def test_duplicate_edges_rejected(self):
        keys = participant_keys(["a", "b"])
        edge = AssetEdge("a", "b", "c", 1)
        with pytest.raises(GraphError):
            SwapGraph.build(keys, [edge, edge])


class TestDiameter:
    def test_two_party_diameter_is_2(self):
        assert two_party_swap().diameter() == 2

    def test_ring_diameter_equals_size(self):
        for n in (2, 3, 5, 8):
            assert directed_cycle(n).diameter() == n

    def test_path_diameter(self):
        # Bidirectional path of n nodes: the longest shortest path runs
        # end to end (n-1); every vertex also has a closed walk of 2 with
        # its neighbour, so the two-node path has diameter 2.
        for n in (2, 3, 4, 6):
            assert bidirectional_path(n).diameter() == max(n - 1, 2)

    def test_complete_digraph_diameter_is_2(self):
        assert complete_digraph(4).diameter() == 2

    def test_figure7b_diameter(self):
        # Two disjoint 2-cycles: each has a closed walk of length 2.
        assert figure7b_disconnected().diameter() == 2


class TestStructure:
    def test_two_party_is_cyclic(self):
        assert two_party_swap().is_cyclic()

    def test_figure7a_cyclic(self):
        assert figure7a_cyclic().is_cyclic()

    def test_figure7b_disconnected(self):
        graph = figure7b_disconnected()
        assert not graph.is_connected()

    def test_rings_connected(self):
        assert directed_cycle(4).is_connected()

    def test_chains_used(self):
        graph = two_party_swap(chain_a="x", chain_b="y")
        assert graph.chains_used() == {"x", "y"}

    def test_edges_from_to(self):
        graph = directed_cycle(3)
        assert len(graph.edges_from("p00")) == 1
        assert len(graph.edges_to("p00")) == 1

    def test_num_contracts(self):
        assert complete_digraph(3).num_contracts == 6


class TestMultisignature:
    def _keypairs(self, graph):
        return {name: KeyPair.from_seed(f"participant/{name}") for name in graph.participant_names()}

    def test_full_multisig_verifies(self):
        graph = two_party_swap()
        ms = graph.multisign(self._keypairs(graph))
        assert graph.verify_multisignature(ms)

    def test_partial_multisig_fails(self):
        graph = two_party_swap()
        kps = self._keypairs(graph)
        partial = graph.multisign(kps)
        from repro.crypto.signatures import Multisignature

        dropped = Multisignature(partial.digest, partial.signatures[:1])
        assert not graph.verify_multisignature(dropped)

    def test_multisig_bound_to_graph(self):
        graph_a = two_party_swap(timestamp=1)
        graph_b = two_party_swap(timestamp=2)
        ms = graph_a.multisign(self._keypairs(graph_a))
        assert not graph_b.verify_multisignature(ms)

    def test_timestamp_distinguishes_identical_swaps(self):
        assert two_party_swap(timestamp=1).digest() != two_party_swap(timestamp=2).digest()

    def test_missing_keypair_raises(self):
        graph = two_party_swap()
        with pytest.raises(GraphError):
            graph.multisign({})


def _to_networkx(graph: SwapGraph) -> nx.DiGraph:
    g = nx.DiGraph()
    g.add_nodes_from(graph.participant_names())
    for edge in graph.edges:
        g.add_edge(edge.source, edge.recipient)
    return g


def _reference_diameter(graph: SwapGraph) -> int:
    """The paper's Diam(D) computed with networkx as an oracle."""
    g = _to_networkx(graph)
    lengths = dict(nx.all_pairs_shortest_path_length(g))
    best = 0
    for u in g.nodes:
        for v, dist in lengths.get(u, {}).items():
            if u != v:
                best = max(best, dist)
        # Shortest closed walk through u.
        cycles = [
            1 + lengths.get(w, {}).get(u)
            for w in g.successors(u)
            if lengths.get(w, {}).get(u) is not None
        ]
        if cycles:
            best = max(best, min(cycles))
    return best


class TestDiameterAgainstNetworkx:
    @given(
        st.integers(min_value=2, max_value=7),
        st.floats(min_value=0.15, max_value=0.9),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_reference(self, n, p, seed):
        rng = RngRegistry(seed).stream("graph")
        graph = random_graph(n, p, rng)
        assert graph.diameter() == _reference_diameter(graph)
