"""Tests for key pairs, addresses, signed messages, and ms(D)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.keys import Address, KeyPair, PublicKey
from repro.crypto.hashing import sha256
from repro.crypto.signatures import (
    Multisignature,
    SignedMessage,
    clear_verify_cache,
    multisign,
    sign_payload,
    verify_payload,
    verify_cache_info,
)
from repro.errors import InvalidKeyError, InvalidSignatureError


class TestKeyPair:
    def test_from_seed_deterministic(self):
        assert KeyPair.from_seed("alice").address == KeyPair.from_seed("alice").address

    def test_different_seeds_different_keys(self):
        assert KeyPair.from_seed("a").address != KeyPair.from_seed("b").address

    def test_from_seed_accepts_bytes(self):
        assert KeyPair.from_seed(b"alice").address == KeyPair.from_seed("alice").address

    def test_sign_verify(self):
        kp = KeyPair.from_seed("signer")
        digest = sha256(b"payload")
        assert kp.public_key.verify(digest, kp.sign(digest))

    def test_from_scalar_validates(self):
        with pytest.raises(InvalidKeyError):
            KeyPair.from_scalar(0)


class TestPublicKey:
    def test_bytes_roundtrip(self):
        pk = KeyPair.from_seed("x").public_key
        assert PublicKey.from_bytes(pk.to_bytes()).to_bytes() == pk.to_bytes()

    def test_address_is_20_bytes(self):
        assert len(KeyPair.from_seed("x").address.raw) == 20

    def test_address_deterministic(self):
        pk = KeyPair.from_seed("x").public_key
        assert pk.address() == pk.address()


class TestAddress:
    def test_rejects_wrong_length(self):
        with pytest.raises(InvalidKeyError):
            Address(b"short")

    def test_hex(self):
        addr = Address(b"\xab" * 20)
        assert addr.hex() == "ab" * 20


class TestSignedMessage:
    def test_sign_and_verify_payload(self):
        kp = KeyPair.from_seed("p")
        msg = sign_payload(kp, "domain", b"payload")
        assert verify_payload(msg, "domain", b"payload")

    def test_domain_binding(self):
        kp = KeyPair.from_seed("p")
        msg = sign_payload(kp, "domain-a", b"payload")
        assert not verify_payload(msg, "domain-b", b"payload")

    def test_payload_binding(self):
        kp = KeyPair.from_seed("p")
        msg = sign_payload(kp, "d", b"payload")
        assert not verify_payload(msg, "d", b"other")

    def test_tampered_signer_fails(self):
        kp = KeyPair.from_seed("p")
        other = KeyPair.from_seed("q")
        msg = sign_payload(kp, "d", b"x")
        forged = SignedMessage(msg.digest, msg.signature, other.public_key)
        assert not forged.verify()


class TestMultisignature:
    def _keys(self, n):
        return [KeyPair.from_seed(f"signer-{i}") for i in range(n)]

    def test_complete_multisig_verifies(self):
        kps = self._keys(3)
        ms = multisign(kps, "swap", b"graph")
        assert ms.verify([kp.public_key for kp in kps])

    def test_missing_signer_fails(self):
        kps = self._keys(3)
        ms = multisign(kps[:2], "swap", b"graph")
        assert not ms.verify([kp.public_key for kp in kps])

    def test_signature_order_irrelevant(self):
        kps = self._keys(4)
        forward = multisign(kps, "swap", b"graph")
        backward = multisign(list(reversed(kps)), "swap", b"graph")
        required = [kp.public_key for kp in kps]
        assert forward.verify(required) and backward.verify(required)

    def test_extra_signers_do_not_hurt(self):
        kps = self._keys(3)
        ms = multisign(kps, "swap", b"graph")
        assert ms.verify([kp.public_key for kp in kps[:2]])

    def test_id_stable_across_signature_order(self):
        kps = self._keys(3)
        a = multisign(kps, "swap", b"graph")
        b = multisign(list(reversed(kps)), "swap", b"graph")
        assert a.id() == b.id()

    def test_id_differs_per_payload(self):
        kps = self._keys(2)
        assert multisign(kps, "swap", b"g1").id() != multisign(kps, "swap", b"g2").id()

    def test_with_signature_incremental(self):
        kps = self._keys(2)
        base = multisign(kps[:1], "swap", b"graph")
        extra = multisign(kps[1:], "swap", b"graph").signatures[0]
        combined = base.with_signature(extra)
        assert combined.verify([kp.public_key for kp in kps])

    def test_with_signature_rejects_other_digest(self):
        kps = self._keys(2)
        base = multisign(kps[:1], "swap", b"graph")
        foreign = multisign(kps[1:], "swap", b"DIFFERENT").signatures[0]
        with pytest.raises(InvalidSignatureError):
            base.with_signature(foreign)

    def test_invalid_signature_not_counted(self):
        kps = self._keys(2)
        ms = multisign(kps, "swap", b"graph")
        # Corrupt one signature: swap the signer key of the first entry.
        bad = SignedMessage(
            ms.signatures[0].digest, ms.signatures[0].signature, kps[1].public_key
        )
        corrupted = Multisignature(ms.digest, (bad, ms.signatures[1]))
        assert not corrupted.verify([kp.public_key for kp in kps])

    @given(st.integers(min_value=1, max_value=5))
    @settings(max_examples=5, deadline=None)
    def test_property_n_of_n(self, n):
        kps = self._keys(n)
        ms = multisign(kps, "d", b"p")
        assert ms.verify([kp.public_key for kp in kps])


class TestMultisignVerifyMemo:
    """`Multisignature.verify` is memoized by (digest, sigs, keyset)."""

    def _ms(self, n=3, payload=b"memo-graph"):
        kps = [KeyPair.from_seed(f"memo-{i}") for i in range(n)]
        return multisign(kps, "swap", payload), [kp.public_key for kp in kps]

    def test_repeat_verification_hits_the_cache(self):
        clear_verify_cache()
        ms, keys = self._ms()
        assert ms.verify(keys)
        first = verify_cache_info()
        assert first["misses"] == 1 and first["hits"] == 0
        for _ in range(5):
            assert ms.verify(keys)
        after = verify_cache_info()
        assert after["misses"] == 1 and after["hits"] == 5

    def test_cache_keyed_on_content_not_identity(self):
        clear_verify_cache()
        ms, keys = self._ms()
        ms.verify(keys)
        # An equal-content copy reuses the entry...
        copy = Multisignature(ms.digest, tuple(ms.signatures))
        assert copy.verify(keys)
        assert verify_cache_info()["hits"] == 1
        # ...but a different keyset or tampered signature set does not.
        assert not ms.verify(keys + [KeyPair.from_seed("memo-x").public_key])
        tampered = Multisignature(ms.digest, ms.signatures[:-1])
        assert not tampered.verify(keys)
        info = verify_cache_info()
        assert info["misses"] == 3

    def test_cached_negative_result(self):
        clear_verify_cache()
        ms, keys = self._ms(2)
        missing = Multisignature(ms.digest, ms.signatures[:1])
        assert not missing.verify(keys)
        assert not missing.verify(keys)
        info = verify_cache_info()
        assert info["misses"] == 1 and info["hits"] == 1
