"""Exhaustive state-transition matrix for Algorithm 1.

The template admits exactly two transitions — P→RD (valid redeem secret)
and P→RF (valid refund secret) — and nothing else.  We enumerate every
(state, action, secret-validity) combination against a minimal concrete
subclass and assert the full matrix.
"""

import pytest

from repro.chain.contracts import (
    ExecutionContext,
    SmartContract,
    register_contract,
)
from repro.core.contract_template import AtomicSwapContract, SwapState
from repro.errors import ContractRequireError
from repro.crypto.keys import KeyPair

ALICE = KeyPair.from_seed("alice")
BOB = KeyPair.from_seed("bob")


@register_contract
class TokenSwapSC(AtomicSwapContract):
    """Minimal concrete template: secrets are the literal tokens."""

    CLASS_NAME = "TestTokenSwap"

    def is_redeemable(self, ctx, secret):
        return secret == "redeem-token"

    def is_refundable(self, ctx, secret):
        return secret == "refund-token"


def make_contract(state=SwapState.PUBLISHED):
    contract = TokenSwapSC()
    contract.contract_id = b"\x01" * 32
    contract.balance = 100
    contract.owner = ALICE.address
    ctx = ExecutionContext(
        chain_id="t",
        block_height=1,
        block_time=1.0,
        sender=ALICE.address,
        sender_pubkey=ALICE.public_key,
        value=100,
    )
    contract.constructor(ctx, BOB.address.raw)
    contract.state = state
    return contract


def fresh_ctx():
    return ExecutionContext(
        chain_id="t",
        block_height=2,
        block_time=2.0,
        sender=BOB.address,
        sender_pubkey=BOB.public_key,
        value=0,
    )


# The full matrix: (initial state, function, secret, outcome-state or None
# for revert).
MATRIX = [
    (SwapState.PUBLISHED, "redeem", "redeem-token", SwapState.REDEEMED),
    (SwapState.PUBLISHED, "redeem", "refund-token", None),
    (SwapState.PUBLISHED, "redeem", "garbage", None),
    (SwapState.PUBLISHED, "refund", "refund-token", SwapState.REFUNDED),
    (SwapState.PUBLISHED, "refund", "redeem-token", None),
    (SwapState.PUBLISHED, "refund", "garbage", None),
    (SwapState.REDEEMED, "redeem", "redeem-token", None),
    (SwapState.REDEEMED, "refund", "refund-token", None),
    (SwapState.REFUNDED, "redeem", "redeem-token", None),
    (SwapState.REFUNDED, "refund", "refund-token", None),
]


@pytest.mark.parametrize("initial,function,secret,expected", MATRIX)
def test_transition(initial, function, secret, expected):
    contract = make_contract(initial)
    ctx = fresh_ctx()
    action = getattr(contract, function)
    if expected is None:
        with pytest.raises(ContractRequireError):
            action(ctx, secret)
        assert contract.state == initial  # unchanged on revert
    else:
        action(ctx, secret)
        assert contract.state == expected


class TestTransfersAndStamps:
    def test_redeem_pays_recipient(self):
        contract = make_contract()
        ctx = fresh_ctx()
        contract.redeem(ctx, "redeem-token")
        assert ctx._transfers == [(BOB.address, 100)]
        assert contract.redeemed_at == 2.0

    def test_refund_pays_sender(self):
        contract = make_contract()
        ctx = fresh_ctx()
        contract.refund(ctx, "refund-token")
        assert ctx._transfers == [(ALICE.address, 100)]
        assert contract.refunded_at == 2.0

    def test_events_emitted(self):
        contract = make_contract()
        ctx = fresh_ctx()
        contract.redeem(ctx, "redeem-token")
        assert ctx._events[0][0] == "redeemed"

    def test_is_settled(self):
        contract = make_contract()
        assert not contract.is_settled
        contract.redeem(fresh_ctx(), "redeem-token")
        assert contract.is_settled

    def test_abstract_template_refuses_direct_use(self):
        base = AtomicSwapContract()
        base.constructor(
            ExecutionContext(
                chain_id="t", block_height=1, block_time=1.0,
                sender=ALICE.address, sender_pubkey=ALICE.public_key, value=1,
            ),
            BOB.address.raw,
        )
        with pytest.raises(NotImplementedError):
            base.is_redeemable(fresh_ctx(), "x")
        with pytest.raises(NotImplementedError):
            base.is_refundable(fresh_ctx(), "x")
