"""Tests for the sweep-campaign subsystem (repro.sweeps).

Pins the subsystem's contracts: deterministic expansion (same spec ⇒
identical point list and per-point seeds), strict serde and axis
validation (unknown dotted paths rejected with their full path, like
the experiment layer's), and — the load-bearing guarantee — that the
aggregate artifact is byte-identical at ``--workers 1`` and
``--workers 4`` for the same sweep spec.
"""

import dataclasses
import json

import pytest

from repro.errors import SpecError
from repro.experiment import ChainsSpec, ExperimentSpec, TrafficSpec
from repro.sweeps import (
    SweepAxis,
    SweepRunner,
    SweepSpec,
    arrival_rate_series,
    crash_matrix,
    figure10_curves,
    register_sweep,
    run_sweep,
    sweep_names,
    sweep_spec,
    table1_series,
    unregister_sweep,
)
from repro.sweeps.result import ROW_METRICS


def small_base(**kwargs) -> ExperimentSpec:
    """A fast-running base experiment (seconds, not minutes)."""
    defaults = dict(
        name="small",
        seed=11,
        protocol="ac3wn",
        chains=ChainsSpec(ids=("x", "y")),
        traffic=TrafficSpec(num_swaps=2, rate=6.0),
    )
    defaults.update(kwargs)
    return ExperimentSpec(**defaults)


def tiny_sweep(**kwargs) -> SweepSpec:
    defaults = dict(
        name="tiny",
        base=small_base(),
        axes=(
            SweepAxis(name="rate", path="traffic.rate", values=(4.0, 8.0)),
            SweepAxis(name="protocol", path="protocol", values=("ac3wn", "herlihy")),
        ),
    )
    defaults.update(kwargs)
    return SweepSpec(**defaults)


class TestExpansion:
    def test_grid_order_and_names(self):
        points = tiny_sweep().expand().points
        assert [p.index for p in points] == [0, 1, 2, 3]
        assert [p.coords for p in points] == [
            {"rate": 4.0, "protocol": "ac3wn"},
            {"rate": 4.0, "protocol": "herlihy"},
            {"rate": 8.0, "protocol": "ac3wn"},
            {"rate": 8.0, "protocol": "herlihy"},
        ]
        assert points[0].name == "tiny[000] rate=4.0,protocol=ac3wn"

    def test_same_spec_identical_expansion(self):
        first = tiny_sweep().expand()
        second = tiny_sweep().expand()
        assert first == second

    def test_derived_seeds(self):
        points = tiny_sweep().expand().points
        assert [p.spec.seed for p in points] == [11, 12, 13, 14]

    def test_seed_stride(self):
        points = tiny_sweep(seed_stride=100).expand().points
        assert [p.spec.seed for p in points] == [11, 111, 211, 311]

    def test_derive_seeds_off(self):
        points = tiny_sweep(derive_seeds=False).expand().points
        assert [p.spec.seed for p in points] == [11, 11, 11, 11]

    def test_explicit_seed_axis_wins(self):
        sweep = tiny_sweep(
            axes=(
                SweepAxis(name="seed", path="seed", values=(7, 9)),
            )
        )
        assert [p.spec.seed for p in sweep.expand().points] == [7, 9]

    def test_zip_mode(self):
        sweep = tiny_sweep(mode="zip")
        points = sweep.expand().points
        assert [p.coords for p in points] == [
            {"rate": 4.0, "protocol": "ac3wn"},
            {"rate": 8.0, "protocol": "herlihy"},
        ]

    def test_zip_length_mismatch_rejected(self):
        sweep = tiny_sweep(
            mode="zip",
            axes=(
                SweepAxis(name="rate", path="traffic.rate", values=(4.0, 8.0, 12.0)),
                SweepAxis(name="protocol", path="protocol", values=("ac3wn",)),
            ),
        )
        with pytest.raises(SpecError, match="equal-length"):
            sweep.expand()

    def test_override_axis_moves_fields_together(self):
        sweep = tiny_sweep(
            axes=(
                SweepAxis(
                    name="diameter",
                    values=(
                        {"chains.ids": ["c0", "c1"], "traffic.participants_per_swap": 2},
                        {"chains.ids": ["c0", "c1", "c2"], "traffic.participants_per_swap": 3},
                    ),
                    labels=("2", "3"),
                ),
            )
        )
        points = sweep.expand().points
        assert points[0].coords == {"diameter": "2"}
        assert points[1].spec.chains.ids == ("c0", "c1", "c2")
        assert points[1].spec.traffic.participants_per_swap == 3

    def test_unknown_axis_path_rejected_with_full_path(self):
        sweep = tiny_sweep(
            axes=(SweepAxis(name="bad", path="traffic.swaps", values=(1,)),)
        )
        with pytest.raises(SpecError, match="traffic.swaps"):
            sweep.expand()

    def test_ill_typed_axis_value_rejected(self):
        sweep = tiny_sweep(
            axes=(SweepAxis(name="rate", path="traffic.rate", values=("soon",)),)
        )
        with pytest.raises(SpecError, match="traffic.rate"):
            sweep.expand()

    def test_drop_invalid_records_skips_without_renumbering(self):
        sweep = tiny_sweep(
            axes=(
                SweepAxis(
                    name="protocol", path="protocol", values=("nolan", "ac3wn")
                ),
                SweepAxis(
                    name="diameter",
                    values=(
                        {"chains.ids": ["c0", "c1"], "traffic.participants_per_swap": 2},
                        {"chains.ids": ["c0", "c1", "c2"], "traffic.participants_per_swap": 3},
                    ),
                    labels=("2", "3"),
                ),
            ),
            drop_invalid=True,
        )
        expansion = sweep.expand()
        # Nolan at diameter 3 is the only invalid cell.
        assert [p.index for p in expansion.points] == [0, 2, 3]
        assert len(expansion.skipped) == 1
        assert expansion.skipped[0].index == 1
        assert "two-party" in expansion.skipped[0].reason
        # Derived seeds stay pinned to the grid index, not the survivor
        # count, so skipping never reshuffles downstream seeds.
        assert [p.spec.seed for p in expansion.points] == [11, 13, 14]

    def test_invalid_point_raises_without_drop_invalid(self):
        sweep = tiny_sweep(
            axes=(
                SweepAxis(name="swaps", path="traffic.num_swaps", values=(0,)),
            )
        )
        with pytest.raises(SpecError, match="num_swaps"):
            sweep.expand()


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs,message",
        [
            (dict(mode="spiral"), "mode"),
            (dict(axes=()), "at least one axis"),
            (dict(seed_stride=0), "seed_stride"),
        ],
    )
    def test_bad_structure_rejected(self, kwargs, message):
        with pytest.raises(SpecError, match=message):
            tiny_sweep(**kwargs).validate()

    def test_duplicate_axis_names_rejected(self):
        sweep = tiny_sweep(
            axes=(
                SweepAxis(name="a", path="traffic.rate", values=(1.0,)),
                SweepAxis(name="a", path="protocol", values=("ac3wn",)),
            )
        )
        with pytest.raises(SpecError, match="unique"):
            sweep.validate()

    def test_conflicting_axis_paths_rejected(self):
        sweep = tiny_sweep(
            axes=(
                SweepAxis(name="a", path="traffic.rate", values=(1.0,)),
                SweepAxis(name="b", values=({"traffic.rate": 2.0},)),
            )
        )
        with pytest.raises(SpecError, match="both"):
            sweep.validate()

    def test_label_count_mismatch_rejected(self):
        sweep = tiny_sweep(
            axes=(
                SweepAxis(
                    name="rate", path="traffic.rate", values=(1.0, 2.0), labels=("x",)
                ),
            )
        )
        with pytest.raises(SpecError, match="labels"):
            sweep.validate()

    def test_pathless_axis_needs_dict_values(self):
        sweep = tiny_sweep(axes=(SweepAxis(name="a", values=(3.0,)),))
        with pytest.raises(SpecError, match="override dicts"):
            sweep.validate()

    @pytest.mark.parametrize("name", ["index", "name", "seed", "commit_rate"])
    def test_reserved_axis_names_rejected(self, name):
        """Axis names become row/CSV columns; a collision with the fixed
        identity/metric columns would silently clobber coordinates."""
        sweep = tiny_sweep(
            axes=(SweepAxis(name=name, path="traffic.rate", values=(4.0,)),)
        )
        with pytest.raises(SpecError, match="reserved"):
            sweep.validate()
        # The one self-consistent exception: literally sweeping the seed.
        tiny_sweep(
            axes=(SweepAxis(name="seed", path="seed", values=(1, 2)),)
        ).validate()


class TestSerde:
    def test_round_trip_identity(self):
        sweep = tiny_sweep()
        assert SweepSpec.from_json(sweep.to_json()) == sweep
        assert SweepSpec.from_json(sweep.to_json()).to_json() == sweep.to_json()

    def test_override_axis_round_trips(self):
        sweep = tiny_sweep(
            axes=(
                SweepAxis(
                    name="diameter",
                    values=({"chains.ids": ["c0", "c1"]},),
                    labels=("2",),
                ),
            )
        )
        reloaded = SweepSpec.from_json(sweep.to_json())
        assert reloaded == sweep
        assert reloaded.expand() == sweep.expand()

    def test_unknown_keys_rejected(self):
        with pytest.raises(SpecError, match="unknown key"):
            SweepSpec.from_dict({"points": 9})
        with pytest.raises(SpecError, match="axes"):
            SweepSpec.from_dict({"axes": [{"nam": "x"}]})

    def test_not_json_rejected(self):
        with pytest.raises(SpecError, match="not valid JSON"):
            SweepSpec.from_json("{nope")

    @pytest.mark.parametrize("name", sweep_names())
    def test_every_stock_sweep_round_trips_and_expands(self, name):
        sweep = sweep_spec(name)
        assert SweepSpec.from_json(sweep.to_json()) == sweep
        expansion = sweep.expand()
        assert expansion.points
        # Per-point specs are runnable descriptions (validated already).
        assert all(p.spec.validate() for p in expansion.points)


class TestRunner:
    def test_workers_must_be_positive(self):
        with pytest.raises(SpecError, match="workers"):
            SweepRunner(tiny_sweep(), workers=0)

    def test_in_process_run_joins_in_index_order(self):
        result = run_sweep(tiny_sweep())
        assert [p.index for p in result.points] == [0, 1, 2, 3]
        assert all(p.metrics["total"] == 2 for p in result.points)
        assert result.atomicity_violations == 0
        # The artifact echoes the sweep and every point's spec.
        data = result.to_dict()
        assert data["sweep"] == tiny_sweep().to_dict()
        assert [p["result"]["spec"]["seed"] for p in data["points"]] == [11, 12, 13, 14]

    def test_workers_1_vs_4_byte_identical(self):
        """The acceptance invariant: worker count and scheduling order
        never change a campaign's aggregate artifact."""
        serial = SweepRunner(tiny_sweep(), workers=1).run()
        pooled = SweepRunner(tiny_sweep(), workers=4).run()
        assert serial.to_json() == pooled.to_json()
        assert serial.to_csv() == pooled.to_csv()

    def test_progress_callback_sees_every_point(self):
        seen = []
        SweepRunner(tiny_sweep(), workers=1, on_point=seen.append).run()
        assert sorted(p.index for p in seen) == [0, 1, 2, 3]

    def test_rows_and_csv_shape(self):
        result = run_sweep(tiny_sweep())
        rows = result.rows()
        assert [row["rate"] for row in rows] == [4.0, 4.0, 8.0, 8.0]
        assert all(set(ROW_METRICS) <= set(row) for row in rows)
        csv = result.to_csv()
        header, *lines = csv.strip().splitlines()
        assert header.startswith("index,name,status,rate,protocol,seed,total,")
        assert header.endswith(",skip_reason")
        assert len(lines) == 4
        import csv as csv_mod

        parsed = list(csv_mod.reader(lines))
        assert all(cells[2] == "ok" for cells in parsed)

    def test_csv_includes_skipped_rows(self):
        """Skipped grid cells export as status=skipped rows merged in
        index order, so the table covers every enumerated cell."""
        sweep = tiny_sweep(
            axes=(
                SweepAxis(
                    name="protocol", path="protocol", values=("nolan", "ac3wn")
                ),
                SweepAxis(
                    name="diameter",
                    values=(
                        {"chains.ids": ["c0", "c1"], "traffic.participants_per_swap": 2},
                        {"chains.ids": ["c0", "c1", "c2"], "traffic.participants_per_swap": 3},
                    ),
                    labels=("2", "3"),
                ),
            ),
            drop_invalid=True,
        )
        import csv as csv_mod

        result = run_sweep(sweep)
        header, *lines = list(csv_mod.reader(result.to_csv().splitlines()))
        assert len(lines) == 4  # 3 executed + 1 skipped, no gaps
        skipped = lines[1]
        assert skipped[header.index("index")] == "1"
        assert skipped[header.index("status")] == "skipped"
        assert skipped[header.index("protocol")] == "nolan"
        assert skipped[header.index("total")] == ""  # empty metric cells
        assert "two-party" in skipped[header.index("skip_reason")]
        assert all(line[2] == "ok" for line in (lines[0], lines[2], lines[3]))

    def test_series_helper(self):
        result = run_sweep(tiny_sweep())
        series = result.series("rate", "commit_rate", protocol="ac3wn")
        assert [x for x, _ in series] == [4.0, 8.0]

    def test_save_and_reload(self, tmp_path):
        result = run_sweep(tiny_sweep())
        path = tmp_path / "sweep.json"
        result.save(str(path))
        data = json.loads(path.read_text())
        assert len(data["points"]) == 4
        csv_path = tmp_path / "sweep.csv"
        result.save_csv(str(csv_path))
        assert csv_path.read_text() == result.to_csv()


class TestCatalog:
    def test_stock_catalog(self):
        assert set(sweep_names()) >= {
            "figure10",
            "table1",
            "crash-matrix",
            "congestion-rates",
        }

    def test_unknown_sweep(self):
        with pytest.raises(SpecError, match="unknown sweep"):
            sweep_spec("warp")

    def test_register_and_unregister(self):
        register_sweep("tiny-test", tiny_sweep, "a test campaign")
        try:
            assert "tiny-test" in sweep_names()
            assert sweep_spec("tiny-test") == tiny_sweep()
            with pytest.raises(SpecError, match="already registered"):
                register_sweep("tiny-test", tiny_sweep)
        finally:
            unregister_sweep("tiny-test")
        assert "tiny-test" not in sweep_names()

    def test_figure10_expansion_shape(self):
        expansion = sweep_spec("figure10").expand()
        # 4 protocols x 5 diameters, minus Nolan's 4 invalid diameters.
        assert len(expansion.points) == 16
        assert len(expansion.skipped) == 4
        assert all(s.coords["protocol"] == "nolan" for s in expansion.skipped)

    def test_crash_matrix_seeds_ride_the_onset_axis(self):
        points = sweep_spec("crash-matrix").expand().points
        # Both protocols of one onset share that onset's seed.
        seeds = {}
        for p in points:
            seeds.setdefault(p.coords["onset"], set()).add(p.spec.seed)
        assert all(len(s) == 1 for s in seeds.values())


class TestExtractors:
    def test_crash_matrix_reproduces_section1(self):
        """The paper's motivation table: HTLC settles non-atomically in
        the vulnerability window, AC3WN never does."""
        result = run_sweep(sweep_spec("crash-matrix"))
        matrix = crash_matrix(result)
        assert sorted(matrix) == [0.0, 2.0, 3.0, 4.5, 12.0]
        for onset in (2.0, 3.0):
            assert matrix[onset]["nolan"].decision == "mixed"
            assert not matrix[onset]["nolan"].atomic
        assert all(cells["ac3wn"].atomic for cells in matrix.values())
        assert result.atomicity_violations == 2  # both HTLC cells

    def test_arrival_rate_series_on_trimmed_sweep(self):
        spec = sweep_spec("congestion-rates")
        spec = dataclasses.replace(
            spec,
            base=ExperimentSpec.from_dict(
                {
                    **spec.base.to_dict(),
                    "traffic": {
                        **spec.base.to_dict()["traffic"],
                        "num_swaps": 8,
                    },
                }
            ),
            axes=(
                SweepAxis(name="rate", path="traffic.rate", values=(6.0, 16.0)),
            ),
        )
        series = arrival_rate_series(run_sweep(spec))
        assert [p.rate for p in series] == [6.0, 16.0]
        assert all(p.atomicity_violations == 0 for p in series)
        assert all(0.0 <= p.low_commit_rate <= 1.0 for p in series)

    def test_table1_and_figure10_extractors_on_synthetic_artifacts(self):
        """Extractors are pure functions of the artifact dict."""
        result = run_sweep(
            tiny_sweep(
                axes=(
                    SweepAxis(
                        name="protocol", path="protocol", values=("ac3wn",)
                    ),
                )
            )
        )
        rows = table1_series(result)
        assert len(rows) == 1 and rows[0].protocol == "ac3wn"
        # figure10_curves needs a diameter coordinate and 1-swap points.
        single = run_sweep(
            SweepSpec(
                name="f10",
                base=small_base(traffic=TrafficSpec(num_swaps=1, rate=1.0)),
                axes=(
                    SweepAxis(
                        name="protocol", path="protocol", values=("ac3wn",)
                    ),
                    SweepAxis(
                        name="diameter",
                        values=({"traffic.participants_per_swap": 2},),
                        labels=("2",),
                    ),
                ),
            )
        )
        curves = figure10_curves(single)
        assert curves["ac3wn"][0].diameter == 2
        assert curves["ac3wn"][0].latency_deltas > 0


class TestResumableCampaigns:
    """`--resume DIR`: per-point artifacts merged byte-identically."""

    def test_fresh_run_stores_one_artifact_per_point(self, tmp_path):
        resume = tmp_path / "campaign"
        runner = SweepRunner(tiny_sweep(), resume_dir=str(resume))
        result = runner.run()
        assert runner.resumed == []
        stored = sorted(p.name for p in resume.iterdir())
        assert stored == [f"point-{i:05d}.json" for i in range(4)]
        # Stored bytes are the worker payloads: each echoes its spec.
        artifact = json.loads((resume / "point-00000.json").read_text())
        assert artifact["spec"] == result.points[0].artifact["spec"]

    def test_resume_skips_stored_points_byte_identically(self, tmp_path):
        resume = tmp_path / "campaign"
        spec = tiny_sweep()
        fresh = SweepRunner(spec).run()
        SweepRunner(spec, resume_dir=str(resume)).run()
        # Drop one artifact: only that point re-runs.
        (resume / "point-00002.json").unlink()
        runner = SweepRunner(spec, resume_dir=str(resume))
        merged = runner.run()
        assert runner.resumed == [0, 1, 3]
        assert merged.to_json() == fresh.to_json()
        assert merged.to_csv() == fresh.to_csv()
        # The re-run point was stored again for the next resume.
        full = SweepRunner(spec, resume_dir=str(resume))
        assert full.run().to_json() == fresh.to_json()
        assert full.resumed == [0, 1, 2, 3]

    def test_stale_artifact_is_re_executed(self, tmp_path):
        resume = tmp_path / "campaign"
        spec = tiny_sweep()
        SweepRunner(spec, resume_dir=str(resume)).run()
        # A sweep edit that changes a point's spec invalidates exactly
        # the stored artifacts whose echo no longer matches.
        edited = dataclasses.replace(
            spec,
            axes=(
                SweepAxis(name="rate", path="traffic.rate", values=(5.0, 8.0)),
                spec.axes[1],
            ),
        )
        runner = SweepRunner(edited, resume_dir=str(resume))
        merged = runner.run()
        # rate=8.0 points (indices 2, 3) were still valid; rate=5.0 re-ran.
        assert runner.resumed == [2, 3]
        assert merged.to_json() == SweepRunner(edited).run().to_json()

    def test_corrupt_artifact_is_re_executed(self, tmp_path):
        resume = tmp_path / "campaign"
        spec = tiny_sweep()
        fresh = SweepRunner(spec).run()
        SweepRunner(spec, resume_dir=str(resume)).run()
        (resume / "point-00001.json").write_text("{not json")
        runner = SweepRunner(spec, resume_dir=str(resume))
        assert runner.run().to_json() == fresh.to_json()
        assert 1 not in runner.resumed

    def test_resume_with_workers_matches_serial(self, tmp_path):
        resume = tmp_path / "campaign"
        spec = tiny_sweep()
        fresh = SweepRunner(spec).run()
        (resume).mkdir()
        # Pre-populate half the campaign, then finish with a pool.
        partial = SweepRunner(spec, resume_dir=str(resume))
        partial.run()
        (resume / "point-00000.json").unlink()
        (resume / "point-00003.json").unlink()
        runner = SweepRunner(spec, workers=2, resume_dir=str(resume))
        assert runner.run().to_json() == fresh.to_json()
        assert runner.resumed == [1, 2]
